"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro.cli list
    python -m repro.cli run table5 [--scale 1.0] [--seeds 0,1,2]
    python -m repro.cli run fig9 --seeds 0
    python -m repro.cli stats taobao30_sim
    python -m repro.cli train --config session.json
    python -m repro.cli serve-bench [--batch-sizes 1,8,32] [--requests 1500]
    python -m repro.cli traffic-bench [--workers 1,2] [--requests 640]
    python -m repro.cli domains-bench [--domain-counts 1000,5000,10000]
    python -m repro.cli data-bench [--event-counts 1000000,100000000]

Each ``run`` prints the same table the corresponding benchmark target
emits, without pytest in the loop.  ``train`` drives a single
:class:`repro.train.Session` from a unified JSON config file — the same
artifact works for local frameworks and the fault-injectable distributed
cluster — and ``serve-bench`` accepts the same file to configure the
model it trains before publishing.
"""

from __future__ import annotations

import argparse
import sys

from . import experiments
from .data import BENCHMARK_BUILDERS, dataset_by_name, per_domain_stats_table


def _seeds(text):
    return tuple(int(part) for part in text.split(",") if part != "")


def _run_table5(args):
    results = experiments.run_table5(scale=args.scale, seeds=args.seeds,
                                     verbose=args.verbose)
    print(experiments.render_table5(results))


def _run_table6(args):
    results = experiments.run_table6(scale=args.scale, seeds=args.seeds,
                                     verbose=args.verbose)
    print(experiments.render_table6(results))


def _run_table7(args):
    result = experiments.run_table7(scale=args.scale, seeds=args.seeds,
                                    verbose=args.verbose)
    print(experiments.render_table7(result))


def _run_industry(args):
    dataset, result = experiments.run_industry(seeds=args.seeds,
                                               verbose=args.verbose)
    print(experiments.render_table8(result))
    print()
    print(experiments.render_table9(dataset, result))


def _run_table10(args):
    results = experiments.run_table10(scale=args.scale, seeds=args.seeds,
                                      verbose=args.verbose)
    print(experiments.render_table10(results))


def _run_fig8(args):
    series = experiments.run_fig8(scale=args.scale, seeds=args.seeds,
                                  verbose=args.verbose)
    print(experiments.render_fig8(series))


def _run_fig9(args):
    grid = experiments.run_fig9(scale=args.scale, seeds=args.seeds,
                                verbose=args.verbose)
    print(experiments.render_fig9(grid))


EXPERIMENT_RUNNERS = {
    "table5": _run_table5,
    "table6": _run_table6,
    "table7": _run_table7,
    "table8": _run_industry,
    "table9": _run_industry,
    "table10": _run_table10,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="MAMDR reproduction harness"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments and datasets")

    run = commands.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment", choices=sorted(EXPERIMENT_RUNNERS))
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale factor (default 1.0)")
    run.add_argument("--seeds", type=_seeds, default=(0,),
                     help="comma-separated seeds to average (default: 0)")
    run.add_argument("--verbose", action="store_true")

    stats = commands.add_parser("stats", help="print a dataset's statistics")
    stats.add_argument("dataset", choices=sorted(BENCHMARK_BUILDERS))
    stats.add_argument("--scale", type=float, default=1.0)
    stats.add_argument("--domains", type=int, default=30,
                       help="domain count for the parameterized taobao_sim "
                            "preset (default: 30)")

    train = commands.add_parser(
        "train",
        help="train one session (framework or distributed cluster) from a "
             "unified JSON config file",
    )
    train.add_argument("--config", required=True,
                       help="path to a repro.train.SessionConfig JSON file")
    train.add_argument("--verbose", action="store_true")

    serve = commands.add_parser(
        "serve-bench",
        help="train a small MAMDR model, publish a snapshot and replay a "
             "heavy-tailed request stream through the serving stack",
    )
    serve.add_argument("--batch-sizes", type=_seeds, default=(1, 8, 32),
                       help="comma-separated max_batch_size settings")
    serve.add_argument("--requests", type=int, default=1500,
                       help="replayed requests per setting (default: 1500)")
    serve.add_argument("--epochs", type=int, default=2,
                       help="training epochs before publishing (default: 2)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--out", default=None,
                       help="benchmark journal path "
                            "(default: BENCH_serving.json; '-' to skip)")
    serve.add_argument("--config", default=None,
                       help="optional SessionConfig JSON file supplying the "
                            "model, seed and training hyper-parameters")
    serve.add_argument("--verbose", action="store_true")

    traffic = commands.add_parser(
        "traffic-bench",
        help="sweep trace-driven offered load over the multi-process "
             "predictor pool: saturation knee, overload SLO behavior, and "
             "pool/single-process bit-parity across a hot reload",
    )
    traffic.add_argument("--workers", type=_seeds, default=(1, 2),
                         help="comma-separated pool worker counts "
                              "(default: 1,2)")
    traffic.add_argument("--requests", type=int, default=640,
                         help="trace length in requests (default: 640)")
    traffic.add_argument("--max-batch", type=int, default=32,
                         help="dispatch batch size bound (default: 32)")
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument("--epochs", type=int, default=1,
                         help="training epochs before publishing "
                              "(default: 1)")
    traffic.add_argument("--out", default=None,
                         help="benchmark journal path "
                              "(default: BENCH_serving.json; '-' to skip)")
    traffic.add_argument("--config", default=None,
                         help="optional SessionConfig JSON file supplying "
                              "the model, seed and training "
                              "hyper-parameters")
    traffic.add_argument("--verbose", action="store_true")

    domains = commands.add_parser(
        "domains-bench",
        help="domain-axis scaling curve: train, publish and serve a "
             "sparse-tail preset at 1k-50k domains with the dense and "
             "clustered-sharded parameter backends, recording wall-time "
             "and peak memory per cell",
    )
    domains.add_argument("--domain-counts", type=_seeds,
                         default=(1000, 5000, 10000),
                         help="comma-separated domain counts "
                              "(default: 1000,5000,10000)")
    domains.add_argument("--clusters", type=int, default=64,
                         help="k-means cluster count for the clustered "
                              "backend (default: 64)")
    domains.add_argument("--dense-limit", type=int, default=10000,
                         help="largest domain count the dense backend "
                              "still runs at (default: 10000)")
    domains.add_argument("--seed", type=int, default=0)
    domains.add_argument("--out", default=None,
                         help="benchmark journal path "
                              "(default: BENCH_domains.json; '-' to skip)")
    domains.add_argument("--verbose", action="store_true")

    data = commands.add_parser(
        "data-bench",
        help="columnar data-plane sweep: write a synthetic multi-domain "
             "event file per size point, map it in O(1) and stream one "
             "full epoch, recording throughput and live peak RSS",
    )
    data.add_argument("--event-counts", type=_seeds,
                      default=(1_000_000, 100_000_000),
                      help="comma-separated event counts "
                           "(default: 1000000,100000000)")
    data.add_argument("--batch-size", type=int, default=65536,
                      help="epoch iteration batch size (default: 65536)")
    data.add_argument("--release-every-rows", type=int, default=1 << 20,
                      help="rows between madvise page releases "
                           "(default: 1048576)")
    data.add_argument("--workdir", default=".",
                      help="directory for the generated files (default: .)")
    data.add_argument("--seed", type=int, default=0)
    data.add_argument("--out", default=None,
                      help="benchmark journal path "
                           "(default: BENCH_data.json; '-' to skip)")
    data.add_argument("--verbose", action="store_true")

    online = commands.add_parser(
        "online-sim",
        help="run the continual-learning pipeline on a drifted event "
             "stream: ingest, incremental DN/DR updates, gated snapshot "
             "publication with rollback, serving parity audit",
    )
    online.add_argument("--seed", type=int, default=0)
    online.add_argument("--windows", type=int, default=None,
                        help="number of stream micro-epochs")
    online.add_argument("--window-events", type=int, default=None,
                        help="events per micro-epoch")
    online.add_argument("--drift-rate", type=float, default=None,
                        help="concept-drift strength gained per window")
    online.add_argument("--backend", choices=("local", "cluster"),
                        default=None,
                        help="shared-update path: in-process or the "
                             "simulated PS-Worker cluster")
    online.add_argument("--config", default=None,
                        help="optional SessionConfig JSON file; its "
                             "'online' section configures the pipeline")
    online.add_argument("--out", default=None,
                        help="benchmark journal path "
                             "(default: BENCH_online.json; '-' to skip)")
    online.add_argument("--verbose", action="store_true")

    analyze = commands.add_parser(
        "analyze",
        help="whole-program static analysis: certify compiled tapes and "
             "audit the parallel runtime for nondeterminism "
             "(delegates to repro.tooling.analyze)",
        add_help=False,
    )
    analyze.add_argument("rest", nargs=argparse.REMAINDER)
    return parser


def _run_train(args):
    from .train import Session, SessionConfig
    from .utils.tables import format_table

    config = SessionConfig.from_file(args.config)
    session = Session(config)
    result = session.fit()
    report = result.report
    print(format_table(
        ["Domain", "AUC"],
        [[str(domain), auc] for domain, auc in sorted(report.per_domain.items())],
        title=f"{report.method} on {config.dataset}",
    ))
    print(f"mean AUC: {report.mean_auc:.4f}")
    if result.stats is not None:
        stats = result.stats
        print(
            f"cluster: ps_version={stats['ps_version']} "
            f"dedup_hits={stats['ps_dedup_hits']} "
            f"stale_rejections={stats['ps_stale_rejections']} "
            f"crashes={len(stats['crashes'])} "
            f"evictions={len(stats['evictions'])}"
        )
        if args.verbose:
            for worker_id, counters in sorted(stats["transport"].items()):
                line = " ".join(
                    f"{key}={value}" for key, value in sorted(counters.items())
                )
                print(f"  worker {worker_id}: {line}")
    return 0


def _run_serve_bench(args):
    from .serving.bench import (
        DEFAULT_BENCH_PATH,
        render_serve_bench,
        run_serve_bench,
        write_bench_record,
    )

    session = None
    if args.config is not None:
        from .train import SessionConfig

        session = SessionConfig.from_file(args.config)
    record = run_serve_bench(
        batch_sizes=args.batch_sizes, n_requests=args.requests,
        seed=args.seed, epochs=args.epochs, verbose=args.verbose,
        session=session,
    )
    print(render_serve_bench(record))
    out = args.out if args.out is not None else DEFAULT_BENCH_PATH
    if out != "-":
        path = write_bench_record(record, out)
        print(f"results appended to {path}")
    if not all(entry["parity"] for entry in record["settings"].values()):
        print("serving/offline parity FAILED", file=sys.stderr)
        return 1
    return 0


def _run_traffic_bench(args):
    from .traffic.loadbench import (
        DEFAULT_BENCH_PATH,
        render_traffic_bench,
        run_traffic_bench,
        write_traffic_record,
    )

    session = None
    if args.config is not None:
        from .train import SessionConfig

        session = SessionConfig.from_file(args.config)
    record = run_traffic_bench(
        worker_counts=args.workers, n_requests=args.requests,
        max_batch=args.max_batch, seed=args.seed, epochs=args.epochs,
        session=session,
    )
    print(render_traffic_bench(record))
    out = args.out if args.out is not None else DEFAULT_BENCH_PATH
    if out != "-":
        path = write_traffic_record(record, out)
        print(f"results appended to {path}")
    failed = record["parity"]["ok"] is False
    overload = record["overload"]
    if overload is not None and not (
        overload["deterministic"] and overload["within_slo"]
        and overload["conserved"]
    ):
        failed = True
    if failed:
        print("traffic-bench acceptance FAILED", file=sys.stderr)
        return 1
    return 0


def _run_domains_bench(args):
    from .core.domains_bench import (
        DEFAULT_BENCH_PATH,
        render_domains_bench,
        run_domains_bench,
        write_bench_record,
    )

    record = run_domains_bench(
        domain_counts=args.domain_counts, clusters=args.clusters,
        dense_limit=args.dense_limit, seed=args.seed, verbose=args.verbose,
    )
    print(render_domains_bench(record))
    out = args.out if args.out is not None else DEFAULT_BENCH_PATH
    if out != "-":
        path = write_bench_record(record, out)
        print(f"results appended to {path}")
    if not all(cell["serve_parity"] for cell in record["cells"]):
        print("serving/offline parity FAILED", file=sys.stderr)
        return 1
    return 0


def _run_data_bench(args):
    from .data.databench import (
        DEFAULT_BENCH_PATH,
        check_data_bench,
        render_data_bench,
        run_data_bench,
        write_bench_record,
    )

    record = run_data_bench(
        event_counts=args.event_counts, batch_size=args.batch_size,
        release_every_rows=args.release_every_rows, workdir=args.workdir,
        seed=args.seed, verbose=args.verbose,
    )
    print(render_data_bench(record))
    out = args.out if args.out is not None else DEFAULT_BENCH_PATH
    if out != "-":
        path = write_bench_record(record, out)
        print(f"results appended to {path}")
    verdict = check_data_bench(record)
    if not verdict["ok"]:
        print("data-bench acceptance FAILED", file=sys.stderr)
        return 1
    return 0


def _run_online_sim(args):
    from dataclasses import replace

    from .online.sim import (
        DEFAULT_BENCH_PATH,
        OnlineSimConfig,
        build_sim_config,
        render_online_sim,
        run_online_sim,
        write_bench_record,
    )

    if args.config is not None:
        from .train import SessionConfig

        config = build_sim_config(SessionConfig.from_file(args.config))
    else:
        config = OnlineSimConfig(seed=args.seed)
    if args.config is not None and args.seed != 0:
        config = config.updated(seed=args.seed)
    stream_changes = {}
    if args.windows is not None:
        stream_changes["n_windows"] = args.windows
    if args.window_events is not None:
        stream_changes["window_events"] = args.window_events
    if args.drift_rate is not None:
        stream_changes["drift_rate"] = args.drift_rate
    if stream_changes:
        stream = replace(config.stream, **stream_changes)
        changes = {"stream": stream}
        # Keep the injected-regression window valid when a shorter stream
        # is requested: it must stay post-bootstrap and pre-final.
        inject = config.inject_regression_at
        if inject is not None:
            changes["inject_regression_at"] = min(
                max(inject, config.bootstrap_windows), stream.n_windows - 2
            )
        config = config.updated(**changes)
    if args.backend is not None:
        config = config.updated(backend=args.backend)
    results = run_online_sim(config, verbose=args.verbose)
    print(render_online_sim(results))
    out = args.out if args.out is not None else DEFAULT_BENCH_PATH
    if out != "-":
        path = write_bench_record(results, out)
        print(f"results appended to {path}")
    if not results["parity"]["exact"]:
        print("serving/offline parity FAILED", file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    # ``analyze`` forwards its whole tail (options included) to the
    # analyzer's own parser — argparse.REMAINDER cannot capture leading
    # options, so dispatch before parsing.
    if argv and argv[0] == "analyze":
        from .tooling.analyze import main as analyze_main
        return analyze_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("experiments:", ", ".join(sorted(EXPERIMENT_RUNNERS)))
        print("datasets:   ", ", ".join(sorted(BENCHMARK_BUILDERS)))
        return 0
    if args.command == "stats":
        if args.dataset == "taobao_online_sim":
            dataset = dataset_by_name(args.dataset)
        elif args.dataset == "taobao_sim":
            dataset = dataset_by_name(args.dataset, n_domains=args.domains,
                                      scale=args.scale)
        else:
            dataset = dataset_by_name(args.dataset, scale=args.scale)
        print(per_domain_stats_table(dataset))
        return 0
    if args.command == "train":
        return _run_train(args)
    if args.command == "serve-bench":
        return _run_serve_bench(args)
    if args.command == "traffic-bench":
        return _run_traffic_bench(args)
    if args.command == "domains-bench":
        return _run_domains_bench(args)
    if args.command == "data-bench":
        return _run_data_bench(args)
    if args.command == "online-sim":
        return _run_online_sim(args)
    if args.command == "analyze":
        from .tooling.analyze import main as analyze_main
        return analyze_main(args.rest)
    EXPERIMENT_RUNNERS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
