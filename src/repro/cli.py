"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro.cli list
    python -m repro.cli run table5 [--scale 1.0] [--seeds 0,1,2]
    python -m repro.cli run fig9 --seeds 0
    python -m repro.cli stats taobao30_sim

Each ``run`` prints the same table the corresponding benchmark target
emits, without pytest in the loop.
"""

from __future__ import annotations

import argparse
import sys

from . import experiments
from .data import BENCHMARK_BUILDERS, dataset_by_name, per_domain_stats_table


def _seeds(text):
    return tuple(int(part) for part in text.split(",") if part != "")


def _run_table5(args):
    results = experiments.run_table5(scale=args.scale, seeds=args.seeds,
                                     verbose=args.verbose)
    print(experiments.render_table5(results))


def _run_table6(args):
    results = experiments.run_table6(scale=args.scale, seeds=args.seeds,
                                     verbose=args.verbose)
    print(experiments.render_table6(results))


def _run_table7(args):
    result = experiments.run_table7(scale=args.scale, seeds=args.seeds,
                                    verbose=args.verbose)
    print(experiments.render_table7(result))


def _run_industry(args):
    dataset, result = experiments.run_industry(seeds=args.seeds,
                                               verbose=args.verbose)
    print(experiments.render_table8(result))
    print()
    print(experiments.render_table9(dataset, result))


def _run_table10(args):
    results = experiments.run_table10(scale=args.scale, seeds=args.seeds,
                                      verbose=args.verbose)
    print(experiments.render_table10(results))


def _run_fig8(args):
    series = experiments.run_fig8(scale=args.scale, seeds=args.seeds,
                                  verbose=args.verbose)
    print(experiments.render_fig8(series))


def _run_fig9(args):
    grid = experiments.run_fig9(scale=args.scale, seeds=args.seeds,
                                verbose=args.verbose)
    print(experiments.render_fig9(grid))


EXPERIMENT_RUNNERS = {
    "table5": _run_table5,
    "table6": _run_table6,
    "table7": _run_table7,
    "table8": _run_industry,
    "table9": _run_industry,
    "table10": _run_table10,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="MAMDR reproduction harness"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments and datasets")

    run = commands.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment", choices=sorted(EXPERIMENT_RUNNERS))
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale factor (default 1.0)")
    run.add_argument("--seeds", type=_seeds, default=(0,),
                     help="comma-separated seeds to average (default: 0)")
    run.add_argument("--verbose", action="store_true")

    stats = commands.add_parser("stats", help="print a dataset's statistics")
    stats.add_argument("dataset", choices=sorted(BENCHMARK_BUILDERS))
    stats.add_argument("--scale", type=float, default=1.0)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("experiments:", ", ".join(sorted(EXPERIMENT_RUNNERS)))
        print("datasets:   ", ", ".join(sorted(BENCHMARK_BUILDERS)))
        return 0
    if args.command == "stats":
        if args.dataset == "taobao_online_sim":
            dataset = dataset_by_name(args.dataset)
        else:
            dataset = dataset_by_name(args.dataset, scale=args.scale)
        print(per_domain_stats_table(dataset))
        return 0
    EXPERIMENT_RUNNERS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
