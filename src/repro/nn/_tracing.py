"""Trace hook shared by the autodiff engine and the compiled executor.

``repro.nn.compile`` installs a tracer here for the duration of exactly one
eager training step; the op sites in ``tensor.py`` / ``functional.py`` report
every primitive node they create (plus the data-dependent auxiliary leaves:
dropout masks, softmax max-shifts, fixed-feature gathers) so the executor can
compile the step into a replayable tape.

This module deliberately holds nothing but the hook slot — no imports from
``repro.nn`` — so both the engine and the compiler can import it without
cycles.  The engine's per-op cost when tracing is off is a single module
attribute load and an ``is None`` check, the same discipline as the
sanitizer's ``_ACTIVE`` flag.
"""

from __future__ import annotations

#: The active tracer (``repro.nn.compile._Tracer``) or ``None``.
TRACER = None
