"""Trace hook shared by the autodiff engine and the compiled executor.

``repro.nn.compile`` installs a tracer here for the duration of exactly one
eager training step; the op sites in ``tensor.py`` / ``functional.py`` report
every primitive node they create (plus the data-dependent auxiliary leaves:
dropout masks, softmax max-shifts, fixed-feature gathers) so the executor can
compile the step into a replayable tape.

This module deliberately holds nothing but the hook slot — no imports from
``repro.nn`` — so both the engine and the compiler can import it without
cycles.  The engine's per-op cost when tracing is off is a single module
attribute load and an ``is None`` check, the same discipline as the
sanitizer's ``_ACTIVE`` flag.
"""

from __future__ import annotations

#: The active tracer (``repro.nn.compile._Tracer``) or ``None``.
TRACER = None

# Primitive-kind metadata shared by the compiler (``repro.nn.compile``),
# the lane-vectorized engine (``repro.nn.vectorized``) and the static
# tape verifier (``repro.tooling.analyzer.tape_verifier``).  Keeping the
# sets here — instead of three private copies — means a new primitive
# must be classified exactly once.

#: graph-node kinds whose output may be a live *view* of its parent's
#: buffer (the compiler then emits no kernel for the node).
VIEW_KINDS = frozenset({"reshape", "transpose", "swapaxes", "getitem"})

#: auxiliary (non-node) record kinds: data-dependent constants that are
#: regenerated on every replay.
AUX_KINDS = frozenset({"rng_mask", "reduce_max", "fixed_gather"})

#: every graph-node kind the tracer can report (= the compiler's forward
#: kernel table).
NODE_KINDS = frozenset({
    "add", "sub", "mul", "div", "neg", "pow", "matmul",
    "exp", "log", "sqrt", "tanh", "sigmoid", "relu", "softplus", "abs",
    "leaky_relu", "sum", "reshape", "transpose", "swapaxes", "getitem",
    "concat", "stack", "embedding", "fused_dense", "bce",
})
