"""Functional building blocks composed from :class:`~repro.nn.tensor.Tensor`.

Everything here is differentiable (where meaningful) and built either from
primitives defined on ``Tensor`` or as new primitives with hand-written
backward passes (``concat``, ``embedding``), all covered by gradcheck tests.

Hot-path ops come in fused single-node form: ``embedding`` emits a
:class:`~repro.nn.sparse.SparseGrad` instead of a dense full-table scatter,
``bce_with_logits`` computes forward and backward in closed form instead of
recording a four-op graph, and ``fused_dense`` collapses matmul + bias +
activation into one node.  The unfused compositions are kept as
``*_reference`` functions for parity tests and benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..utils import profiling
from . import _tracing, sparse
from .tensor import Tensor, _stable_sigmoid, as_tensor, unbroadcast

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softplus",
    "leaky_relu",
    "softmax",
    "dropout",
    "concat",
    "stack",
    "embedding",
    "fixed_gather",
    "linear",
    "fused_dense",
    "bce_with_logits",
    "bce_with_logits_reference",
    "mse_loss",
    "l2_penalty",
]


def relu(x):
    return as_tensor(x).relu()


def sigmoid(x):
    return as_tensor(x).sigmoid()


def tanh(x):
    return as_tensor(x).tanh()


def softplus(x):
    return as_tensor(x).softplus()


def leaky_relu(x, negative_slope=0.01):
    x = as_tensor(x)
    mask = x.data > 0.0
    scale = np.where(mask, 1.0, negative_slope)
    out = Tensor._make(x.data * scale, (x,), lambda g: (g * scale,))
    if _tracing.TRACER is not None:
        _tracing.TRACER.node(out, "leaky_relu", (x,), scale=scale,
                             negative_slope=negative_slope)
    return out


def softmax(x, axis=-1):
    """Softmax along ``axis``, numerically stabilized with a detached max."""
    x = as_tensor(x)
    shift_by = np.max(x.data, axis=axis, keepdims=True)
    if _tracing.TRACER is not None:
        # The max is data-dependent; record it so a compiled replay
        # recomputes it instead of replaying a stale constant.
        _tracing.TRACER.reduce_max(shift_by, x, axis)
    shift = x - shift_by
    exp = shift.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def dropout(x, rate, rng, training=True):
    """Inverted dropout: zero activations with probability ``rate``.

    ``rng`` must be a ``numpy.random.Generator``; passing it explicitly keeps
    every training run reproducible.
    """
    x = as_tensor(x)
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = (rng.random(x.shape) >= rate) / (1.0 - rate)
    if _tracing.TRACER is not None:
        # Capture the RNG stream so a compiled replay draws the identical
        # mask sequence this eager step would have drawn.
        _tracing.TRACER.rng_mask(keep, rng, rate)
    return x * keep


def concat(tensors, axis=-1):
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(g):
        return tuple(np.split(g, boundaries, axis=axis))

    out = Tensor._make(data, tuple(tensors), backward)
    if _tracing.TRACER is not None:
        _tracing.TRACER.node(out, "concat", tuple(tensors), axis=axis)
    return out


def stack(tensors, axis=0):
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.moveaxis(g, axis, 0))

    out = Tensor._make(data, tuple(tensors), backward)
    if _tracing.TRACER is not None:
        _tracing.TRACER.node(out, "stack", tuple(tensors), axis=axis)
    return out


def embedding(weight, indices):
    """Gather rows ``indices`` from ``weight`` ([n, d] -> [len(indices), d]).

    The backward pass produces a :class:`~repro.nn.sparse.SparseGrad`
    holding only the touched rows — the sparse-embedding update the paper's
    PS-Worker cache (Section IV-E) is built around — so both gradient
    accumulation and the optimizer step cost O(batch), not O(table).  The
    dense ``np.add.at`` fallback is selected by
    :func:`~repro.nn.sparse.use_sparse_grads` for parity checks.
    """
    weight = as_tensor(weight)
    indices = np.asarray(indices, dtype=np.int64)

    def backward(g):
        start = profiling.tick()
        if sparse.sparse_grads_enabled():
            grad = sparse.SparseGrad.from_lookup(indices, g, weight.data.shape)
            profiling.tock("embedding.backward.sparse", start, grad.nbytes)
        else:
            grad = np.zeros_like(weight.data)
            np.add.at(grad, indices, g)
            profiling.tock("embedding.backward.dense", start, grad.nbytes)
        return (grad,)

    start = profiling.tick()
    out = weight.data[indices]
    profiling.tock("embedding.forward", start, out.nbytes)
    node = Tensor._make(out, (weight,), backward)
    if _tracing.TRACER is not None:
        _tracing.TRACER.node(node, "embedding", (weight,), indices=indices)
    return node


def fixed_gather(matrix, indices):
    """Rows ``indices`` of a frozen (non-trainable) feature matrix.

    Returns a graph *leaf*: ``matrix`` is plain numpy and receives no
    gradient.  Compared to writing ``Tensor(matrix[indices])`` inline, this
    helper reports the gather to the tracer, so a compiled replay re-gathers
    with the current batch's ids instead of replaying a stale constant.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    indices = np.asarray(indices, dtype=np.int64)
    out = Tensor(matrix[indices])
    if _tracing.TRACER is not None:
        _tracing.TRACER.fixed_gather(out.data, matrix, indices)
    return out


def linear(x, weight, bias=None):
    """Affine map ``x @ weight + bias`` with [in, out]-shaped weight."""
    out = as_tensor(x) @ weight
    if bias is not None:
        out = out + bias
    return out


_FUSED_ACTIVATIONS = ("linear", "relu", "sigmoid", "tanh")


def fused_dense(x, weight, bias=None, activation="linear"):
    """``act(x @ weight + bias)`` as one autodiff node.

    Fusing the affine map and the activation removes two graph nodes (and
    their intermediate full-activation arrays) per Dense layer per step.
    The activation derivative is recovered from the saved *output* (relu
    mask, ``s(1-s)``, ``1-t²``), so no extra forward buffers are retained.
    """
    if activation not in _FUSED_ACTIVATIONS:
        raise ValueError(
            f"unsupported fused activation {activation!r}; "
            f"expected one of {_FUSED_ACTIVATIONS}"
        )
    x = as_tensor(x)
    weight = as_tensor(weight)
    if x.ndim < 2 or weight.ndim < 2:
        raise ValueError("fused_dense requires ndim >= 2 operands")
    bias_t = as_tensor(bias) if bias is not None else None

    start = profiling.tick()
    z = np.matmul(x.data, weight.data)
    if bias_t is not None:
        np.add(z, bias_t.data, out=z)
    if activation == "relu":
        out = np.maximum(z, 0.0)
    elif activation == "sigmoid":
        out = _stable_sigmoid(z)
    elif activation == "tanh":
        out = np.tanh(z)
    else:
        out = z
    profiling.tock("dense.fused_forward", start, out.nbytes)

    parents = (x, weight) if bias_t is None else (x, weight, bias_t)

    def backward(g):
        start = profiling.tick()
        if activation == "relu":
            gz = g * (out > 0.0)
        elif activation == "sigmoid":
            gz = g * out * (1.0 - out)
        elif activation == "tanh":
            gz = g * (1.0 - out ** 2)
        else:
            gz = g
        grad_x = unbroadcast(
            np.matmul(gz, np.swapaxes(weight.data, -1, -2)), x.shape
        )
        grad_w = unbroadcast(
            np.matmul(np.swapaxes(x.data, -1, -2), gz), weight.shape
        )
        profiling.tock("dense.fused_backward", start)
        if bias_t is None:
            return grad_x, grad_w
        return grad_x, grad_w, unbroadcast(gz, bias_t.shape)

    node = Tensor._make(out, parents, backward)
    if _tracing.TRACER is not None:
        _tracing.TRACER.node(node, "fused_dense", parents, activation=activation,
                             saved_out=out)
    return node


def bce_with_logits(logits, labels, sample_weight=None):
    """Mean binary cross entropy on raw logits (numerically stable).

    Uses the identity ``BCE(x, y) = softplus(x) - x*y`` for y in {0, 1},
    which also holds (as the expected cross entropy) for soft labels.

    This is a fused single-node kernel: the forward pass evaluates the
    closed form directly and the backward pass is ``(sigmoid(x) - y) / n``
    — no intermediate softplus/mul/sub/mean graph is recorded.  It matches
    :func:`bce_with_logits_reference` to float64 rounding.
    """
    logits = as_tensor(logits)
    labels = as_tensor(labels)
    x = logits.data
    y = labels.data

    start = profiling.tick()
    # softplus(x) - x*y, with softplus in the overflow-safe form.
    per_sample = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x))) - x * y
    if sample_weight is not None:
        sw = as_tensor(sample_weight)
        weighted = per_sample * sw.data
        parents = (logits, labels, sw)
    else:
        sw = None
        weighted = per_sample
        parents = (logits, labels)
    count = weighted.size
    out = weighted.mean()
    profiling.tock("loss.bce_fused_forward", start)

    def backward(g):
        start = profiling.tick()
        scale = g / count
        base = _stable_sigmoid(x) - y
        if sw is None:
            grad_logits = unbroadcast(
                np.broadcast_to(scale * base, weighted.shape), logits.shape
            )
            grad_labels = unbroadcast(
                np.broadcast_to(scale * (-x), weighted.shape), labels.shape
            )
            grads = (grad_logits, grad_labels)
        else:
            grad_logits = unbroadcast(
                np.broadcast_to(scale * base * sw.data, weighted.shape),
                logits.shape,
            )
            grad_labels = unbroadcast(
                np.broadcast_to(scale * (-x) * sw.data, weighted.shape),
                labels.shape,
            )
            grad_weight = unbroadcast(
                np.broadcast_to(scale * per_sample, weighted.shape), sw.shape
            )
            grads = (grad_logits, grad_labels, grad_weight)
        profiling.tock("loss.bce_fused_backward", start)
        return grads

    node = Tensor._make(np.asarray(out), parents, backward)
    if _tracing.TRACER is not None:
        _tracing.TRACER.node(node, "bce", parents, per_sample=per_sample,
                             weighted=weighted, x=x, y=y)
    return node


def bce_with_logits_reference(logits, labels, sample_weight=None):
    """The original composed (4-node) BCE graph, kept for parity tests."""
    logits = as_tensor(logits)
    labels = as_tensor(labels)
    per_sample = logits.softplus() - logits * labels
    if sample_weight is not None:
        per_sample = per_sample * as_tensor(sample_weight)
    return per_sample.mean()


def mse_loss(pred, target):
    """Mean squared error."""
    diff = as_tensor(pred) - as_tensor(target)
    return (diff * diff).mean()


def l2_penalty(params):
    """Sum of squared entries over an iterable of tensors."""
    total = None
    for p in params:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        raise ValueError("l2_penalty needs at least one tensor")
    return total
