"""Functional building blocks composed from :class:`~repro.nn.tensor.Tensor`.

Everything here is differentiable (where meaningful) and built either from
primitives defined on ``Tensor`` or as new primitives with hand-written
backward passes (``concat``, ``embedding``), all covered by gradcheck tests.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softplus",
    "leaky_relu",
    "softmax",
    "dropout",
    "concat",
    "stack",
    "embedding",
    "linear",
    "bce_with_logits",
    "mse_loss",
    "l2_penalty",
]


def relu(x):
    return as_tensor(x).relu()


def sigmoid(x):
    return as_tensor(x).sigmoid()


def tanh(x):
    return as_tensor(x).tanh()


def softplus(x):
    return as_tensor(x).softplus()


def leaky_relu(x, negative_slope=0.01):
    x = as_tensor(x)
    mask = x.data > 0.0
    scale = np.where(mask, 1.0, negative_slope)
    return Tensor._make(x.data * scale, (x,), lambda g: (g * scale,))


def softmax(x, axis=-1):
    """Softmax along ``axis``, numerically stabilized with a detached max."""
    x = as_tensor(x)
    shift = x - np.max(x.data, axis=axis, keepdims=True)
    exp = shift.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def dropout(x, rate, rng, training=True):
    """Inverted dropout: zero activations with probability ``rate``.

    ``rng`` must be a ``numpy.random.Generator``; passing it explicitly keeps
    every training run reproducible.
    """
    x = as_tensor(x)
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * keep


def concat(tensors, axis=-1):
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(g):
        return tuple(np.split(g, boundaries, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors, axis=0):
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.moveaxis(g, axis, 0))

    return Tensor._make(data, tuple(tensors), backward)


def embedding(weight, indices):
    """Gather rows ``indices`` from ``weight`` ([n, d] -> [len(indices), d]).

    The backward pass scatter-adds into the weight gradient, which is the
    sparse-embedding update the paper's PS-Worker cache (Section IV-E) is
    built around.
    """
    weight = as_tensor(weight)
    indices = np.asarray(indices, dtype=np.int64)

    def backward(g):
        grad = np.zeros_like(weight.data)
        np.add.at(grad, indices, g)
        return (grad,)

    return Tensor._make(weight.data[indices], (weight,), backward)


def linear(x, weight, bias=None):
    """Affine map ``x @ weight + bias`` with [in, out]-shaped weight."""
    out = as_tensor(x) @ weight
    if bias is not None:
        out = out + bias
    return out


def bce_with_logits(logits, labels, sample_weight=None):
    """Mean binary cross entropy on raw logits (numerically stable).

    Uses the identity ``BCE(x, y) = softplus(x) - x*y`` for y in {0, 1},
    which also holds (as the expected cross entropy) for soft labels.
    """
    logits = as_tensor(logits)
    labels = as_tensor(labels)
    per_sample = logits.softplus() - logits * labels
    if sample_weight is not None:
        per_sample = per_sample * as_tensor(sample_weight)
    return per_sample.mean()


def mse_loss(pred, target):
    """Mean squared error."""
    diff = as_tensor(pred) - as_tensor(target)
    return (diff * diff).mean()


def l2_penalty(params):
    """Sum of squared entries over an iterable of tensors."""
    total = None
    for p in params:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        raise ValueError("l2_penalty needs at least one tensor")
    return total
