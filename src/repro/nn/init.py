"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
experiment in the benchmark harness is exactly reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "normal", "zeros"]


def glorot_uniform(rng, shape):
    """Glorot/Xavier uniform initialization for [fan_in, fan_out] weights."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(rng, shape):
    """He uniform initialization (appropriate before ReLU)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(rng, shape, std=0.01):
    """Gaussian initialization, the common choice for embedding tables."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape):
    """All-zero initialization (biases, specific-parameter deltas)."""
    return np.zeros(shape, dtype=np.float64)


def _fans(shape):
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive
