"""Module system: parameter containers with named state dicts.

The learning frameworks in this reproduction (DN, DR, MAMDR, Reptile, ...)
are *model agnostic*: they only interact with a model through its named
parameter state.  :class:`Module` therefore provides exactly the surface the
paper's framework requires — ``named_parameters``, ``state_dict`` and
``load_state_dict`` — plus train/eval mode handling for dropout.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..tooling import sanitizer as _sanitizer
from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module."""

    def __init__(self, data):
        super().__init__(np.array(data, dtype=np.float64), requires_grad=True)
        # Parameters are the tensors whose buffers escape as raw arrays
        # (state dicts, zero-copy views); registering ownership lets the
        # sanitizer trace an in-place view mutation back to this tensor.
        _sanitizer.register_owner(self.data, self)

    def assign_rows(self, rows, values):
        """Scatter ``values`` into ``rows`` of this parameter in place.

        The serving row-path (``repro.serving``) refreshes only the
        embedding rows a request batch actually reads, instead of loading
        the whole table per domain switch; this is the sanctioned engine
        entry point for that partial write (version counters stay
        truthful, unlike an ad-hoc ``param.data[rows] = ...``).
        """
        self.data[rows] = np.asarray(values, dtype=np.float64)
        self.bump_version()


class Module:
    """Base class for all models and layers.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration happens automatically in ``__setattr__``.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix=""):
        """Yield ``(dotted_name, Parameter)`` pairs in registration order."""
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=prefix + name + ".")

    def parameters(self):
        """Yield all parameters."""
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix=""):
        """Yield ``(dotted_name, Module)`` pairs, including self as ``""``."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=prefix + name + ".")

    def num_parameters(self):
        """Total number of scalar parameters."""
        return sum(p.data.size for p in self.parameters())

    def zero_grad(self):
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # State dicts — the model-agnostic interface used by every framework
    # ------------------------------------------------------------------
    def state_dict(self):
        """Return an OrderedDict of parameter copies keyed by dotted name."""
        return OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters()
        )

    def load_state_dict(self, state, names=None):
        """Copy arrays from ``state`` into the matching parameters.

        Raises ``KeyError`` on missing entries and ``ValueError`` on shape
        mismatch — silent partial loads hide bugs in meta-learning code.

        ``names`` optionally restricts the load to a subset of parameter
        names (an *explicit* partial load).  The serving hot path uses this
        to refresh the small dense parameters on a domain switch while
        embedding tables are refreshed row-wise through
        :meth:`Parameter.assign_rows`.
        """
        for name, param in self.named_parameters():
            if names is not None and name not in names:
                continue
            if name not in state:
                raise KeyError(f"state dict is missing parameter {name!r}")
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            previous = param.data
            param.data = value.copy()
            param.bump_version()
            _sanitizer.rebind_owner(param, previous)

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode=True):
        """Set training mode recursively (affects dropout etc.)."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self):
        """Set evaluation mode recursively."""
        return self.train(False)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class ModuleList(Module):
    """A list of submodules, registered under their integer index."""

    def __init__(self, modules=()):
        super().__init__()
        self._items = []
        for module in modules:
            self.append(module)

    def append(self, module):
        if not isinstance(module, Module):
            raise TypeError("ModuleList only holds Module instances")
        self._modules[str(len(self._items))] = module
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]
