"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for the whole reproduction: the
paper builds on TensorFlow, which is unavailable here, so we implement a
small define-by-run autograd engine.  A :class:`Tensor` wraps a float64
``numpy.ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` on a scalar result propagates gradients to every
tensor created with ``requires_grad=True``.

All primitive operations support numpy broadcasting; gradients flowing into
a broadcast operand are reduced back to the operand's shape (see
:func:`unbroadcast`).  Every primitive's backward pass is verified against
central finite differences in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar

import numpy as np

from ..tooling import sanitizer as _sanitizer
from . import _tracing
from .sparse import SparseGrad, accumulate_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
]

# Whether operations record the autodiff graph.  A ContextVar rather than a
# module global so that nested ``no_grad()`` blocks restore correctly even
# under exceptions, and so one thread (or async task) entering ``no_grad``
# cannot leak the disabled state into another.
_GRAD_ENABLED = ContextVar("repro_grad_enabled", default=True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (for inference)."""
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def is_grad_enabled():
    """Return whether operations are currently recorded for autodiff."""
    return _GRAD_ENABLED.get()


def unbroadcast(grad, shape):
    """Reduce ``grad`` back to ``shape`` after a broadcast forward pass.

    numpy broadcasting may (a) prepend dimensions and (b) stretch size-1
    dimensions.  The adjoint of broadcasting is summation over exactly those
    axes.
    """
    if grad.shape == shape:
        return grad
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    stretched = tuple(
        axis
        for axis, size in enumerate(shape)
        if size == 1 and grad.shape[axis] != 1
    )
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad


def _coerce(value):
    """Return ``value`` as a float64 ndarray (scalars allowed)."""
    if isinstance(value, Tensor):
        raise TypeError("pass Tensor directly, do not coerce")
    return np.asarray(value, dtype=np.float64)


def as_tensor(value, requires_grad=False):
    """Wrap ``value`` in a :class:`Tensor` unless it already is one."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts; stored as float64.
    requires_grad:
        When true, :meth:`backward` accumulates into :attr:`grad`.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_version",
        "_op",
        "_saved_versions",
        "_stack",
        "__weakref__",
    )

    def __init__(self, data, requires_grad=False):
        self.data = _coerce(data) if not isinstance(data, np.ndarray) else data.astype(np.float64, copy=False)
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents = ()
        # Sanitizer state (see repro.tooling.sanitizer): _version counts
        # in-place mutations of ``data``; the rest is populated per node
        # only while sanitize()/anomaly_mode() is active.
        self._version = 0
        self._op = None
        self._saved_versions = None
        self._stack = None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def numpy(self):
        """Return the underlying array (no copy)."""
        return self.data

    def item(self):
        """Return the single element of a scalar tensor as a float."""
        return float(self.data)

    def detach(self):
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self):
        """Clear the accumulated gradient."""
        self.grad = None

    def bump_version(self):
        """Record an in-place mutation of this tensor's buffer.

        Every code path that mutates ``data`` without rebinding it
        (optimizer steps, PS-worker row writes, the in-place state ops)
        must call this so graphs recorded under
        :func:`repro.tooling.sanitize` can detect stale saved buffers.
        """
        self._version += 1

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward_fn):
        """Create a result tensor, recording the graph when enabled."""
        track = _GRAD_ENABLED.get() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=track)
        if track:
            out._parents = tuple(parents)
            out._backward = backward_fn
        if _sanitizer._ACTIVE:
            # Sanitizer/anomaly bookkeeping: saved operand versions, op
            # name, creation stack, forward NaN/Inf check.
            _sanitizer.on_node_created(out, parents, backward_fn)
        return out

    def backward(self, grad=None):
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (the tensor must then be a scalar, which is
        the common "loss.backward()" case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        topo_order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo_order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(topo_order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaves keep sparse gradients sparse: optimizers have a
                # row-wise fast path, and densifying here would defeat it.
                if node.requires_grad:
                    node.grad = (
                        node_grad
                        if node.grad is None
                        else accumulate_grad(node.grad, node_grad)
                    )
                continue
            if isinstance(node_grad, SparseGrad):
                # Interior nodes expect dense arrays in their backward fns.
                _sanitizer.note_densify("Tensor.backward.interior_node")
                node_grad = node_grad.to_dense()
            if node._saved_versions is not None:
                _sanitizer.check_versions(node)
            parent_grads = node._backward(node_grad)
            if _sanitizer._ANOMALY:
                _sanitizer.check_backward_grads(node, parent_grads)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = accumulate_grad(grads[key], parent_grad)
                else:
                    grads[key] = parent_grad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = as_tensor(other)
        out = Tensor._make(
            self.data + other.data,
            (self, other),
            lambda g: (unbroadcast(g, self.shape), unbroadcast(g, other.shape)),
        )
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "add", (self, other))
        return out

    __radd__ = __add__

    def __sub__(self, other):
        other = as_tensor(other)
        out = Tensor._make(
            self.data - other.data,
            (self, other),
            lambda g: (unbroadcast(g, self.shape), unbroadcast(-g, other.shape)),
        )
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "sub", (self, other))
        return out

    def __rsub__(self, other):
        return as_tensor(other) - self

    def __mul__(self, other):
        other = as_tensor(other)
        out = Tensor._make(
            self.data * other.data,
            (self, other),
            lambda g: (
                unbroadcast(g * other.data, self.shape),
                unbroadcast(g * self.data, other.shape),
            ),
        )
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "mul", (self, other))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)
        out = Tensor._make(
            self.data / other.data,
            (self, other),
            lambda g: (
                unbroadcast(g / other.data, self.shape),
                unbroadcast(-g * self.data / (other.data ** 2), other.shape),
            ),
        )
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "div", (self, other))
        return out

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __neg__(self):
        out = Tensor._make(-self.data, (self,), lambda g: (-g,))
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "neg", (self,))
        return out

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent
        out = Tensor._make(
            data,
            (self,),
            lambda g: (g * exponent * self.data ** (exponent - 1),),
        )
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "pow", (self,), exponent=exponent)
        return out

    # ------------------------------------------------------------------
    # Matrix multiplication (supports batched operands, ndim >= 2)
    # ------------------------------------------------------------------
    def __matmul__(self, other):
        other = as_tensor(other)
        if self.ndim < 2 or other.ndim < 2:
            raise ValueError("matmul requires ndim >= 2 operands")

        def backward(g):
            grad_self = unbroadcast(np.matmul(g, np.swapaxes(other.data, -1, -2)), self.shape)
            grad_other = unbroadcast(np.matmul(np.swapaxes(self.data, -1, -2), g), other.shape)
            return grad_self, grad_other

        out = Tensor._make(np.matmul(self.data, other.data), (self, other), backward)
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "matmul", (self, other))
        return out

    # ------------------------------------------------------------------
    # Nonlinearities used pervasively enough to be primitives
    # ------------------------------------------------------------------
    def exp(self):
        data = np.exp(self.data)
        out = Tensor._make(data, (self,), lambda g: (g * data,))
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "exp", (self,))
        return out

    def log(self):
        out = Tensor._make(np.log(self.data), (self,), lambda g: (g / self.data,))
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "log", (self,))
        return out

    def sqrt(self):
        data = np.sqrt(self.data)
        out = Tensor._make(data, (self,), lambda g: (g / (2.0 * data),))
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "sqrt", (self,))
        return out

    def tanh(self):
        data = np.tanh(self.data)
        out = Tensor._make(data, (self,), lambda g: (g * (1.0 - data ** 2),))
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "tanh", (self,))
        return out

    def sigmoid(self):
        data = _stable_sigmoid(self.data)
        out = Tensor._make(data, (self,), lambda g: (g * data * (1.0 - data),))
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "sigmoid", (self,))
        return out

    def relu(self):
        mask = self.data > 0.0
        out = Tensor._make(self.data * mask, (self,), lambda g: (g * mask,))
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "relu", (self,), mask=mask)
        return out

    def softplus(self):
        """Numerically stable log(1 + exp(x)); gradient is sigmoid(x)."""
        data = np.maximum(self.data, 0.0) + np.log1p(np.exp(-np.abs(self.data)))
        out = Tensor._make(data, (self,), lambda g: (g * _stable_sigmoid(self.data),))
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "softplus", (self,))
        return out

    def abs(self):
        sign = np.sign(self.data)
        out = Tensor._make(np.abs(self.data), (self,), lambda g: (g * sign,))
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "abs", (self,), sign=sign)
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad, self.shape).copy(),)

        out = Tensor._make(data, (self,), backward)
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "sum", (self,), axis=axis, keepdims=keepdims)
        return out

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = 1
            for ax in axis:
                count *= self.data.shape[ax]
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out = Tensor._make(
            self.data.reshape(shape),
            (self,),
            lambda g: (g.reshape(original),),
        )
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "reshape", (self,), shape=shape)
        return out

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out = Tensor._make(
            self.data.transpose(axes),
            (self,),
            lambda g: (g.transpose(inverse),),
        )
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "transpose", (self,), axes=axes)
        return out

    def swapaxes(self, axis_a, axis_b):
        out = Tensor._make(
            np.swapaxes(self.data, axis_a, axis_b),
            (self,),
            lambda g: (np.swapaxes(g, axis_a, axis_b),),
        )
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "swapaxes", (self,), axes=(axis_a, axis_b))
        return out

    def __getitem__(self, index):
        data = self.data[index]

        def backward(g):
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, g)
            return (grad,)

        out = Tensor._make(data, (self,), backward)
        if _tracing.TRACER is not None:
            _tracing.TRACER.node(out, "getitem", (self,), index=index)
        return out

    # ------------------------------------------------------------------
    # Comparisons (return plain numpy, never differentiable)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)


def _stable_sigmoid(x):
    """Sigmoid computed without overflow for large |x|."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
