"""Neural-network layers built on the module system.

Contains every layer the paper's model zoo needs: dense stacks for the MLP /
tower networks, embedding tables for sparse ids, dropout (rate 0.5 in the
paper's setup), layer normalization, and the Partitioned Normalization used
by STAR (per-domain statistics).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, ModuleList, Parameter


__all__ = [
    "Dense",
    "MLPBlock",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "PartitionedNorm",
    "Identity",
]

_ACTIVATIONS = {
    "relu": F.relu,
    "sigmoid": F.sigmoid,
    "tanh": F.tanh,
    "linear": lambda x: x,
}


def resolve_activation(name):
    """Look up an activation function by name."""
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; expected one of {sorted(_ACTIVATIONS)}"
        ) from None


class Identity(Module):
    """A no-op module (placeholder in configurable stacks)."""

    def forward(self, x):
        return x


class Dense(Module):
    """Fully connected layer ``y = act(x @ W + b)``."""

    def __init__(self, in_dim, out_dim, rng, activation="linear", use_bias=True):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        if activation == "relu":
            weight = init.he_uniform(rng, (in_dim, out_dim))
        else:
            weight = init.glorot_uniform(rng, (in_dim, out_dim))
        self.weight = Parameter(weight)
        self.bias = Parameter(init.zeros(out_dim)) if use_bias else None
        self.activation = activation
        self._activation = resolve_activation(activation)

    def forward(self, x):
        return F.fused_dense(x, self.weight, self.bias, activation=self.activation)


class MLPBlock(Module):
    """A stack of Dense layers with shared activation and optional dropout.

    This is the paper's "tower"/"expert"/"bottom" building block; the
    benchmark configuration uses hidden sizes like [256, 128, 64] with
    dropout rate 0.5.
    """

    def __init__(self, in_dim, hidden_dims, rng, activation="relu",
                 dropout_rate=0.0, out_activation=None):
        super().__init__()
        self.layers = ModuleList()
        dims = [in_dim] + list(hidden_dims)
        for depth, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            is_last = depth == len(hidden_dims) - 1
            act = (out_activation or activation) if is_last else activation
            self.layers.append(Dense(d_in, d_out, rng, activation=act))
        self.dropout = Dropout(dropout_rate, rng) if dropout_rate else None
        self.out_dim = dims[-1]

    def forward(self, x):
        for index, layer in enumerate(self.layers):
            x = layer(x)
            is_last = index == len(self.layers) - 1
            if self.dropout is not None and not is_last:
                x = self.dropout(x)
        return x


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings, dim, rng, std=0.01):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal(rng, (num_embeddings, dim), std=std))

    def forward(self, indices):
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        # Single-scan validation: reinterpreting int64 as uint64 maps
        # negative ids above any valid table size, so one clipped comparison
        # catches both out-of-range directions (vs. the old min()+max()).
        if indices.size and (
            indices.view(np.uint64) >= np.uint64(self.num_embeddings)
        ).any():
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return F.embedding(self.weight, indices)


class Dropout(Module):
    """Inverted dropout with its own RNG stream for reproducibility."""

    def __init__(self, rate, rng):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x):
        return F.dropout(x, self.rate, self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim, eps=1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(init.zeros(dim))
        self.eps = eps

    def forward(self, x):
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class PartitionedNorm(Module):
    """STAR's Partitioned Normalization: per-domain scale/shift statistics.

    A shared LayerNorm-style normalization whose affine parameters are the
    element-wise combination of shared and domain-specific factors, following
    STAR (Sheng et al., CIKM 2021): gamma = gamma_s * gamma_d, beta =
    beta_s + beta_d.
    """

    def __init__(self, dim, num_domains, eps=1e-5):
        super().__init__()
        self.gamma_shared = Parameter(np.ones(dim))
        self.beta_shared = Parameter(init.zeros(dim))
        self.gamma_domain = Parameter(np.ones((num_domains, dim)))
        self.beta_domain = Parameter(init.zeros((num_domains, dim)))
        self.eps = eps
        self.num_domains = num_domains

    def forward(self, x, domain):
        if not 0 <= domain < self.num_domains:
            raise IndexError(f"domain {domain} out of range [0, {self.num_domains})")
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        gamma = self.gamma_shared * self.gamma_domain[domain]
        beta = self.beta_shared + self.beta_domain[domain]
        return normed * gamma + beta
