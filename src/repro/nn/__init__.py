"""``repro.nn`` — the from-scratch deep-learning substrate.

A vectorized reverse-mode autodiff engine (:mod:`repro.nn.tensor`), a module
system with named state dicts (:mod:`repro.nn.module`), layers, initializers,
optimizers, and state-dict arithmetic used by every meta-learning algorithm
in this reproduction.
"""

from . import functional
from .compile import (
    StepExecutor,
    compilation_enabled,
    compile_context,
    compiled_execution,
    eager_step,
    executor_for,
    active_executor,
)
from .init import glorot_uniform, he_uniform, normal, zeros
from .layers import (
    Dense,
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    MLPBlock,
    PartitionedNorm,
)
from .module import Module, ModuleList, Parameter
from .optim import SGD, Adagrad, Adam, Optimizer, make_optimizer
from .serialization import (
    SerializationError,
    load_bank_states,
    load_state,
    save_bank_states,
    save_state,
    state_checksum,
)
from .sparse import SparseGrad, sparse_grads_enabled, use_sparse_grads
from .state import (
    clone_state,
    state_add,
    state_add_,
    state_allclose,
    state_dot,
    state_interpolate,
    state_interpolate_,
    state_norm,
    state_scale,
    state_scale_,
    state_sub,
    state_sub_,
    zeros_like_state,
)
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "ModuleList",
    "Parameter",
    "Dense",
    "Dropout",
    "Embedding",
    "Identity",
    "LayerNorm",
    "MLPBlock",
    "PartitionedNorm",
    "Optimizer",
    "SGD",
    "Adam",
    "Adagrad",
    "make_optimizer",
    "save_state",
    "load_state",
    "save_bank_states",
    "load_bank_states",
    "SerializationError",
    "state_checksum",
    "functional",
    "glorot_uniform",
    "he_uniform",
    "normal",
    "zeros",
    "clone_state",
    "zeros_like_state",
    "state_add",
    "state_add_",
    "state_sub",
    "state_sub_",
    "state_scale",
    "state_scale_",
    "state_interpolate",
    "state_interpolate_",
    "state_dot",
    "state_norm",
    "state_allclose",
    "SparseGrad",
    "use_sparse_grads",
    "sparse_grads_enabled",
    "StepExecutor",
    "compiled_execution",
    "compile_context",
    "compilation_enabled",
    "executor_for",
    "active_executor",
    "eager_step",
]
