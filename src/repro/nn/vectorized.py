"""Lane-vectorized replay of compiled training steps.

One CPU core cannot speed up MAMDR's bulk-synchronous rounds by forking
processes — but it can exploit the *same* independence those rounds
expose.  In a sync DN round every worker starts its inner trajectory
from the identical snapshot Θ; in a DR round every target's helper pass
starts from its own ``θ_S + θ_i``.  The trajectories never interact
until the barrier, so ``n`` of them can be replayed as **one** batched
program whose every buffer carries a leading *lane* axis: each ufunc and
matmul dispatches once for all lanes instead of once per lane, amortizing
numpy's per-call overhead (the dominant cost at recommendation-model
sizes) across the whole fleet.

:class:`VectorTape` is built from a compiled :class:`~repro.nn.compile.
Tape` — its chronological trace records and declarative backward plan —
and mirrors every kernel with a batched twin that runs the *identical*
ufunc sequence on ``(n, …)`` arrays:

* elementwise ops are trivially bitwise-equal per lane;
* batched ``matmul`` over a stacked lane axis performs the same per-slice
  GEMMs as ``n`` separate 2-D calls;
* lane-axis-excluded reductions (``add.reduce`` row-wise, bias-gradient
  sums) use the same pairwise summation per lane;
* dropout masks are drawn from ``n`` per-lane ``Generator`` objects so
  each lane consumes exactly the stream its sequential twin would.

Parameters and gradients live in two lane-major ``(n, P)`` arenas; each
(lane, parameter) pair is a reshaped *view* into its row, and the fused
:class:`BatchedAdam`/:class:`BatchedSGD` run the optimizer's elementwise
update chain once over the whole arena — the same collapse the eager
flat-Adam schedule performs per model, now per fleet.

Anything the engine cannot reproduce bit-for-bit — embedding tables,
sparse gradients, lane-varying shapes, ops without a batched twin —
raises :class:`VectorBail`; callers (``repro.distributed.vector``) fall
back to the sequential reference, which is also the parity oracle the
tests compare against bitwise.
"""

from __future__ import annotations

import numpy as np

from ..utils import profiling
from .module import Parameter
from .tensor import _stable_sigmoid

__all__ = [
    "VectorBail",
    "VectorTape",
    "BatchedAdam",
    "BatchedSGD",
    "vector_tape_for",
]


class VectorBail(Exception):
    """The tape cannot be lane-vectorized; use the sequential reference."""


def _lane_view(arena, off, size, shape):
    """A ``(n, *shape)`` view of columns ``off:off+size`` of ``arena``."""
    view = arena[:, off:off + size]
    view = view.reshape((arena.shape[0],) + tuple(shape))
    if not np.shares_memory(view, arena):  # pragma: no cover - layout invariant
        raise VectorBail("parameter slice does not reshape to a view")
    return view


def _expand(arr, batched, lane_ndim):
    """Left-pad a batched operand's per-lane shape with 1s to ``lane_ndim``.

    Eager broadcasting left-pads the smaller operand; with a leading lane
    axis the padding must go *between* the lane axis and the data axes.
    """
    if not batched:
        return arr
    have = arr.ndim - 1
    if have == lane_ndim:
        return arr
    if have > lane_ndim:
        raise VectorBail("operand outranks the output")
    return arr.reshape((arr.shape[0],) + (1,) * (lane_ndim - have) + arr.shape[1:])


# ----------------------------------------------------------------------
# Batched forward kernels — each mirrors the eager/compiled kernel's
# exact ufunc sequence with a leading lane axis.  ``vt._operand`` hands
# back ``(array, is_batched)``: parameters resolve to arena views, staged
# inputs and aux buffers to their batched twins, constants to themselves.
# ----------------------------------------------------------------------

def _vbinary(ufunc):
    def build(vt, rec, buf):
        a, ab = vt._operand(rec.parents[0])
        c, cb = vt._operand(rec.parents[1])
        if not (ab or cb):
            raise VectorBail("binary op over two lane constants")
        lane_nd = rec.out.data.ndim
        a = _expand(a, ab, lane_nd)
        c = _expand(c, cb, lane_nd)

        def run():
            ufunc(a, c, out=buf)

        return run

    return build


def _vunary(ufunc):
    def build(vt, rec, buf):
        a, ab = vt._operand(rec.parents[0])
        if not ab:
            raise VectorBail("unary op over a lane constant")

        def run():
            ufunc(a, out=buf)

        return run

    return build


def _vfwd_pow(vt, rec, buf):
    a, ab = vt._operand(rec.parents[0])
    if not ab:
        raise VectorBail("pow over a lane constant")
    exponent = rec.aux["exponent"]

    def run():
        np.copyto(buf, a ** exponent)

    return run


def _vfwd_matmul(vt, rec, buf):
    a, ab = vt._operand(rec.parents[0])
    c, cb = vt._operand(rec.parents[1])
    if not (ab or cb):
        raise VectorBail("matmul over two lane constants")
    for arr, batched in ((a, ab), (c, cb)):
        if (arr.ndim - 1 if batched else arr.ndim) != 2:
            raise VectorBail("matmul operands must be 2-D per lane")

    def run():
        np.matmul(a, c, out=buf)

    return run


def _vfwd_sigmoid(vt, rec, buf):
    a, ab = vt._operand(rec.parents[0])
    if not ab:
        raise VectorBail("sigmoid over a lane constant")

    def run():
        np.copyto(buf, _stable_sigmoid(a))

    return run


def _vfwd_relu(vt, rec, buf):
    a, ab = vt._operand(rec.parents[0])
    if not ab:
        raise VectorBail("relu over a lane constant")
    mask = np.empty(buf.shape, dtype=rec.aux["mask"].dtype)

    def run():
        np.greater(a, 0.0, out=mask)
        np.multiply(a, mask, out=buf)

    return run


def _vfwd_softplus(vt, rec, buf):
    a, ab = vt._operand(rec.parents[0])
    if not ab:
        raise VectorBail("softplus over a lane constant")

    def run():
        np.copyto(buf, np.maximum(a, 0.0) + np.log1p(np.exp(-np.abs(a))))

    return run


def _vfwd_sum(vt, rec, buf):
    a, ab = vt._operand(rec.parents[0])
    axis, keepdims = rec.aux["axis"], rec.aux["keepdims"]
    if not ab or not isinstance(axis, int):
        raise VectorBail("sum must reduce a batched operand over one axis")
    ax = axis + 1 if axis >= 0 else axis

    def run():
        np.copyto(buf, a.sum(axis=ax, keepdims=keepdims))

    return run


def _vfwd_concat(vt, rec, buf):
    ops = [vt._operand(p) for p in rec.parents]
    if not all(batched for _, batched in ops):
        raise VectorBail("concat over lane constants")
    arrays = [arr for arr, _ in ops]
    axis = rec.aux["axis"]
    ax = axis + 1 if axis >= 0 else axis

    def run():
        np.concatenate(arrays, axis=ax, out=buf)

    return run


def _vfwd_fused_dense(vt, rec, buf):
    has_bias = len(rec.parents) == 3
    if rec.parents[0].data.ndim != 2 or rec.parents[1].data.ndim != 2:
        raise VectorBail("fused_dense operands must be 2-D per lane")
    x, _ = vt._operand(rec.parents[0])
    w, _ = vt._operand(rec.parents[1])
    activation = rec.aux["activation"]
    bias_e = None
    if has_bias:
        bias, bb = vt._operand(rec.parents[2])
        if rec.parents[2].data.ndim != 1:
            raise VectorBail("fused_dense bias must be 1-D per lane")
        # (n, h) -> (n, 1, h) so each lane's bias broadcasts over its rows
        # exactly like the eager (h,) bias over a (b, h) activation.
        bias_e = bias.reshape((bias.shape[0], 1, bias.shape[1])) if bb else bias
    zbuf = buf if activation == "linear" else np.empty_like(buf)

    def run():
        np.matmul(x, w, out=zbuf)
        if bias_e is not None:
            np.add(zbuf, bias_e, out=zbuf)
        if activation == "relu":
            np.maximum(zbuf, 0.0, out=buf)
        elif activation == "sigmoid":
            np.copyto(buf, _stable_sigmoid(zbuf))
        elif activation == "tanh":
            np.tanh(zbuf, out=buf)

    return run


def _vfwd_bce(vt, rec, buf):
    if len(rec.parents) == 3:
        raise VectorBail("sample-weighted bce")
    per_sample = rec.aux["per_sample"]
    if (rec.parents[0].data.shape != per_sample.shape
            or rec.parents[1].data.shape != per_sample.shape):
        raise VectorBail("broadcasting bce")
    x, xb = vt._operand(rec.parents[0])
    y, _ = vt._operand(rec.parents[1])
    if not xb:
        raise VectorBail("bce logits are a lane constant")
    n = vt.n_lanes
    count = per_sample.size
    t1 = np.empty((n,) + per_sample.shape)
    t2 = np.empty((n,) + per_sample.shape)
    per_b = np.empty((n,) + per_sample.shape)
    flat = per_b.reshape(n, -1)

    def run():
        # max(x,0) + log1p(exp(-|x|)) - x*y, ufunc-for-ufunc as eager;
        # the mean is a per-lane row reduce — the same pairwise summation
        # each lane's flat add.reduce would perform.
        np.absolute(x, out=t1)
        np.negative(t1, out=t1)
        np.exp(t1, out=t1)
        np.log1p(t1, out=t1)
        np.maximum(x, 0.0, out=t2)
        np.add(t2, t1, out=t2)
        np.multiply(x, y, out=t1)
        np.subtract(t2, t1, out=per_b)
        np.add.reduce(flat, axis=-1, out=buf)
        np.divide(buf, count, out=buf)

    return run


_VFWD = {
    "add": _vbinary(np.add),
    "sub": _vbinary(np.subtract),
    "mul": _vbinary(np.multiply),
    "div": _vbinary(np.divide),
    "neg": _vunary(np.negative),
    "exp": _vunary(np.exp),
    "log": _vunary(np.log),
    "sqrt": _vunary(np.sqrt),
    "tanh": _vunary(np.tanh),
    "pow": _vfwd_pow,
    "matmul": _vfwd_matmul,
    "sigmoid": _vfwd_sigmoid,
    "relu": _vfwd_relu,
    "softplus": _vfwd_softplus,
    "sum": _vfwd_sum,
    "concat": _vfwd_concat,
    "fused_dense": _vfwd_fused_dense,
    "bce": _vfwd_bce,
}


# ----------------------------------------------------------------------
# Batched backward kernels — built from the tape's declarative plan
# ``(record, in_cell, targets)``; cells hold batched gradient arrays.
# ----------------------------------------------------------------------

def _first_writes_only(targets):
    return all(t is None or t[1] for t in targets)


def _vbwd_bce(vt, rec, ci, targets):
    if len(rec.parents) == 3:
        raise VectorBail("sample-weighted bce backward")
    lt = targets[0]
    if lt is None or not lt[1] or targets[1] is not None:
        raise VectorBail("unsupported bce gradient targets")
    weighted = rec.aux["weighted"]
    lane_shape = rec.parents[0].data.shape
    if weighted.shape != lane_shape or rec.parents[1].data.shape != lane_shape:
        raise VectorBail("broadcasting bce backward")
    x, xb = vt._operand(rec.parents[0])
    y, _ = vt._operand(rec.parents[1])
    if not xb:
        raise VectorBail("bce logits are a lane constant")
    n = vt.n_lanes
    count = weighted.size
    gx = np.empty((n,) + lane_shape)
    t = np.empty((n,) + lane_shape)
    u = np.empty((n,) + lane_shape)
    mask = np.empty((n,) + lane_shape, dtype=bool)
    scale = np.empty(n)
    scale_e = scale.reshape((n,) + (1,) * len(lane_shape))
    cell = lt[0]

    def run(cells):
        np.divide(cells[ci], count, out=scale)
        np.absolute(x, out=t)
        np.negative(t, out=t)
        np.exp(t, out=t)                    # e = exp(-|x|)
        np.add(t, 1.0, out=u)               # 1 + e
        np.divide(t, u, out=t)              # e / (1 + e)      (x < 0 branch)
        np.divide(1.0, u, out=u)            # 1 / (1 + e)      (x >= 0 branch)
        np.greater_equal(x, 0.0, out=mask)
        np.copyto(gx, t)
        np.copyto(gx, u, where=mask)
        np.subtract(gx, y, out=gx)
        np.multiply(gx, scale_e, out=gx)
        cells[cell] = gx

    return run


def _vbwd_fused_dense(vt, rec, ci, targets):
    parents = rec.parents
    x_t, w_t = parents[0], parents[1]
    bias_t = parents[2] if len(parents) == 3 else None
    if x_t.data.ndim != 2 or w_t.data.ndim != 2 or rec.out.data.ndim != 2:
        raise VectorBail("fused_dense backward operands must be 2-D per lane")
    if bias_t is not None and bias_t.data.ndim != 1:
        raise VectorBail("fused_dense bias must be 1-D per lane")
    if not _first_writes_only(targets):
        raise VectorBail("fused_dense gradient accumulation")
    xt, wt = targets[0], targets[1]
    bt = targets[2] if bias_t is not None else None
    x, _ = vt._operand(x_t)
    w, _ = vt._operand(w_t)
    outb, ob = vt._operand(rec.out)
    if not ob:
        raise VectorBail("fused_dense output is a lane constant")
    activation = rec.aux["activation"]
    n = vt.n_lanes
    gz = None if activation == "linear" else np.empty((n,) + rec.out.data.shape)
    tmp = None if activation == "linear" else np.empty((n,) + rec.out.data.shape)
    gx = np.empty((n,) + x_t.data.shape) if xt is not None else None
    gw = np.empty((n,) + w_t.data.shape) if wt is not None else None
    gb = np.empty((n,) + bias_t.data.shape) if bt is not None else None
    wT = w.swapaxes(-1, -2)
    xT = x.swapaxes(-1, -2)

    def run(cells):
        g = cells[ci]
        if activation == "relu":
            np.greater(outb, 0.0, out=tmp)
            np.multiply(g, tmp, out=gz)
            gzz = gz
        elif activation == "sigmoid":
            np.multiply(g, outb, out=gz)
            np.subtract(1.0, outb, out=tmp)
            np.multiply(gz, tmp, out=gz)
            gzz = gz
        elif activation == "tanh":
            np.square(outb, out=tmp)
            np.subtract(1.0, tmp, out=tmp)
            np.multiply(g, tmp, out=gz)
            gzz = gz
        else:
            gzz = g
        if xt is not None:
            np.matmul(gzz, wT, out=gx)
            cells[xt[0]] = gx
        if wt is not None:
            np.matmul(xT, gzz, out=gw)
            cells[wt[0]] = gw
        if bt is not None:
            # per-lane rows: eager's axis-0 reduce shifts past the lane axis
            np.add.reduce(gzz, axis=1, out=gb)
            cells[bt[0]] = gb

    return run


def _vbwd_concat(vt, rec, ci, targets):
    if not _first_writes_only(targets):
        raise VectorBail("concat gradient accumulation")
    axis = rec.aux["axis"]
    ndim = rec.out.data.ndim
    if axis < 0:
        axis += ndim
    slices, lo = [], 0
    for parent, target in zip(rec.parents, targets):
        hi = lo + parent.data.shape[axis]
        if target is not None:
            key = (slice(None),) * (axis + 1) + (slice(lo, hi),)
            slices.append((target[0], key))
        lo = hi

    def run(cells):
        g = cells[ci]
        for cell, key in slices:
            cells[cell] = g[key]

    return run


def _vbwd_mul(vt, rec, ci, targets):
    if not _first_writes_only(targets):
        raise VectorBail("mul gradient accumulation")
    outshape = rec.out.data.shape
    pairs = []
    for me, other, target in (
        (rec.parents[0], rec.parents[1], targets[0]),
        (rec.parents[1], rec.parents[0], targets[1]),
    ):
        if target is None:
            continue
        if me.data.shape != outshape:
            raise VectorBail("mul gradient would unbroadcast")
        oarr, ob = vt._operand(other)
        oarr = _expand(oarr, ob, len(outshape))
        pairs.append((oarr, target[0], np.empty((vt.n_lanes,) + outshape)))
    if not pairs:
        raise VectorBail("mul with no gradient targets")

    def run(cells):
        g = cells[ci]
        for oarr, cell, buf in pairs:
            np.multiply(g, oarr, out=buf)
            cells[cell] = buf

    return run


def _vbwd_reshape(vt, rec, ci, targets):
    target = targets[0]
    if target is None or not target[1]:
        raise VectorBail("reshape gradient accumulation")
    shape = (vt.n_lanes,) + rec.parents[0].data.shape
    cell = target[0]

    def run(cells):
        cells[cell] = cells[ci].reshape(shape)

    return run


def _vbwd_add(vt, rec, ci, targets):
    if not _first_writes_only(targets):
        raise VectorBail("add gradient accumulation")
    outshape = rec.out.data.shape
    cells_out = []
    for parent, target in zip(rec.parents, targets):
        if target is None:
            continue
        if parent.data.shape != outshape:
            raise VectorBail("add gradient would unbroadcast")
        cells_out.append(target[0])

    def run(cells):
        g = cells[ci]
        for cell in cells_out:
            cells[cell] = g

    return run


def _vbwd_sub(vt, rec, ci, targets):
    if not _first_writes_only(targets):
        raise VectorBail("sub gradient accumulation")
    outshape = rec.out.data.shape
    plus_cell = minus = None
    if targets[0] is not None:
        if rec.parents[0].data.shape != outshape:
            raise VectorBail("sub gradient would unbroadcast")
        plus_cell = targets[0][0]
    if targets[1] is not None:
        if rec.parents[1].data.shape != outshape:
            raise VectorBail("sub gradient would unbroadcast")
        minus = (targets[1][0], np.empty((vt.n_lanes,) + outshape))

    def run(cells):
        g = cells[ci]
        if plus_cell is not None:
            cells[plus_cell] = g
        if minus is not None:
            cell, buf = minus
            np.negative(g, out=buf)
            cells[cell] = buf

    return run


def _vbwd_neg(vt, rec, ci, targets):
    target = targets[0]
    if target is None or not target[1]:
        raise VectorBail("neg gradient accumulation")
    buf = np.empty((vt.n_lanes,) + rec.out.data.shape)
    cell = target[0]

    def run(cells):
        np.negative(cells[ci], out=buf)
        cells[cell] = buf

    return run


_VBWD = {
    "bce": _vbwd_bce,
    "fused_dense": _vbwd_fused_dense,
    "concat": _vbwd_concat,
    "mul": _vbwd_mul,
    "reshape": _vbwd_reshape,
    "add": _vbwd_add,
    "sub": _vbwd_sub,
    "neg": _vbwd_neg,
}

_VIEW_KINDS = frozenset({"reshape", "transpose", "swapaxes", "getitem"})


# ----------------------------------------------------------------------
# Batched optimizers over the lane-major arenas
# ----------------------------------------------------------------------

class BatchedAdam:
    """Adam over the whole ``(n, P)`` arena — one ufunc chain per step.

    Runs the exact elementwise sequence of the eager ``Adam._update`` (and
    the compiled flat-Adam schedule) with freshly zeroed moments, so ``n``
    lanes update bit-identically to ``n`` independent ``Adam`` instances
    created at the same time.
    """

    #: lanes per chunk of the update chain.  The 13-ufunc sequence touches
    #: six (chunk, P) arrays; past ~32 lanes the full-arena working set
    #: falls out of L2 and every ufunc streams from L3.  Chunking is pure
    #: loop tiling over the lane axis — elementwise ops, so the results
    #: are bitwise identical to one arena-wide pass.
    chunk_lanes = 8

    def __init__(self, vtape, lr, beta1=0.9, beta2=0.999, eps=1e-8):
        self._arena = vtape.arena
        self._grads = vtape.grad_arena
        self.lr, self.beta1, self.beta2, self.eps = lr, beta1, beta2, eps
        self._m = np.zeros_like(self._arena)
        self._v = np.zeros_like(self._arena)
        chunk = min(self.chunk_lanes, self._arena.shape[0])
        self._t1 = np.empty((chunk,) + self._arena.shape[1:])
        self._t2 = np.empty_like(self._t1)
        self._t = 0

    def step(self):
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        n = self._arena.shape[0]
        chunk = self._t1.shape[0]
        for start in range(0, n, chunk):
            rows = slice(start, min(start + chunk, n))
            size = rows.stop - rows.start
            m, v, g = self._m[rows], self._v[rows], self._grads[rows]
            t1, t2 = self._t1[:size], self._t2[:size]
            np.multiply(m, self.beta1, out=m)
            np.multiply(g, 1.0 - self.beta1, out=t1)
            np.add(m, t1, out=m)
            np.multiply(v, self.beta2, out=v)
            np.square(g, out=t1)
            np.multiply(t1, 1.0 - self.beta2, out=t1)
            np.add(v, t1, out=v)
            np.divide(m, bias1, out=t1)
            np.divide(v, bias2, out=t2)
            np.sqrt(t2, out=t2)
            np.add(t2, self.eps, out=t2)
            np.multiply(t1, self.lr, out=t1)
            np.divide(t1, t2, out=t1)
            np.subtract(self._arena[rows], t1, out=self._arena[rows])


class BatchedSGD:
    """Plain SGD (no momentum/decay) over the ``(n, P)`` arena."""

    def __init__(self, vtape, lr):
        self._arena = vtape.arena
        self._grads = vtape.grad_arena
        self.lr = lr
        self._t1 = np.empty_like(self._arena)

    def step(self):
        np.multiply(self._grads, self.lr, out=self._t1)
        np.subtract(self._arena, self._t1, out=self._arena)


_BATCHED_OPTIMIZERS = {"adam": BatchedAdam, "sgd": BatchedSGD}


# ----------------------------------------------------------------------
# VectorTape
# ----------------------------------------------------------------------

class VectorTape:
    """``n`` independent replays of one compiled step, batched over lanes."""

    def __init__(self, tape, model, n_lanes):
        if n_lanes < 1:
            raise VectorBail("need at least one lane")
        self.n_lanes = n_lanes
        self._tape_rngs = list(tape._rngs)
        self._lane_rngs = None
        if not tape._trace_records or not tape._backward_plan:
            raise VectorBail("tape carries no trace records")
        certificate = getattr(tape, "certificate", None)
        if certificate is not None and not certificate.certified:
            # The static verifier found a shape/dtype/aliasing problem in
            # the scalar tape; vectorizing it would only batch the bug.
            raise VectorBail(
                f"tape failed static certification: {certificate.bail_reason}"
            )

        # -- lane-major parameter/gradient arenas ------------------------
        named = list(model.named_parameters())
        if not named:
            raise VectorBail("model has no parameters")
        if {id(p) for _, p in named} != set(tape._leaf_param_ids):
            raise VectorBail("tape leaves are not exactly the model parameters")
        for _, param in named:
            if param.data.dtype != np.float64:
                raise VectorBail("non-float64 parameter")
        self._entries = []
        offset = 0
        for name, param in named:
            size = param.data.size
            self._entries.append((name, param, offset, size, param.data.shape))
            offset += size
        self.total_params = offset
        self.arena = np.zeros((n_lanes, offset))
        self.grad_arena = np.empty((n_lanes, offset))
        self._param_views = {}
        self._grad_views = {}
        self._state_views = []
        for name, param, off, size, shape in self._entries:
            pv = _lane_view(self.arena, off, size, shape)
            self._param_views[id(param)] = pv
            self._grad_views[id(param)] = _lane_view(self.grad_arena, off, size, shape)
            self._state_views.append((name, pv))

        # -- batched staging for per-replay batch inputs ------------------
        self._staged_by_id = {}
        self._staging = []
        for field, array in tape._staging:
            buf = np.empty((n_lanes,) + array.shape, dtype=array.dtype)
            self._staged_by_id[id(array)] = buf
            self._staging.append((field, buf))

        # -- batched schedules --------------------------------------------
        self._vmap = {}     # id(tensor) -> (batched array | constant, is_batched)
        self._bufmap = {}   # id(trace aux buffer) -> batched twin
        self._forward = []
        self._forward_kinds = []
        self._loss_b = None
        loss_buf = tape._loss_buf
        for rec in tape._trace_records:
            if rec.out is None:
                self._add_aux(rec)
            else:
                self._add_node(rec, loss_buf)
        if self._loss_b is None:
            raise VectorBail("loss output was not vectorized")

        self._backward = []
        self._backward_kinds = []
        for rec, ci, targets in tape._backward_plan:
            builder = _VBWD.get(rec.kind)
            if builder is None:
                raise VectorBail(f"no batched backward for op {rec.kind!r}")
            self._backward.append(builder(self, rec, ci, targets))
            self._backward_kinds.append(rec.kind)
        self._ncells = tape._ncells
        self._seed = np.ones(n_lanes)
        self._leaf_cells = list(tape._leaf_cells)

    # -- construction helpers ---------------------------------------------
    def _operand(self, t):
        key = id(t)
        cached = self._vmap.get(key)
        if cached is not None:
            return cached
        data = t.data
        if isinstance(t, Parameter):
            view = self._param_views.get(id(t))
            if view is None:
                raise VectorBail("parameter operand is not an arena leaf")
            entry = (view, True)
        else:
            staged = self._staged_by_id.get(id(data))
            if staged is not None:
                entry = (staged, True)
            else:
                aux = self._bufmap.get(id(data))
                entry = (aux, True) if aux is not None else (data, False)
        self._vmap[key] = entry
        return entry

    def _emit(self, kind, kernel):
        self._forward.append(kernel)
        self._forward_kinds.append(kind)

    def _add_aux(self, rec):
        kind, aux = rec.kind, rec.aux
        orig = aux["array"]
        n = self.n_lanes
        if kind == "rng_mask":
            rng, rate = aux["rng"], aux["rate"]
            slot = next(
                (i for i, r in enumerate(self._tape_rngs) if r is rng), None
            )
            if slot is None:  # pragma: no cover - tape invariant
                raise VectorBail("mask rng is not on the tape")
            buf = np.empty((n,) + orig.shape)
            draw = np.empty((n,) + orig.shape)
            keep = np.empty((n,) + orig.shape, dtype=bool)
            self._bufmap[id(orig)] = buf

            def run(self=self, slot=slot, rate=rate, draw=draw, keep=keep,
                    buf=buf):
                rngs = self._lane_rngs[slot]
                for lane, gen in enumerate(rngs):
                    gen.random(out=draw[lane])
                np.greater_equal(draw, rate, out=keep)
                np.divide(keep, 1.0 - rate, out=buf)

        elif kind == "fixed_gather":
            matrix = aux["matrix"]
            idx = self._staged_by_id.get(id(aux["indices"]))
            if idx is None:
                raise VectorBail("gather indices are not staged inputs")
            buf = np.empty((n,) + orig.shape, dtype=orig.dtype)
            self._bufmap[id(orig)] = buf

            def run(buf=buf, matrix=matrix, idx=idx):
                np.copyto(buf, matrix[idx])

        elif kind == "reduce_max":
            source, sb = self._operand(aux["source"])
            axis = aux["axis"]
            if not sb or not isinstance(axis, int):
                raise VectorBail("reduce_max over a lane constant")
            ax = axis + 1 if axis >= 0 else axis
            buf = np.empty((n,) + orig.shape, dtype=orig.dtype)
            self._bufmap[id(orig)] = buf

            def run(buf=buf, source=source, ax=ax):
                np.copyto(buf, np.max(source, axis=ax, keepdims=True))

        else:  # pragma: no cover - tracer and builder move in lockstep
            raise VectorBail(f"unknown aux record {kind!r}")
        self._emit(kind, run)

    def _add_node(self, rec, loss_buf):
        out = rec.out
        n = self.n_lanes
        if rec.kind in _VIEW_KINDS:
            if rec.kind != "reshape":
                raise VectorBail(f"view kind {rec.kind!r} is not vectorizable")
            parent_b, pb = self._operand(rec.parents[0])
            if not pb:
                raise VectorBail("reshape of a lane constant")
            shape = (n,) + out.data.shape
            shaped = parent_b.reshape(shape)
            if np.shares_memory(shaped, parent_b):
                self._vmap[id(out)] = (shaped, True)
                return
            buf = np.empty(shape)

            def run(buf=buf, parent_b=parent_b, shape=shape):
                np.copyto(buf, parent_b.reshape(shape))

            self._vmap[id(out)] = (buf, True)
            self._emit(rec.kind, run)
            return
        builder = _VFWD.get(rec.kind)
        if builder is None:
            raise VectorBail(f"no batched forward for op {rec.kind!r}")
        buf = np.empty((n,) + out.data.shape)
        kernel = builder(self, rec, buf)
        self._vmap[id(out)] = (buf, True)
        self._emit(rec.kind, kernel)
        if out.data is loss_buf:
            self._loss_b = buf

    # -- lane state I/O ----------------------------------------------------
    @property
    def param_names(self):
        return [name for name, _ in self._state_views]

    def set_lane_rngs(self, lane_rngs):
        """Per-lane RNG streams, one list of ``n`` generators per tape RNG."""
        if len(lane_rngs) != len(self._tape_rngs):
            raise ValueError("need one lane-generator list per tape rng")
        for gens in lane_rngs:
            if len(gens) != self.n_lanes:
                raise ValueError("need one generator per lane")
        self._lane_rngs = [list(gens) for gens in lane_rngs]

    def set_lane_rng_states(self, states_per_lane):
        """Seed the lane RNG streams from raw bit-generator states.

        ``states_per_lane[slot][lane]`` is a state dict for the
        ``slot``-th tape RNG on lane ``lane``.  Generators are allocated
        once per (tape, lane count) — this object is cached on the tape —
        and only re-seeded on subsequent rounds, which is much cheaper
        than building ``n_lanes`` fresh generators per round.  The state
        dicts are read, never retained or mutated.
        """
        if len(states_per_lane) != len(self._tape_rngs):
            raise ValueError("need one lane-state list per tape rng")
        if self._lane_rngs is None or any(
            len(gens) != self.n_lanes for gens in self._lane_rngs
        ):
            self._lane_rngs = [
                [
                    # lint: allow[raw-random] — type clone; state injected below.
                    np.random.Generator(type(rng.bit_generator)())
                    for _ in range(self.n_lanes)
                ]
                for rng in self._tape_rngs
            ]
        for gens, states in zip(self._lane_rngs, states_per_lane):
            if len(states) != self.n_lanes:
                raise ValueError("need one state per lane")
            for gen, state in zip(gens, states):
                gen.bit_generator.state = state

    def load_state(self, lane, state):
        """Load ``{name: ndarray}`` into one lane's arena row."""
        row = self.arena[lane]
        for name, _, off, size, _ in self._entries:
            row[off:off + size] = state[name].ravel()

    def lane_state(self, lane):
        """One lane's parameters as an owned ``{name: ndarray}``."""
        return {name: view[lane].copy() for name, view in self._state_views}

    def lane_delta(self, lane, base):
        """``lane params − base`` — the worker's / DR's delta expression."""
        return {name: view[lane] - base[name] for name, view in self._state_views}

    # -- arena-wide (flat) state algebra -----------------------------------
    # Elementwise ops over the whole (n, P) arena compute the identical
    # per-element values as per-lane per-parameter state algebra, while
    # collapsing n × n_params small-array dispatches into one.

    def flatten_state(self, state):
        """``{name: ndarray}`` → the ``(P,)`` row layout of the arena."""
        flat = np.empty(self.total_params)
        for name, _, off, size, _ in self._entries:
            flat[off:off + size] = state[name].ravel()
        return flat

    def load_rows(self, base_flat, delta_rows=None):
        """Set every lane to ``base (+ its delta row)`` in one dispatch.

        ``base_flat`` is a ``(P,)`` flat state; ``delta_rows`` an optional
        ``(n, P)`` per-lane delta — together the vector twin of loading
        ``state_add(base, delta_lane)`` into each lane.
        """
        if delta_rows is None:
            self.arena[:] = base_flat
        else:
            np.add(base_flat[np.newaxis, :], delta_rows, out=self.arena)

    def delta_rows(self, base_flat, out=None):
        """``(n, P)`` of every lane's ``params − base`` in one dispatch."""
        if out is None:
            out = np.empty_like(self.arena)
        np.subtract(self.arena, base_flat[np.newaxis, :], out=out)
        return out

    def row_state(self, row):
        """A flat ``(P,)`` row as ``{name: ndarray}`` *views* (no copies)."""
        out = {}
        for name, _, off, size, shape in self._entries:
            out[name] = row[off:off + size].reshape(shape)
        return out

    def make_optimizer(self, name, lr):
        cls = _BATCHED_OPTIMIZERS.get(name.lower())
        if cls is None:
            raise VectorBail(f"no batched optimizer for {name!r}")
        return cls(self, lr)

    # -- execution ---------------------------------------------------------
    def replay(self, batches, optimizer):
        """One training step on every lane; returns per-lane losses ``(n,)``."""
        if len(batches) != self.n_lanes:
            raise ValueError(
                f"expected {self.n_lanes} lane batches, got {len(batches)}"
            )
        if self._lane_rngs is None and self._tape_rngs:
            raise RuntimeError("set_lane_rngs must be called before replay")
        for field, buf in self._staging:
            for lane, batch in enumerate(batches):
                np.copyto(buf[lane], getattr(batch, field))
        profiled = profiling.is_active()
        if profiled:
            for kind, kernel in zip(self._forward_kinds, self._forward):
                start = profiling.tick()
                kernel()
                profiling.tock("tape.fwd." + kind, start)
        else:
            for kernel in self._forward:
                kernel()
        cells = [None] * self._ncells
        cells[0] = self._seed
        if profiled:
            for kind, step in zip(self._backward_kinds, self._backward):
                start = profiling.tick()
                step(cells)
                profiling.tock("tape.bwd." + kind, start)
        else:
            for step in self._backward:
                step(cells)
        for leaf, ci in self._leaf_cells:
            np.copyto(self._grad_views[id(leaf)], cells[ci])
        start = profiling.tick()
        optimizer.step()
        profiling.tock("optim.step", start)
        return self._loss_b.copy()


def vector_tape_for(tape, model, n_lanes):
    """The (cached) :class:`VectorTape` for ``(tape, n_lanes)``.

    A failed build is cached too, so callers bail fast on every round
    instead of re-attempting vectorization per epoch.
    """
    cached = tape._vector_cache.get(n_lanes, _UNBUILT)
    if cached is _UNBUILT:
        try:
            cached = VectorTape(tape, model, n_lanes)
        except VectorBail:
            tape._vector_cache[n_lanes] = None
            raise
        tape._vector_cache[n_lanes] = cached
    if cached is None:
        raise VectorBail("tape is not lane-vectorizable")
    return cached


_UNBUILT = object()
