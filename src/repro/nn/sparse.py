"""Sparse row-gradients for embedding tables.

MAMDR's serving story (Section IV-E) rests on cheap per-domain updates over
huge sparse id spaces: a minibatch touches a few hundred embedding rows out
of millions.  Representing the embedding gradient densely — a
``zeros_like(weight)`` the size of the whole table, scatter-filled with
``np.add.at`` — makes every training step cost O(table) instead of
O(batch).  :class:`SparseGrad` stores only the touched rows (unique ids +
segment-summed values) so the backward pass and the optimizer update both
scale with the batch.

Coalescing uses an ``argsort`` + ``np.add.reduceat`` segment reduction,
which is dramatically faster than ``np.add.at``'s per-element buffered
scatter.

The dense path is kept behind :func:`use_sparse_grads` so parity tests and
benchmarks can compare the two implementations in-process.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..tooling import sanitizer as _sanitizer
from ..utils import profiling

__all__ = [
    "SparseGrad",
    "accumulate_grad",
    "use_sparse_grads",
    "sparse_grads_enabled",
]

# Global toggle for the embedding fast path; flipped by ``use_sparse_grads``
# (dense fallback exists for parity testing and before/after benchmarks).
_SPARSE_ENABLED = True


@contextlib.contextmanager
def use_sparse_grads(enabled=True):
    """Context manager selecting sparse (default) or dense embedding grads."""
    global _SPARSE_ENABLED
    previous = _SPARSE_ENABLED
    _SPARSE_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _SPARSE_ENABLED = previous


def sparse_grads_enabled():
    """Whether ``F.embedding`` produces :class:`SparseGrad` backward values."""
    return _SPARSE_ENABLED


def _segment_sum(indices, values):
    """Sum ``values`` rows sharing an index; returns (unique_rows, sums).

    ``indices`` is 1-D int64, ``values`` is [len(indices), ...].  Sorting
    once and reducing contiguous segments replaces ``np.add.at``'s slow
    random scatter.
    """
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_idx[1:] != sorted_idx[:-1]))
    )
    rows = sorted_idx[starts]
    summed = np.add.reduceat(values[order], starts, axis=0)
    return rows, summed


class SparseGrad:
    """A gradient that is zero except on ``rows`` of a 2-D parameter.

    Attributes
    ----------
    shape:
        Shape of the (dense) parameter this gradient belongs to.
    rows:
        Sorted, unique int64 row indices with nonzero gradient.
    values:
        ``[len(rows), *shape[1:]]`` float64 array of per-row gradients.
    """

    __slots__ = ("shape", "rows", "values")

    def __init__(self, shape, rows, values):
        self.shape = tuple(shape)
        self.rows = rows
        self.values = values

    @classmethod
    def from_lookup(cls, indices, grad, shape):
        """Build the gradient of ``weight[indices]`` w.r.t. ``weight``.

        ``indices`` may have any shape; ``grad`` has shape
        ``indices.shape + shape[1:]``.
        """
        flat = np.ascontiguousarray(indices, dtype=np.int64).ravel()
        values = np.ascontiguousarray(grad, dtype=np.float64)
        values = values.reshape((flat.size,) + tuple(shape[1:]))
        if flat.size == 0:
            return cls(shape, flat, values)
        rows, summed = _segment_sum(flat, values)
        return cls(shape, rows, summed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz_rows(self):
        return len(self.rows)

    @property
    def nbytes(self):
        return self.rows.nbytes + self.values.nbytes

    def __repr__(self):
        return f"SparseGrad(shape={self.shape}, nnz_rows={self.nnz_rows})"

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self):
        """Materialize the full dense gradient (slow path / interop)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        # Every densification defeats the sparse fast path; count them so
        # the diagnostics (tooling.densify_counts, profiling) can flag
        # unexpected O(table) materializations.
        _sanitizer.note_densify("SparseGrad.to_dense")
        profiling.count("sparse.densify", nbytes=dense.nbytes)
        if self.rows.size:
            dense[self.rows] = self.values
        return dense

    def __array__(self, dtype=None, copy=None):
        dense = self.to_dense()
        return dense.astype(dtype) if dtype is not None else dense

    def __getitem__(self, index):
        # Array-style interop for inspection code; materializes the dense
        # view, so keep it off hot paths.
        return self.to_dense()[index]

    def copy(self):
        return SparseGrad(self.shape, self.rows.copy(), self.values.copy())

    # ------------------------------------------------------------------
    # Arithmetic needed by gradient accumulation
    # ------------------------------------------------------------------
    def scale(self, factor):
        return SparseGrad(self.shape, self.rows, self.values * factor)

    def merge(self, other):
        """Coalesced sum with another :class:`SparseGrad` (same shape)."""
        if self.shape != other.shape:
            raise ValueError(
                f"cannot merge SparseGrad shapes {self.shape} and {other.shape}"
            )
        if not other.rows.size:
            return self
        if not self.rows.size:
            return other
        rows = np.concatenate((self.rows, other.rows))
        values = np.concatenate((self.values, other.values), axis=0)
        rows, values = _segment_sum(rows, values)
        return SparseGrad(self.shape, rows, values)

    def add_to_dense(self, dense):
        """Return ``dense + self`` as a new dense array (input untouched)."""
        _sanitizer.note_densify("SparseGrad.add_to_dense")
        out = np.array(dense, dtype=np.float64)
        if self.rows.size:
            # rows are unique, so fancy-index += is a correct scatter-add.
            out[self.rows] += self.values
        return out


def accumulate_grad(a, b):
    """Sum two gradient contributions, either of which may be sparse.

    Used by :meth:`Tensor.backward` when several graph paths reach the same
    tensor (e.g. an embedding table looked up twice, or an embedding also
    touched densely by an L2 penalty).
    """
    if isinstance(a, SparseGrad):
        if isinstance(b, SparseGrad):
            return a.merge(b)
        return a.add_to_dense(b)
    if isinstance(b, SparseGrad):
        return b.add_to_dense(a)
    return a + b
