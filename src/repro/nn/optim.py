"""Optimizers over :class:`~repro.nn.module.Parameter` lists.

The paper's large-scale setup pairs different optimizers for the inner and
outer loops (SGD inside, Adagrad on the parameter server); all three
optimizers used anywhere in the paper — SGD, Adam, Adagrad — are provided.

Two performance properties matter here:

* **In-place dense updates** — parameters and slot state are updated with
  ``+=``-style ops instead of reallocating full arrays every step.
* **Sparse fast path** — when a parameter's gradient is a
  :class:`~repro.nn.sparse.SparseGrad` (embedding tables), the update
  touches only the gradient's rows, so a step costs O(batch rows) instead
  of O(table).  Sparse Adam is the *lazily-corrected* variant: each row's
  first/second moments are decayed by ``beta**skipped_steps`` when the row
  is next touched, so a row that receives gradient every step matches dense
  Adam exactly, and untouched rows are never written.
"""

from __future__ import annotations

import numpy as np

from ..utils import profiling
from .sparse import SparseGrad

__all__ = ["Optimizer", "SGD", "Adam", "Adagrad", "make_optimizer"]


def _row_broadcast(factors, values_ndim):
    """Reshape per-row factors [r] to broadcast against row values [r, ...]."""
    return factors.reshape(factors.shape + (1,) * (values_ndim - 1))


class Optimizer:
    """Base optimizer: holds parameters and applies :meth:`step`."""

    def __init__(self, params, lr):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self):
        for param in self.params:
            param.grad = None

    def step(self):
        start = profiling.tick()
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            self._update(index, param)
            # Updates mutate param.data in place; keep the sanitizer's
            # version counter truthful (an int increment, always on).
            param._version += 1
        profiling.tock("optim.step", start)

    def _update(self, index, param):
        raise NotImplementedError

    def reset_state(self):
        """Drop accumulated moments (used when reusing an optimizer across
        meta-learning inner loops, where stale moments leak information)."""

    #: names of the per-param-index slot dicts this optimizer accumulates.
    _slot_attrs = ()

    def state_slots(self):
        """Serializable slot state: ``{attr: {param_index: ndarray}}``.

        Together with :meth:`load_state_slots` this lets a checkpointed
        run (e.g. the parameter server's outer Adagrad) resume with the
        exact accumulated moments it had.
        """
        return {
            attr: {
                int(index): np.array(value, copy=True)
                for index, value in getattr(self, attr).items()
            }
            for attr in self._slot_attrs
        }

    def load_state_slots(self, slots):
        """Restore slot state captured by :meth:`state_slots`."""
        for attr in self._slot_attrs:
            store = getattr(self, attr)
            store.clear()
            for index, value in slots.get(attr, {}).items():
                store[int(index)] = np.array(value, copy=True)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr, momentum=0.0, weight_decay=0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = {}

    _slot_attrs = ("_velocity",)

    def _update(self, index, param):
        grad = param.grad
        if isinstance(grad, SparseGrad):
            if self.momentum or self.weight_decay:
                # Momentum/decay couple every row to every step; fall back
                # to the dense (exact) update rather than approximate.
                grad = grad.to_dense()
            else:
                param.data[grad.rows] -= self.lr * grad.values
                return
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity = self._velocity.get(index)
            if velocity is None:
                velocity = np.zeros_like(param.data)
                self._velocity[index] = velocity
            velocity *= self.momentum
            velocity += grad
            grad = velocity
        param.data -= self.lr * grad

    def reset_state(self):
        self._velocity.clear()


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer used for the public benchmarks.

    Sparse gradients take a lazy row-wise path: moments of untouched rows
    are left stale and caught up with a ``beta**skipped`` decay the next
    time the row appears, which reproduces the dense moment recursion for
    the touched rows without ever writing the full table.
    """

    def __init__(self, params, lr, beta1=0.9, beta2=0.999, eps=1e-8):
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = {}
        self._v = {}
        self._last_step = {}
        self._t = 0

    _slot_attrs = ("_m", "_v", "_last_step")

    def step(self):
        self._t += 1
        super().step()

    def state_slots(self):
        slots = super().state_slots()
        slots["_t"] = self._t
        return slots

    def load_state_slots(self, slots):
        super().load_state_slots(slots)
        self._t = int(slots.get("_t", 0))

    def _slots(self, index, param):
        m = self._m.get(index)
        if m is None:
            m = self._m[index] = np.zeros_like(param.data)
            self._v[index] = np.zeros_like(param.data)
        return m, self._v[index]

    def _update(self, index, param):
        grad = param.grad
        if isinstance(grad, SparseGrad):
            self._update_sparse(index, param, grad)
            return
        m, v = self._slots(index, param)
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad ** 2
        m_hat = m / (1.0 - self.beta1 ** self._t)
        v_hat = v / (1.0 - self.beta2 ** self._t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _update_sparse(self, index, param, grad):
        rows, values = grad.rows, grad.values
        if not rows.size:
            return
        m, v = self._slots(index, param)
        last = self._last_step.get(index)
        if last is None:
            # Rows start with zero moments "as of step 0".
            last = self._last_step[index] = np.zeros(
                param.data.shape[0], dtype=np.int64
            )
        # Lazy correction: decay each touched row's stale moments as if the
        # zero-gradient steps since its last update had been applied.
        skipped = self._t - 1 - last[rows]
        decay1 = _row_broadcast(self.beta1 ** skipped, values.ndim)
        decay2 = _row_broadcast(self.beta2 ** skipped, values.ndim)
        m_rows = m[rows] * (decay1 * self.beta1) + (1.0 - self.beta1) * values
        v_rows = v[rows] * (decay2 * self.beta2) + (1.0 - self.beta2) * values ** 2
        m[rows] = m_rows
        v[rows] = v_rows
        last[rows] = self._t
        m_hat = m_rows / (1.0 - self.beta1 ** self._t)
        v_hat = v_rows / (1.0 - self.beta2 ** self._t)
        param.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset_state(self):
        self._m.clear()
        self._v.clear()
        self._last_step.clear()
        self._t = 0


class Adagrad(Optimizer):
    """Adagrad — used on the parameter server in the industry deployment.

    The sparse path is *exactly* equivalent to the dense update: rows with
    zero gradient accumulate nothing and move nothing under dense Adagrad,
    so skipping them changes no bits.
    """

    def __init__(self, params, lr, eps=1e-10):
        super().__init__(params, lr)
        self.eps = eps
        self._accum = {}

    _slot_attrs = ("_accum",)

    def _update(self, index, param):
        grad = param.grad
        accum = self._accum.get(index)
        if accum is None:
            accum = self._accum[index] = np.zeros_like(param.data)
        if isinstance(grad, SparseGrad):
            rows, values = grad.rows, grad.values
            if not rows.size:
                return
            accum_rows = accum[rows] + values ** 2
            accum[rows] = accum_rows
            param.data[rows] -= self.lr * values / (np.sqrt(accum_rows) + self.eps)
            return
        accum += grad ** 2
        param.data -= self.lr * grad / (np.sqrt(accum) + self.eps)

    def reset_state(self):
        self._accum.clear()


_OPTIMIZERS = {"sgd": SGD, "adam": Adam, "adagrad": Adagrad}


def make_optimizer(name, params, lr, **kwargs):
    """Build an optimizer by name (``"sgd"``, ``"adam"``, ``"adagrad"``)."""
    try:
        cls = _OPTIMIZERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; expected one of {sorted(_OPTIMIZERS)}"
        ) from None
    return cls(params, lr, **kwargs)
