"""Optimizers over :class:`~repro.nn.module.Parameter` lists.

The paper's large-scale setup pairs different optimizers for the inner and
outer loops (SGD inside, Adagrad on the parameter server); all three
optimizers used anywhere in the paper — SGD, Adam, Adagrad — are provided.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "Adagrad", "make_optimizer"]


class Optimizer:
    """Base optimizer: holds parameters and applies :meth:`step`."""

    def __init__(self, params, lr):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self):
        for param in self.params:
            param.grad = None

    def step(self):
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            self._update(index, param)

    def _update(self, index, param):
        raise NotImplementedError

    def reset_state(self):
        """Drop accumulated moments (used when reusing an optimizer across
        meta-learning inner loops, where stale moments leak information)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr, momentum=0.0, weight_decay=0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = {}

    def _update(self, index, param):
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity = self._velocity.get(index)
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[index] = velocity
            grad = velocity
        param.data = param.data - self.lr * grad

    def reset_state(self):
        self._velocity.clear()


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer used for the public benchmarks."""

    def __init__(self, params, lr, beta1=0.9, beta2=0.999, eps=1e-8):
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = {}
        self._v = {}
        self._t = 0

    def step(self):
        self._t += 1
        super().step()

    def _update(self, index, param):
        grad = param.grad
        m = self._m.get(index)
        v = self._v.get(index)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
        self._m[index] = m
        self._v[index] = v
        m_hat = m / (1.0 - self.beta1 ** self._t)
        v_hat = v / (1.0 - self.beta2 ** self._t)
        param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset_state(self):
        self._m.clear()
        self._v.clear()
        self._t = 0


class Adagrad(Optimizer):
    """Adagrad — used on the parameter server in the industry deployment."""

    def __init__(self, params, lr, eps=1e-10):
        super().__init__(params, lr)
        self.eps = eps
        self._accum = {}

    def _update(self, index, param):
        grad = param.grad
        accum = self._accum.get(index)
        if accum is None:
            accum = np.zeros_like(param.data)
        accum = accum + grad ** 2
        self._accum[index] = accum
        param.data = param.data - self.lr * grad / (np.sqrt(accum) + self.eps)

    def reset_state(self):
        self._accum.clear()


_OPTIMIZERS = {"sgd": SGD, "adam": Adam, "adagrad": Adagrad}


def make_optimizer(name, params, lr, **kwargs):
    """Build an optimizer by name (``"sgd"``, ``"adam"``, ``"adagrad"``)."""
    try:
        cls = _OPTIMIZERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; expected one of {sorted(_OPTIMIZERS)}"
        ) from None
    return cls(params, lr, **kwargs)
