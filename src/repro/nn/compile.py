"""Compile-and-replay execution of DN/DR training steps.

MAMDR's inner loops run the *same* computation thousands of times per epoch
(inner steps x domains x DR helper passes), yet the define-by-run engine in
``repro.nn.tensor`` rebuilds the Python graph node-by-node on every step.
At high domain counts that per-op Python dispatch — ``Tensor`` allocation,
closure construction, the backward toposort, optimizer bookkeeping —
dominates wall-clock over the actual (small) numpy math.

This module removes it with a trace-once / replay-many executor:

* **Trace** — the first step for a given input signature runs *eagerly*
  (so it is always correct), while the op sites in ``tensor.py`` /
  ``functional.py`` report every primitive node through the
  ``repro.nn._tracing`` hook.  Data-dependent constants (dropout masks,
  softmax max-shifts, fixed-feature gathers) are reported too, with enough
  context to regenerate them.
* **Compile** — the recorded graph is flattened into a :class:`Tape`: a
  preallocated forward schedule that recomputes every node's buffer
  *in place*, a backward schedule that invokes the original recorded VJP
  closures in exactly the order ``Tensor.backward`` would have used, and a
  fused optimizer schedule.  Because the closures captured the very buffers
  the forward schedule rewrites, replay is **bitwise identical** to eager
  execution (asserted per-primitive by the sanitizer's
  :func:`repro.tooling.sanitizer.replay_verify` mode).
* **Replay** — subsequent steps with the same signature execute the flat
  schedules: no ``Tensor`` allocation, no per-op dispatch, no toposort.

Guards and fallback: a step's signature is the batch field shapes/dtypes
plus ``batch.domain`` (for multi-domain models), the train/eval flag and
the sparse-grad toggle.  A new signature triggers a fresh trace (which *is*
a correct eager step); an untraceable step (unknown primitive, exotic
buffer aliasing, non-owned input arrays) falls back to eager permanently
for that signature.  The sanitizer's ``sanitize()`` / ``anomaly_mode()``
disable compiled execution entirely — those tools need real graphs.

RNG capture: dropout masks are regenerated on replay from the *same*
``numpy.random.Generator`` objects the eager step would have drawn from, so
the stream advances identically and replays are bit-exact.
"""

from __future__ import annotations

import contextlib
import copy as _copylib
import weakref
from contextvars import ContextVar

import numpy as np

from ..tooling import sanitizer as _sanitizer
from ..utils import profiling
from . import _tracing
from .module import Parameter
from .optim import SGD, Adam
from .sparse import SparseGrad, accumulate_grad, sparse_grads_enabled
from .tensor import _stable_sigmoid

__all__ = [
    "CompileBail",
    "compiled_execution",
    "compile_context",
    "compilation_enabled",
    "StepExecutor",
    "Tape",
    "executor_for",
    "active_executor",
    "eager_step",
]


# ----------------------------------------------------------------------
# Enablement
# ----------------------------------------------------------------------

# ContextVar (not a module global) so nested enable/disable blocks restore
# correctly under exceptions and cannot leak across threads/tasks.
_COMPILED = ContextVar("repro_compiled_execution", default=False)


@contextlib.contextmanager
def compiled_execution(enabled=True):
    """Enable (or explicitly disable) compiled step execution within."""
    token = _COMPILED.set(bool(enabled))
    try:
        yield
    finally:
        _COMPILED.reset(token)


def compile_context(flag):
    """Context manager for a tri-state compile flag.

    ``None`` inherits the ambient setting (no-op context); ``True`` /
    ``False`` force it.  This is how ``TrainConfig.compile_steps`` flows
    into the DN/DR loops.
    """
    if flag is None:
        return contextlib.nullcontext()
    return compiled_execution(flag)


def compilation_enabled():
    """Whether train steps should go through the compiled executor.

    The sanitizer's graph modes take priority: they inspect real graphs,
    so any active sanitizer feature forces eager execution.
    """
    return _COMPILED.get() and not _sanitizer._ACTIVE


# ----------------------------------------------------------------------
# Tracer — installed in repro.nn._tracing for the duration of one step
# ----------------------------------------------------------------------

class _Record:
    """One traced primitive node (``out`` set) or auxiliary event."""

    __slots__ = ("kind", "out", "parents", "aux")

    def __init__(self, kind, out, parents, aux):
        self.kind = kind
        self.out = out
        self.parents = parents
        self.aux = aux


class _Tracer:
    """Collects the chronological op/aux stream of one eager step."""

    def __init__(self):
        self.records = []

    def node(self, out, kind, parents, **aux):
        self.records.append(_Record(kind, out, parents, aux))

    def rng_mask(self, keep, rng, rate):
        """A dropout mask drawn from ``rng`` (regenerated on replay)."""
        self.records.append(
            _Record("rng_mask", None, (), {"array": keep, "rng": rng, "rate": rate})
        )

    def reduce_max(self, array, source, axis):
        """A detached ``np.max`` constant (recomputed on replay)."""
        self.records.append(
            _Record("reduce_max", None, (), {"array": array, "source": source, "axis": axis})
        )

    def fixed_gather(self, array, matrix, indices):
        """A frozen-feature row gather (re-gathered on replay)."""
        self.records.append(
            _Record("fixed_gather", None, (),
                    {"array": array, "matrix": matrix, "indices": indices})
        )


class CompileBail(Exception):
    """Raised during compilation when a step cannot be compiled safely.

    Never escapes the executor: the signature is marked eager-only and the
    (already completed, fully correct) eager trace step stands.
    """


# ----------------------------------------------------------------------
# Graph utilities
# ----------------------------------------------------------------------

_VIEW_KINDS = frozenset({"reshape", "transpose", "swapaxes", "getitem"})
_INPUT_FIELDS = ("users", "items", "labels")


def _toposort(root):
    """Exactly ``Tensor.backward``'s DFS post-order (same code, same order).

    Replicating the traversal — rather than approximating it — is what lets
    the compiled backward schedule accumulate gradients in the identical
    order, which float addition requires for bitwise parity.
    """
    topo_order = []
    visited = set()
    stack = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo_order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return topo_order


def _grads_equal(a, b):
    """Bitwise equality of two gradients (dense or sparse)."""
    if isinstance(a, SparseGrad) or isinstance(b, SparseGrad):
        if not (isinstance(a, SparseGrad) and isinstance(b, SparseGrad)):
            return False
        return (
            a.shape == b.shape
            and np.array_equal(a.rows, b.rows)
            and np.array_equal(a.values, b.values)
        )
    return np.array_equal(a, b)


# ----------------------------------------------------------------------
# Tape compilation
# ----------------------------------------------------------------------

class _TapeBuilder:
    """Turns one tracer record stream into a :class:`Tape`."""

    def __init__(self, tracer, loss, batch, model, all_params):
        self.records = tracer.records
        self.loss = loss
        self.batch = batch
        self.model = model
        self.all_params = all_params
        self.env = []
        self.slot = {}          # id(tensor) -> env index
        self.keep = []          # tensors kept alive by their slot
        self.param_slots = []   # (Parameter, env index) refreshed per replay
        self.staging = []       # (field name, trace-time array) per replay copyto
        self._staged_ids = {}   # id(array) -> field
        self.forward = []
        self.forward_kinds = []
        self.rngs = []          # dropout generators, in draw order (unique)
        self.node_records = [r for r in self.records if r.out is not None]
        self.recmap = {id(r.out): r for r in self.node_records}
        self.aux_ids = {id(r.aux["array"]): r for r in self.records if r.out is None}
        self.input_ids = {}
        for field in _INPUT_FIELDS:
            arr = getattr(batch, field, None)
            if isinstance(arr, np.ndarray):
                self.input_ids[id(arr)] = field

    # -- slots ----------------------------------------------------------
    def slot_for(self, t):
        key = id(t)
        idx = self.slot.get(key)
        if idx is not None:
            return idx
        idx = len(self.env)
        self.slot[key] = idx
        self.keep.append(t)
        self.env.append(t.data)
        if t._backward is None:
            if isinstance(t, Parameter):
                self.param_slots.append((t, idx))
            else:
                field = self.input_ids.get(id(t.data))
                if field is not None:
                    self.stage(t.data)
                # aux leaves (dropout masks, max-shifts, gathers) and plain
                # constants both live in env as their stable trace buffers.
        return idx

    def stage(self, array):
        """Mark ``array`` as a per-replay input, overwritten from the batch."""
        field = self.input_ids.get(id(array))
        if field is None:
            raise CompileBail("batch-dependent array is not an input field")
        if id(array) in self._staged_ids:
            return
        if array.base is not None or not array.flags.writeable:
            # A view of (say) the dataset table cannot be used as a staging
            # buffer without corrupting its base.
            raise CompileBail("input array is a borrowed view; cannot stage")
        self._staged_ids[id(array)] = field
        self.staging.append((field, array))

    # -- forward schedule ----------------------------------------------
    def build_forward(self):
        for rec in self.records:
            if rec.out is None:
                self.add_aux_kernel(rec)
            else:
                self.add_node_kernel(rec)

    def emit(self, kind, kernel):
        if kernel is not None:
            self.forward.append(kernel)
            self.forward_kinds.append(kind)

    def add_aux_kernel(self, rec):
        kind, aux = rec.kind, rec.aux
        buf = aux["array"]
        if kind == "rng_mask":
            rng, rate = aux["rng"], aux["rate"]
            if not any(r is rng for r in self.rngs):
                self.rngs.append(rng)
            draw = np.empty(buf.shape)
            keep_mask = np.empty(buf.shape, dtype=bool)

            # rng.random(out=draw) consumes the stream exactly like
            # rng.random(shape); >=/ / are the same ufuncs the eager
            # expression lowers to, so the mask is bit-identical.
            def run(buf=buf, rng=rng, rate=rate, draw=draw, keep_mask=keep_mask):
                rng.random(out=draw)
                np.greater_equal(draw, rate, out=keep_mask)
                np.divide(keep_mask, 1.0 - rate, out=buf)

        elif kind == "reduce_max":
            si = self.slot_for(aux["source"])
            axis, env = aux["axis"], self.env

            def run(buf=buf, env=env, si=si, axis=axis):
                np.copyto(buf, np.max(env[si], axis=axis, keepdims=True))

        elif kind == "fixed_gather":
            indices, matrix = aux["indices"], aux["matrix"]
            self.stage(indices)

            def run(buf=buf, matrix=matrix, idx=indices):
                np.copyto(buf, matrix[idx])

        else:  # pragma: no cover - tracer and builder move in lockstep
            raise CompileBail(f"unknown aux record {kind!r}")
        self.emit(kind, run)

    def add_node_kernel(self, rec):
        out = rec.out
        if rec.kind in _VIEW_KINDS:
            parent = rec.parents[0]
            parent_stable = (
                parent._backward is not None or not isinstance(parent, Parameter)
            )
            if parent_stable and np.shares_memory(out.data, parent.data):
                # The output is a live view of an in-place-updated (or
                # constant) buffer; replay needs no work for this node.
                self.slot_for(out)
                return
            if out.data.base is not None:
                # View of a rebindable Parameter buffer (e.g. STAR's
                # ``weight_domain[domain]``): own it and recompute per step.
                # lint: allow[data-mutation] — tracer-owned buffer.
                out.data = np.array(out.data)
        builder = _FWD_KERNELS.get(rec.kind)
        if builder is None:
            raise CompileBail(f"no forward kernel for op {rec.kind!r}")
        kernel = builder(self, rec)
        self.slot_for(out)
        self.emit(rec.kind, kernel)

    # -- backward schedule ---------------------------------------------
    def build_backward(self, topo):
        """Symbolically execute ``Tensor.backward`` over the traced graph.

        Cells play the role of the eager ``grads`` dict; first-write vs.
        accumulate is static because the traversal order is.
        """
        cells = {id(self.loss): 0}
        ncells = 1
        steps, step_kinds, leaf_cells, plan, fast_flags = [], [], [], [], []
        for node in reversed(topo):
            ci = cells.pop(id(node), None)  # mirror grads.pop(...)
            if ci is None:
                continue
            if node._backward is None:
                if node.requires_grad:
                    leaf_cells.append((node, ci))
                continue
            targets = []
            for parent in node._parents:
                if not parent.requires_grad:
                    targets.append(None)
                    continue
                pci = cells.get(id(parent))
                if pci is None:
                    pci = ncells
                    ncells += 1
                    cells[id(parent)] = pci
                    targets.append((pci, True))
                else:
                    targets.append((pci, False))
            rec = self.recmap[id(node)]
            step = None
            fast = _BWD_KERNELS.get(rec.kind)
            if fast is not None:
                step = fast(self, rec, ci, tuple(targets))
            fast_flags.append(step is not None)
            if step is None:
                step = _backward_step(node._backward, ci, tuple(targets))
            steps.append(step)
            step_kinds.append(rec.kind)
            plan.append((rec, ci, tuple(targets)))
        return steps, step_kinds, leaf_cells, ncells, plan, fast_flags

    def build(self):
        loss = self.loss
        if loss.data.size != 1 or not loss.requires_grad:
            raise CompileBail("loss is not a scalar graph output")
        topo = _toposort(loss)
        for node in topo:
            if node._backward is not None and id(node) not in self.recmap:
                raise CompileBail("graph contains an untraced primitive")
        self.build_forward()
        (steps, step_kinds, leaf_cells, ncells, plan,
         fast_flags) = self.build_backward(topo)
        if not leaf_cells:
            raise CompileBail("no trainable leaves reached by the loss")
        return Tape(
            env=self.env,
            param_slots=self.param_slots,
            staging=self.staging,
            forward=self.forward,
            forward_kinds=self.forward_kinds,
            backward=steps,
            backward_kinds=step_kinds,
            leaf_cells=leaf_cells,
            ncells=ncells,
            seed=np.ones_like(loss.data),
            loss_buf=loss.data,
            all_params=self.all_params,
            rngs=self.rngs,
            node_records=self.node_records,
            trace_records=self.records,
            backward_plan=plan,
            backward_fast=fast_flags,
        )


def _backward_step(bw, in_cell, targets):
    """One compiled backward step: original VJP closure + static scatter.

    The dynamic ``None``/sparse guards mirror ``Tensor.backward`` exactly:
    interior sparse grads densify before the VJP, ``None`` parent grads are
    skipped, and the first *non-None* contribution to a cell assigns while
    later ones accumulate — in the same order the eager traversal would.
    """

    def run(cells):
        grad_in = cells[in_cell]
        if grad_in is None:
            return
        if isinstance(grad_in, SparseGrad):
            # lint: allow[dense-grad-materialization] — dense-only replay.
            grad_in = grad_in.to_dense()
        parent_grads = bw(grad_in)
        for target, grad in zip(targets, parent_grads):
            if target is None or grad is None:
                continue
            ci, first = target
            if first or cells[ci] is None:
                cells[ci] = grad
            else:
                cells[ci] = accumulate_grad(cells[ci], grad)

    return run


# ----------------------------------------------------------------------
# Fast backward kernels.
#
# The generic path above reruns the recorded VJP closures — always correct,
# but each closure allocates fresh gradient arrays and (like eager) wastes
# work computing gradients for parents that don't need one.  For the hot
# ops, these builders emit specialized steps over preallocated buffers that
# produce the SAME ufunc sequence per needed gradient (bitwise parity is
# asserted by the replay-verification tests, per primitive).  A builder
# returns ``None`` for any configuration it cannot match exactly — shapes
# that would engage ``unbroadcast``, accumulation into an existing cell —
# and the step falls back to the recorded closure.
# ----------------------------------------------------------------------

def _first_writes_only(targets):
    return all(t is None or t[1] for t in targets)


def _bwd_fused_dense(b, rec, in_cell, targets):
    parents = rec.parents
    x, w = parents[0], parents[1]
    bias = parents[2] if len(parents) == 3 else None
    out = rec.out
    activation = rec.aux["activation"]
    if x.data.ndim != 2 or w.data.ndim != 2 or out.data.ndim != 2:
        return None
    if bias is not None and bias.data.ndim != 1:
        return None
    if not _first_writes_only(targets):
        return None
    xt, wt = targets[0], targets[1]
    bt = targets[2] if bias is not None else None
    xi, wi = b.slot_for(x), b.slot_for(w)
    env, outbuf = b.env, out.data
    gz = None if activation == "linear" else np.empty_like(outbuf)
    tmp = None if activation == "linear" else np.empty_like(outbuf)
    gx = np.empty_like(x.data) if xt is not None else None
    gw = np.empty_like(w.data) if wt is not None else None
    gb = np.empty_like(bias.data) if bt is not None else None

    def run(cells):
        g = cells[in_cell]
        if g is None:
            return
        if isinstance(g, SparseGrad):
            # lint: allow[dense-grad-materialization] — dense-only replay.
            g = g.to_dense()
        if activation == "relu":
            np.greater(outbuf, 0.0, out=tmp)
            np.multiply(g, tmp, out=gz)
            gzz = gz
        elif activation == "sigmoid":
            np.multiply(g, outbuf, out=gz)
            np.subtract(1.0, outbuf, out=tmp)
            np.multiply(gz, tmp, out=gz)
            gzz = gz
        elif activation == "tanh":
            np.square(outbuf, out=tmp)
            np.subtract(1.0, tmp, out=tmp)
            np.multiply(g, tmp, out=gz)
            gzz = gz
        else:
            gzz = g
        if xt is not None:
            np.matmul(gzz, env[wi].swapaxes(-1, -2), out=gx)
            cells[xt[0]] = gx
        if wt is not None:
            np.matmul(env[xi].swapaxes(-1, -2), gzz, out=gw)
            cells[wt[0]] = gw
        if bt is not None:
            # np.sum dispatches through this very reduction — same pairwise
            # summation, minus the python wrapper.
            np.add.reduce(gzz, axis=0, out=gb)
            cells[bt[0]] = gb

    return run


def _bwd_bce(b, rec, in_cell, targets):
    if len(rec.parents) == 3:
        return None  # sample-weighted: keep the closure
    logits_t = targets[0]
    if logits_t is None or not logits_t[1] or targets[1] is not None:
        return None
    x, y, weighted = rec.aux["x"], rec.aux["y"], rec.aux["weighted"]
    if weighted.shape != x.shape or y.shape != x.shape:
        return None  # broadcasting would engage unbroadcast
    count = weighted.size
    cell = logits_t[0]
    gx = np.empty_like(x)
    t = np.empty_like(x)
    u = np.empty_like(x)
    mask = np.empty(x.shape, dtype=bool)

    def run(cells):
        g = cells[in_cell]
        if g is None:
            return
        scale = g / count
        # _stable_sigmoid(x), branchless: both of its per-element formulas
        # reduce to the same IEEE expressions of e = exp(-|x|), so selecting
        # with ``where`` reproduces the masked-assignment result bitwise.
        np.absolute(x, out=t)
        np.negative(t, out=t)
        np.exp(t, out=t)                    # e = exp(-|x|)
        np.add(t, 1.0, out=u)               # 1 + e
        np.divide(t, u, out=t)              # e / (1 + e)      (x < 0 branch)
        np.divide(1.0, u, out=u)            # 1 / (1 + e)      (x >= 0 branch)
        np.greater_equal(x, 0.0, out=mask)
        np.copyto(gx, t)
        np.copyto(gx, u, where=mask)
        np.subtract(gx, y, out=gx)
        np.multiply(gx, scale, out=gx)
        cells[cell] = gx

    return run


def _bwd_concat(b, rec, in_cell, targets):
    if not _first_writes_only(targets):
        return None
    axis = rec.aux["axis"]
    ndim = rec.out.data.ndim
    if axis < 0:
        axis += ndim
    # Eager's np.split returns views of g at these very offsets; handing
    # the same views to the cells is bit-identical without the split
    # machinery (and without touching the segments nobody needs).
    slices, lo = [], 0
    for parent, target in zip(rec.parents, targets):
        hi = lo + parent.data.shape[axis]
        if target is not None:
            key = (slice(None),) * axis + (slice(lo, hi),)
            slices.append((target[0], key))
        lo = hi

    def run(cells):
        g = cells[in_cell]
        if g is None:
            return
        if isinstance(g, SparseGrad):
            # lint: allow[dense-grad-materialization] — dense-only replay.
            g = g.to_dense()
        for cell, key in slices:
            cells[cell] = g[key]

    return run


def _bwd_mul(b, rec, in_cell, targets):
    if not _first_writes_only(targets):
        return None
    outshape = rec.out.data.shape
    pairs = []
    for me, other, target in (
        (rec.parents[0], rec.parents[1], targets[0]),
        (rec.parents[1], rec.parents[0], targets[1]),
    ):
        if target is None:
            continue
        if me.data.shape != outshape:
            return None  # eager would unbroadcast this gradient
        pairs.append((b.slot_for(other), target[0], np.empty(outshape)))
    if not pairs:
        return None
    env = b.env

    def run(cells):
        g = cells[in_cell]
        if g is None:
            return
        if isinstance(g, SparseGrad):
            # lint: allow[dense-grad-materialization] — dense-only replay.
            g = g.to_dense()
        for oi, cell, buf in pairs:
            np.multiply(g, env[oi], out=buf)
            cells[cell] = buf

    return run


def _bwd_embedding(b, rec, in_cell, targets):
    target = targets[0]
    if target is None or not target[1]:
        return None
    if not sparse_grads_enabled():
        return None  # dense-parity mode: keep the (profiled) closure
    indices = rec.aux["indices"]
    shape = rec.parents[0].data.shape
    cell = target[0]

    def run(cells):
        g = cells[in_cell]
        if g is None:
            return
        cells[cell] = SparseGrad.from_lookup(indices, g, shape)

    return run


_BWD_KERNELS = {
    "fused_dense": _bwd_fused_dense,
    "bce": _bwd_bce,
    "concat": _bwd_concat,
    "mul": _bwd_mul,
    "embedding": _bwd_embedding,
}


# ----------------------------------------------------------------------
# Forward kernels.
#
# Every kernel recomputes the eager forward expression for its op and
# writes the result into the trace-time output buffer *in place* (either
# with the identical ``out=`` ufunc, or by computing the expression exactly
# as the eager op does and copying — a bit-preserving copy).  In-place is
# what makes the recorded backward closures — which captured these very
# buffers — see fresh values on replay.
# ----------------------------------------------------------------------

def _binary(ufunc):
    def build(b, rec):
        a, c = (b.slot_for(p) for p in rec.parents)
        env, buf = b.env, rec.out.data

        def run():
            ufunc(env[a], env[c], out=buf)

        return run

    return build


def _unary(ufunc):
    def build(b, rec):
        a = b.slot_for(rec.parents[0])
        env, buf = b.env, rec.out.data

        def run():
            ufunc(env[a], out=buf)

        return run

    return build


def _fwd_pow(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf, exponent = b.env, rec.out.data, rec.aux["exponent"]

    def run():
        # ``**`` (not np.power) so numpy's scalar-exponent fast paths
        # (square, sqrt, reciprocal) match the eager op bit-for-bit.
        np.copyto(buf, env[a] ** exponent)

    return run


def _fwd_matmul(b, rec):
    a, c = (b.slot_for(p) for p in rec.parents)
    env, buf = b.env, rec.out.data

    def run():
        np.matmul(env[a], env[c], out=buf)

    return run


def _fwd_sigmoid(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf = b.env, rec.out.data

    def run():
        np.copyto(buf, _stable_sigmoid(env[a]))

    return run


def _fwd_relu(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf, mask = b.env, rec.out.data, rec.aux["mask"]

    def run():
        np.greater(env[a], 0.0, out=mask)
        np.multiply(env[a], mask, out=buf)

    return run


def _fwd_softplus(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf = b.env, rec.out.data

    def run():
        x = env[a]
        np.copyto(buf, np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x))))

    return run


def _fwd_abs(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf, sign = b.env, rec.out.data, rec.aux["sign"]

    def run():
        np.sign(env[a], out=sign)
        np.absolute(env[a], out=buf)

    return run


def _fwd_sum(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf = b.env, rec.out.data
    axis, keepdims = rec.aux["axis"], rec.aux["keepdims"]

    def run():
        np.copyto(buf, env[a].sum(axis=axis, keepdims=keepdims))

    return run


def _fwd_reshape(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf, shape = b.env, rec.out.data, rec.aux["shape"]

    def run():
        np.copyto(buf, env[a].reshape(shape))

    return run


def _fwd_transpose(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf, axes = b.env, rec.out.data, rec.aux["axes"]

    def run():
        np.copyto(buf, env[a].transpose(axes))

    return run


def _fwd_swapaxes(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf = b.env, rec.out.data
    axis_a, axis_b = rec.aux["axes"]

    def run():
        np.copyto(buf, np.swapaxes(env[a], axis_a, axis_b))

    return run


def _fwd_getitem(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf, index = b.env, rec.out.data, rec.aux["index"]
    if isinstance(index, np.ndarray) and id(index) in b.input_ids:
        b.stage(index)

    def run():
        np.copyto(buf, env[a][index])

    return run


def _fwd_leaky_relu(b, rec):
    a = b.slot_for(rec.parents[0])
    env, buf = b.env, rec.out.data
    scale, slope = rec.aux["scale"], rec.aux["negative_slope"]

    def run():
        x = env[a]
        np.copyto(scale, np.where(x > 0.0, 1.0, slope))
        np.multiply(x, scale, out=buf)

    return run


def _fwd_concat(b, rec):
    idxs = [b.slot_for(p) for p in rec.parents]
    env, buf, axis = b.env, rec.out.data, rec.aux["axis"]

    def run():
        np.concatenate([env[i] for i in idxs], axis=axis, out=buf)

    return run


def _fwd_stack(b, rec):
    idxs = [b.slot_for(p) for p in rec.parents]
    env, buf, axis = b.env, rec.out.data, rec.aux["axis"]

    def run():
        np.stack([env[i] for i in idxs], axis=axis, out=buf)

    return run


def _fwd_embedding(b, rec):
    w = b.slot_for(rec.parents[0])
    env, buf, indices = b.env, rec.out.data, rec.aux["indices"]
    b.stage(indices)
    table_rows = np.uint64(rec.parents[0].data.shape[0])

    def run():
        # Same single-scan validation as Embedding.forward: replay skips
        # the module layer, so the guard must live in the kernel.
        if indices.size and (indices.view(np.uint64) >= table_rows).any():
            raise IndexError(f"embedding index out of range [0, {table_rows})")
        np.copyto(buf, env[w][indices])

    return run


def _fwd_fused_dense(b, rec):
    has_bias = len(rec.parents) == 3
    slots = [b.slot_for(p) for p in rec.parents]
    env, buf, activation = b.env, rec.out.data, rec.aux["activation"]
    if rec.aux["saved_out"] is not buf:  # pragma: no cover - engine invariant
        raise CompileBail("fused_dense output buffer was rebound")
    # The eager op computes z (pre-activation) as a fresh array; for the
    # "linear" activation z *is* the output, so the preallocated z buffer
    # must be the output buffer itself.
    zbuf = buf if activation == "linear" else np.empty_like(buf)

    def run():
        np.matmul(env[slots[0]], env[slots[1]], out=zbuf)
        if has_bias:
            np.add(zbuf, env[slots[2]], out=zbuf)
        if activation == "relu":
            np.maximum(zbuf, 0.0, out=buf)
        elif activation == "sigmoid":
            np.copyto(buf, _stable_sigmoid(zbuf))
        elif activation == "tanh":
            np.tanh(zbuf, out=buf)

    return run


def _fwd_bce(b, rec):
    has_sw = len(rec.parents) == 3
    slots = [b.slot_for(p) for p in rec.parents]
    env, buf = b.env, rec.out.data
    per_sample, weighted = rec.aux["per_sample"], rec.aux["weighted"]
    # The backward closure captured the logits/labels arrays directly; if
    # either was rebound during compilation the closure would read stale
    # memory, so refuse (never happens for graph-interior logits).
    if rec.aux["x"] is not rec.parents[0].data or rec.aux["y"] is not rec.parents[1].data:
        raise CompileBail("bce saved buffers were rebound")

    same_shape = (
        rec.parents[0].data.shape == per_sample.shape
        and rec.parents[1].data.shape == per_sample.shape
    )
    if same_shape:
        t1 = np.empty_like(per_sample)
        t2 = np.empty_like(per_sample)

        def run():
            x, y = env[slots[0]], env[slots[1]]
            # max(x,0) + log1p(exp(-|x|)) - x*y, ufunc-for-ufunc as eager.
            np.absolute(x, out=t1)
            np.negative(t1, out=t1)
            np.exp(t1, out=t1)
            np.log1p(t1, out=t1)
            np.maximum(x, 0.0, out=t2)
            np.add(t2, t1, out=t2)
            np.multiply(x, y, out=t1)
            np.subtract(t2, t1, out=per_sample)
            if has_sw:
                np.multiply(per_sample, env[slots[2]], out=weighted)
            # mean() is umr_sum/size — the same pairwise add.reduce.
            buf[...] = np.add.reduce(weighted, axis=None) / weighted.size

    else:  # broadcasting logits/labels: fall back to the plain expression

        def run():
            x, y = env[slots[0]], env[slots[1]]
            np.copyto(
                per_sample,
                np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x))) - x * y,
            )
            if has_sw:
                np.multiply(per_sample, env[slots[2]], out=weighted)
            buf[...] = weighted.mean()

    return run


_FWD_KERNELS = {
    "add": _binary(np.add),
    "sub": _binary(np.subtract),
    "mul": _binary(np.multiply),
    "div": _binary(np.divide),
    "neg": _unary(np.negative),
    "pow": _fwd_pow,
    "matmul": _fwd_matmul,
    "exp": _unary(np.exp),
    "log": _unary(np.log),
    "sqrt": _unary(np.sqrt),
    "tanh": _unary(np.tanh),
    "sigmoid": _fwd_sigmoid,
    "relu": _fwd_relu,
    "softplus": _fwd_softplus,
    "abs": _fwd_abs,
    "sum": _fwd_sum,
    "reshape": _fwd_reshape,
    "transpose": _fwd_transpose,
    "swapaxes": _fwd_swapaxes,
    "getitem": _fwd_getitem,
    "leaky_relu": _fwd_leaky_relu,
    "concat": _fwd_concat,
    "stack": _fwd_stack,
    "embedding": _fwd_embedding,
    "fused_dense": _fwd_fused_dense,
    "bce": _fwd_bce,
}


# ----------------------------------------------------------------------
# Fused optimizer schedules
# ----------------------------------------------------------------------

def _flat_adam_kernel(opt, items):
    """All dense-gradient Adam parameters updated as ONE flat buffer.

    Adam's dense update is purely elementwise, so running each ufunc once
    over the concatenation of every parameter computes bit-identical values
    to running it per parameter — while collapsing ~13 ufunc dispatches per
    parameter into 13 total.  The optimizer's per-param moment slots are
    rebound to *views* of the flat buffers, so interleaved eager
    ``Optimizer.step`` calls (and state serialization) keep working on the
    same storage.
    """
    sizes = [param.data.size for _, param in items]
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    total = int(offsets[-1])
    flat_m = np.empty(total)
    flat_v = np.empty(total)
    flat_g = np.empty(total)
    t1 = np.empty(total)
    t2 = np.empty(total)
    grad_views, delta_views = [], []
    for (index, param), off, size in zip(items, offsets, sizes):
        m, v = opt._slots(index, param)
        seg_m = flat_m[off:off + size].reshape(param.data.shape)
        seg_v = flat_v[off:off + size].reshape(param.data.shape)
        np.copyto(seg_m, m)
        np.copyto(seg_v, v)
        opt._m[index] = seg_m
        opt._v[index] = seg_v
        grad_views.append(flat_g[off:off + size].reshape(param.data.shape))
        # t1 holds the final per-element update after the ufunc chain below.
        delta_views.append(t1[off:off + size].reshape(param.data.shape))
    anchor_index = items[0][0]
    anchor_m = opt._m[anchor_index]
    # Hyperparameters are fixed at schedule-build time (eager Adam treats
    # them as constants too); only the step counter ``_t`` is read live.
    beta1, beta2, lr, eps = opt.beta1, opt.beta2, opt.lr, opt.eps
    one_minus_b1, one_minus_b2 = 1.0 - beta1, 1.0 - beta2
    grad_pairs = [(param, view) for (_, param), view in zip(items, grad_views)]
    delta_pairs = [(param, view) for (_, param), view in zip(items, delta_views)]

    def valid():
        # reset_state() (or a slot reload) rebinds the moment dicts away
        # from the flat views; the schedule must then be rebuilt.
        return opt._m.get(anchor_index) is anchor_m

    def run():
        for param, view in grad_pairs:
            np.copyto(view, param.grad)
        np.multiply(flat_m, beta1, out=flat_m)
        np.multiply(flat_g, one_minus_b1, out=t1)
        np.add(flat_m, t1, out=flat_m)
        np.multiply(flat_v, beta2, out=flat_v)
        np.square(flat_g, out=t1)
        np.multiply(t1, one_minus_b2, out=t1)
        np.add(flat_v, t1, out=flat_v)
        t = opt._t
        np.divide(flat_m, 1.0 - beta1 ** t, out=t1)
        np.divide(flat_v, 1.0 - beta2 ** t, out=t2)
        np.sqrt(t2, out=t2)
        np.add(t2, eps, out=t2)
        np.multiply(t1, lr, out=t1)
        np.divide(t1, t2, out=t1)
        for param, view in delta_pairs:
            np.subtract(param.data, view, out=param.data)
            param._version += 1

    return run, valid


def _sgd_dense_kernel(opt, index, param):
    """Plain dense SGD (no momentum/decay), fused."""
    t1 = np.empty_like(param.data)

    def run():
        np.multiply(param.grad, opt.lr, out=t1)
        data = param.data
        np.subtract(data, t1, out=data)
        param._version += 1

    return run


def _generic_kernel(opt, index, param):
    """Fallback: the optimizer's own per-param update (always correct)."""

    def run():
        opt._update(index, param)
        param._version += 1

    return run


def _always_valid():
    return True


class _OptimizerSchedule:
    """A compiled ``Optimizer.step`` for one (tape, optimizer) pair."""

    __slots__ = ("kernels", "_checks")

    def __init__(self, kernels, checks):
        self.kernels = kernels
        self._checks = checks

    def valid(self):
        return all(check() for check in self._checks)

    def run(self):
        for kernel in self.kernels:
            kernel()


def _compile_optimizer_schedule(optimizer, leaf_param_ids):
    """Flat per-step closures replicating ``Optimizer.step`` exactly.

    Only parameters that are gradient leaves of this tape appear (the rest
    would be skipped by the eager ``param.grad is None`` check anyway).
    Called after a backward pass, so each leaf's gradient — and therefore
    its dense-vs-sparse update path, which is static per tape — is known.
    """
    kernels = []
    checks = []
    if isinstance(optimizer, Adam):
        def bump_t(opt=optimizer):
            opt._t += 1

        kernels.append(bump_t)
    plain_sgd = (
        isinstance(optimizer, SGD)
        and not optimizer.momentum
        and not optimizer.weight_decay
    )
    flat_adam_items = []
    for index, param in enumerate(optimizer.params):
        if id(param) not in leaf_param_ids:
            continue
        dense = not isinstance(param.grad, SparseGrad)
        if dense and isinstance(optimizer, Adam):
            flat_adam_items.append((index, param))
        elif dense and plain_sgd:
            kernels.append(_sgd_dense_kernel(optimizer, index, param))
        else:
            kernels.append(_generic_kernel(optimizer, index, param))
    if flat_adam_items:
        run, valid = _flat_adam_kernel(optimizer, flat_adam_items)
        kernels.append(run)
        checks.append(valid)
    return _OptimizerSchedule(kernels, checks)


# ----------------------------------------------------------------------
# Tape
# ----------------------------------------------------------------------

# One fused optimizer schedule per live optimizer instance (DR creates a
# fresh inner optimizer per helper pass; weak keys let them die).  Values
# are ``(leaf_param_ids, schedule)`` — the leaf set the schedule was
# compiled against, shared by every tape of the same model.
_OPT_SCHEDULES = weakref.WeakKeyDictionary()


class Tape:
    """A compiled training step: flat forward/backward/optimizer schedules."""

    def __init__(self, env, param_slots, staging, forward, forward_kinds,
                 backward, backward_kinds, leaf_cells, ncells, seed,
                 loss_buf, all_params, rngs, node_records,
                 trace_records=None, backward_plan=None, backward_fast=None):
        self._env = env
        self._param_slots = param_slots
        self._staging = staging
        self._forward = forward
        self._forward_kinds = forward_kinds
        self._backward = backward
        self._backward_kinds = backward_kinds
        self._leaf_cells = leaf_cells
        self._leaf_param_ids = frozenset(id(p) for p, _ in leaf_cells)
        self._ncells = ncells
        self._seed = seed
        self._loss_buf = loss_buf
        self._all_params = all_params
        self._rngs = rngs
        self._node_records = node_records
        # Declarative views of the same schedules, consumed by the
        # lane-vectorized engine (repro.nn.vectorized): the chronological
        # record stream and, per backward step, (record, in-cell, targets).
        self._trace_records = trace_records or []
        self._backward_plan = backward_plan or []
        # Parallel to _backward_plan: True where the step is a fast kernel
        # with a statically known read set (the tape verifier pins less).
        self._backward_fast = backward_fast or []
        #: static certificate from repro.tooling.analyzer, or None.
        self.certificate = None
        #: per-lane-count cache of vectorized replays built from this tape.
        self._vector_cache = {}

    @property
    def verify_mode(self):
        """``"static"`` when the analyzer certified this tape, ``"replay"``
        otherwise — certified tapes may skip the eager bitwise re-run under
        non-strict :func:`repro.tooling.sanitizer.replay_verify`."""
        cert = self.certificate
        return "static" if cert is not None and cert.certified else "replay"

    @property
    def n_ops(self):
        return len(self._node_records)

    # -- execution ------------------------------------------------------
    def _run(self, batch):
        env = self._env
        for param, idx in self._param_slots:
            env[idx] = param.data
        for field, buf in self._staging:
            np.copyto(buf, getattr(batch, field))
        profiled = profiling.is_active()
        if profiled:
            for kind, kernel in zip(self._forward_kinds, self._forward):
                start = profiling.tick()
                kernel()
                profiling.tock("tape.fwd." + kind, start)
        else:
            for kernel in self._forward:
                kernel()
        cells = [None] * self._ncells
        cells[0] = self._seed
        for param in self._all_params:
            param.grad = None
        if profiled:
            for kind, step in zip(self._backward_kinds, self._backward):
                start = profiling.tick()
                step(cells)
                profiling.tock("tape.bwd." + kind, start)
        else:
            for step in self._backward:
                step(cells)
        for leaf, ci in self._leaf_cells:
            leaf.grad = cells[ci]
        return cells

    def _apply_optimizer(self, optimizer):
        start = profiling.tick()
        # The schedule cache is global, not per tape: a schedule rebinds the
        # optimizer's moment slots to its own flat buffers, so two tapes
        # each holding their own schedule for one optimizer would invalidate
        # each other on every signature switch and recompile per step.
        entry = _OPT_SCHEDULES.get(optimizer)
        if (
            entry is None
            or entry[0] != self._leaf_param_ids
            or not entry[1].valid()
        ):
            schedule = _compile_optimizer_schedule(optimizer, self._leaf_param_ids)
            _OPT_SCHEDULES[optimizer] = (self._leaf_param_ids, schedule)
        else:
            schedule = entry[1]
        schedule.run()
        profiling.tock("optim.step", start)

    def replay(self, batch, optimizer):
        """One full training step as a flat replay; returns the loss."""
        self._run(batch)
        self._apply_optimizer(optimizer)
        return float(self._loss_buf)

    # -- verification ---------------------------------------------------
    def replay_verified(self, batch, optimizer, model):
        """Replay, then re-run the step eagerly and compare **bitwise**.

        Every primitive's forward buffer and every leaf gradient must match
        exactly; the first mismatch raises
        :class:`~repro.tooling.sanitizer.ReplayMismatchError` naming the op.
        The optimizer is applied once (after verification), so a verified
        step advances training exactly like a normal one.
        """
        rng_states = [
            (rng, _copylib.deepcopy(rng.bit_generator.state)) for rng in self._rngs
        ]
        cells = self._run(batch)
        snapshots = [rec.out.data.copy() for rec in self._node_records]
        replay_grads = [(leaf, cells[ci]) for leaf, ci in self._leaf_cells]
        for rng, state in rng_states:
            rng.bit_generator.state = state

        tracer = _Tracer()
        _tracing.TRACER = tracer
        try:
            loss = model.loss(batch)
            model.zero_grad()
            loss.backward()
        finally:
            _tracing.TRACER = None

        reference = [r for r in tracer.records if r.out is not None]
        if len(reference) != len(self._node_records):
            raise _sanitizer.ReplayMismatchError(
                f"replay structure mismatch: tape has {len(self._node_records)} "
                f"ops, eager step produced {len(reference)}"
            )
        for position, (ref, mine, snap) in enumerate(
            zip(reference, self._node_records, snapshots)
        ):
            if ref.kind != mine.kind:
                raise _sanitizer.ReplayMismatchError(
                    f"replay structure mismatch at op {position}: tape has "
                    f"{mine.kind!r}, eager step ran {ref.kind!r}"
                )
            if not np.array_equal(ref.out.data, snap):
                raise _sanitizer.ReplayMismatchError(
                    f"replay of op {position} ({mine.kind!r}) is not bitwise "
                    f"equal to eager execution (shape {snap.shape})"
                )
        for leaf, grad in replay_grads:
            if not _grads_equal(grad, leaf.grad):
                raise _sanitizer.ReplayMismatchError(
                    f"replayed gradient for leaf of shape {leaf.shape} is not "
                    "bitwise equal to the eager gradient"
                )
        self._apply_optimizer(optimizer)
        return loss.item()


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------

def _certify_tape(tape):
    """Statically certify a freshly traced tape (best effort, never raises).

    The analyzer lives in ``repro.tooling`` and imports numpy-level helpers
    only, but the import is still lazy so a broken/absent analyzer can
    never take the training path down with it — an uncertifiable tape just
    stays in dynamic-verification mode.
    """
    try:
        from ..tooling.analyzer import certify
        certificate = certify(tape)
    except Exception:  # analyzer bug must not break training
        profiling.count("compile.certify_error")
        return None
    profiling.count(
        "compile.certified" if certificate.certified else "compile.uncertified"
    )
    return certificate


def eager_step(model, batch, optimizer):
    """One standard eager training step (the universal fallback)."""
    loss = model.loss(batch)
    model.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


_MISSING = object()


class StepExecutor:
    """Per-model cache of compiled tapes, keyed by step signature.

    The optimizer is *not* part of the key: it is passed per call and gets
    its own lazily compiled schedule on each tape, because DR creates a
    fresh inner optimizer for every helper pass over the same graph.
    """

    #: signature-cache bound: past this, unseen signatures run eagerly
    #: (tracing every odd-shaped batch would cost more than it saves).
    max_tapes = 32

    def __init__(self, model):
        self.model = model
        self._params = list(model.parameters())
        self._tapes = {}
        self.traces = 0
        self.replays = 0
        self.eager_steps = 0

    def _signature(self, batch):
        return (
            batch.users.shape, batch.users.dtype.str,
            batch.items.shape, batch.items.dtype.str,
            batch.labels.shape, batch.labels.dtype.str,
            batch.domain if getattr(self.model, "multi_domain", True) else None,
            self.model.training,
            sparse_grads_enabled(),
        )

    def step(self, batch, optimizer):
        """Run one training step, compiled when possible; returns the loss."""
        if _sanitizer._ACTIVE or _tracing.TRACER is not None:
            self.eager_steps += 1
            return eager_step(self.model, batch, optimizer)
        signature = self._signature(batch)
        tape = self._tapes.get(signature, _MISSING)
        if tape is _MISSING:
            if len(self._tapes) >= self.max_tapes:
                self.eager_steps += 1
                return eager_step(self.model, batch, optimizer)
            tape, loss_value = self._trace_step(batch, optimizer)
            self._tapes[signature] = tape
            return loss_value
        if tape is None:
            self.eager_steps += 1
            return eager_step(self.model, batch, optimizer)
        self.replays += 1
        if _sanitizer._REPLAY_VERIFY:
            if _sanitizer._REPLAY_VERIFY_STRICT or tape.verify_mode != "static":
                return tape.replay_verified(batch, optimizer, self.model)
            # Statically certified: the analyzer proved shape/dtype/aliasing
            # safety for every kernel, so skip the eager re-run.
            profiling.count("verify.static_skip")
        return tape.replay(batch, optimizer)

    def tape_for(self, batch, optimizer):
        """The compiled :class:`Tape` for ``batch``'s signature, or ``None``.

        Traces once when the signature is unseen — the trace is a *real*
        training step (parameters, optimizer slots and RNG streams all
        advance), so callers that only want the tape must snapshot and
        restore around it.  Returns ``None`` for eager-only signatures.
        """
        signature = self._signature(batch)
        if signature not in self._tapes:
            if len(self._tapes) >= self.max_tapes:
                return None
            tape, _ = self._trace_step(batch, optimizer)
            self._tapes[signature] = tape
        return self._tapes[signature]

    def _trace_step(self, batch, optimizer):
        tracer = _Tracer()
        _tracing.TRACER = tracer
        try:
            loss = self.model.loss(batch)
            self.model.zero_grad()
            loss.backward()
        finally:
            _tracing.TRACER = None
        optimizer.step()
        try:
            tape = _TapeBuilder(
                tracer, loss, batch, self.model, self._params
            ).build()
            self.traces += 1
            profiling.count("compile.trace")
        except CompileBail:
            tape = None
            profiling.count("compile.bail")
        if tape is not None:
            tape.certificate = _certify_tape(tape)
        return tape, loss.item()


# Executors are cached per model so every call site (train_steps, the
# incremental trainer, parallel workers) shares one tape cache per model.
_EXECUTORS = weakref.WeakKeyDictionary()


def executor_for(model):
    """The (cached) :class:`StepExecutor` for ``model``."""
    executor = _EXECUTORS.get(model)
    if executor is None:
        executor = _EXECUTORS[model] = StepExecutor(model)
    return executor


def active_executor(model):
    """``executor_for(model)`` when compiled execution is on, else ``None``."""
    if not compilation_enabled():
        return None
    return executor_for(model)
