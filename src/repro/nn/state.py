"""State-dict arithmetic — the algebra of meta-learning updates.

Every algorithm in the paper manipulates whole parameter states:

* DN outer update (Eq. 3):   ``Θ ← Θ + β (Θ~ − Θ)``
* Specific parameters (Eq. 4): ``Θ = θ_S + θ_i``
* DR update (Eq. 8):          ``θ_i ← θ_i + γ (θ_i~ − θ_i)``

These helpers implement that algebra on ``{name: ndarray}`` dicts so the
framework code reads like the paper's equations.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..tooling import sanitizer as _sanitizer

__all__ = [
    "clone_state",
    "zeros_like_state",
    "state_add",
    "state_add_",
    "state_sub",
    "state_sub_",
    "state_scale",
    "state_scale_",
    "state_interpolate",
    "state_interpolate_",
    "state_dot",
    "state_norm",
    "state_allclose",
]


def clone_state(state):
    """Deep-copy a state dict."""
    return OrderedDict((name, value.copy()) for name, value in state.items())


def zeros_like_state(state):
    """A state dict of zeros with matching shapes (initial θ_i deltas)."""
    return OrderedDict((name, np.zeros_like(value)) for name, value in state.items())


def _check_keys(a, b):
    if a.keys() != b.keys():
        missing = set(a) ^ set(b)
        raise KeyError(f"state dicts disagree on keys: {sorted(missing)}")


def state_add(a, b, scale=1.0):
    """Return ``a + scale * b``."""
    _check_keys(a, b)
    return OrderedDict((name, a[name] + scale * b[name]) for name in a)


def state_sub(a, b):
    """Return ``a - b``."""
    _check_keys(a, b)
    return OrderedDict((name, a[name] - b[name]) for name in a)


def state_scale(a, scale):
    """Return ``scale * a``."""
    return OrderedDict((name, scale * value) for name, value in a.items())


def state_interpolate(origin, target, step):
    """Return ``origin + step * (target - origin)`` (Eqs. 3 and 8)."""
    _check_keys(origin, target)
    return OrderedDict(
        (name, origin[name] + step * (target[name] - origin[name]))
        for name in origin
    )


# ----------------------------------------------------------------------
# In-place variants — the DN/DR inner loops run one of these per meta-step,
# and the out-of-place forms allocate a fresh full-model state dict each
# time.  The mutated left operand must be *owned* by the caller (cloned or
# freshly built); ``target``/``b`` may be any name->ndarray mapping, so a
# zero-copy view of live model parameters works.
#
# Because the left operand may itself alias live parameter buffers, each
# in-place op reports its mutations to the sanitizer (one flag check when
# disabled) so tensor version counters stay truthful and a mutated
# saved-for-backward buffer is caught at backward() time.
# ----------------------------------------------------------------------

def _notify_mutations(state):
    """Bump version counters of any tensors whose buffers ``state`` aliases."""
    if _sanitizer._VERSION_CHECKS:
        for value in state.values():
            _sanitizer.notify_mutation(value)


def state_add_(a, b, scale=1.0):
    """In-place ``a += scale * b``; returns ``a``."""
    _check_keys(a, b)
    for name, value in a.items():
        if scale == 1.0:
            value += b[name]
        else:
            value += scale * b[name]
    _notify_mutations(a)
    return a


def state_sub_(a, b):
    """In-place ``a -= b``; returns ``a``."""
    _check_keys(a, b)
    for name, value in a.items():
        value -= b[name]
    _notify_mutations(a)
    return a


def state_scale_(a, scale):
    """In-place ``a *= scale``; returns ``a``."""
    for value in a.values():
        value *= scale
    _notify_mutations(a)
    return a


def state_interpolate_(origin, target, step):
    """In-place ``origin += step * (target - origin)``; returns ``origin``.

    The meta-update of Eqs. 3 and 8 without allocating a result state.
    """
    _check_keys(origin, target)
    for name, value in origin.items():
        value += step * (target[name] - value)
    _notify_mutations(origin)
    return origin


def state_dot(a, b):
    """Inner product over flattened states (used for conflict analysis)."""
    _check_keys(a, b)
    return float(sum(np.dot(a[name].ravel(), b[name].ravel()) for name in a))


def state_norm(a):
    """Euclidean norm of a flattened state."""
    return float(np.sqrt(sum(float(np.sum(value ** 2)) for value in a.values())))


def state_allclose(a, b, atol=1e-10):
    """Whether two states are elementwise close (testing helper)."""
    if a.keys() != b.keys():
        return False
    return all(np.allclose(a[name], b[name], atol=atol) for name in a)
