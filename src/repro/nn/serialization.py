"""Persistence for parameter states and per-domain model banks.

The serving system of Figure 2 stores shared parameters plus one specific
state per domain; these helpers persist that layout to a single ``.npz``
archive so a trained :class:`~repro.frameworks.base.StateBank` can be
shipped, reloaded and served without retraining.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = [
    "save_state",
    "load_state",
    "save_bank_states",
    "load_bank_states",
]

_DOMAIN_PREFIX = "domain:"
_DEFAULT_PREFIX = "default:"


def save_state(path, state):
    """Persist one ``{name: ndarray}`` state dict to ``path`` (.npz)."""
    np.savez(path, **{name: value for name, value in state.items()})


def load_state(path):
    """Load a state dict saved by :func:`save_state`."""
    with np.load(path) as archive:
        return OrderedDict((name, archive[name].copy()) for name in archive.files)


def save_bank_states(path, domain_states, default_state=None):
    """Persist a per-domain state bank to one archive.

    Keys are namespaced ``domain:<index>/<param>`` plus optional
    ``default:<param>`` entries for the fallback state.
    """
    payload = {}
    for domain, state in domain_states.items():
        for name, value in state.items():
            payload[f"{_DOMAIN_PREFIX}{int(domain)}/{name}"] = value
    if default_state is not None:
        for name, value in default_state.items():
            payload[f"{_DEFAULT_PREFIX}{name}"] = value
    if not payload:
        raise ValueError("nothing to save: empty bank")
    np.savez(path, **payload)


def load_bank_states(path):
    """Load ``(domain_states, default_state)`` saved by
    :func:`save_bank_states`."""
    domain_states = {}
    default_state = OrderedDict()
    with np.load(path) as archive:
        for key in archive.files:
            if key.startswith(_DOMAIN_PREFIX):
                rest = key[len(_DOMAIN_PREFIX):]
                domain_text, _, name = rest.partition("/")
                domain_states.setdefault(int(domain_text), OrderedDict())[name] = (
                    archive[key].copy()
                )
            elif key.startswith(_DEFAULT_PREFIX):
                default_state[key[len(_DEFAULT_PREFIX):]] = archive[key].copy()
            else:
                raise ValueError(f"unrecognized key {key!r} in bank archive")
    return domain_states, (default_state or None)
