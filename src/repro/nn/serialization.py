"""Persistence for parameter states and per-domain model banks.

The serving system of Figure 2 stores shared parameters plus one specific
state per domain; these helpers persist that layout to a single ``.npz``
archive so a trained :class:`~repro.frameworks.base.StateBank` can be
shipped, reloaded and served without retraining.

Every archive written here carries a ``__repro_meta__`` header recording a
format version and a SHA-256 content checksum over the payload arrays.
Loads verify the header — a snapshot that was truncated, bit-flipped or
re-assembled from mismatched pieces fails loudly instead of silently
serving garbage parameters (the serving hot-swap in ``repro.serving``
relies on this).  Archives written before the header existed still load;
pass ``require_checksum=True`` to reject them.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict

import numpy as np

__all__ = [
    "SerializationError",
    "FORMAT_VERSION",
    "save_state",
    "load_state",
    "save_bank_states",
    "load_bank_states",
    "state_checksum",
]

_DOMAIN_PREFIX = "domain:"
_DEFAULT_PREFIX = "default:"
_META_KEY = "__repro_meta__"

#: current on-disk format; bumped when the archive layout changes.
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """A persisted state archive is corrupt, tampered or incompatible."""


def state_checksum(payload):
    """SHA-256 hex digest over a ``{key: ndarray}`` payload.

    The digest covers key names, dtypes, shapes and raw bytes in sorted key
    order, so it is independent of insertion order but sensitive to any
    value, shape or renaming change.
    """
    digest = hashlib.sha256()
    for key in sorted(payload):
        value = np.ascontiguousarray(payload[key])
        digest.update(key.encode())
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _write_archive(path, payload):
    """Write ``payload`` plus the versioned checksum header."""
    meta = json.dumps({
        "format_version": FORMAT_VERSION,
        "checksum": state_checksum(payload),
    })
    np.savez(path, **payload, **{_META_KEY: np.array(meta)})


def _read_archive(path, require_checksum=False):
    """Load ``{key: ndarray}`` and verify the header when present."""
    payload = {}
    meta_text = None
    try:
        with np.load(path) as archive:
            for key in archive.files:
                if key == _META_KEY:
                    meta_text = str(archive[key][()])
                else:
                    payload[key] = archive[key].copy()
    except (OSError, ValueError) as error:
        raise SerializationError(
            f"cannot read state archive {path!s}: {error}"
        ) from error
    if meta_text is None:
        if require_checksum:
            raise SerializationError(
                f"archive {path!s} has no integrity header (pre-versioned "
                "format); re-save it with the current serialization module"
            )
        return payload
    try:
        meta = json.loads(meta_text)
        version = int(meta["format_version"])
        expected = meta["checksum"]
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(
            f"archive {path!s} has a malformed integrity header: {error}"
        ) from error
    if version > FORMAT_VERSION:
        raise SerializationError(
            f"archive {path!s} uses format version {version}, but this "
            f"build only reads up to {FORMAT_VERSION}"
        )
    actual = state_checksum(payload)
    if actual != expected:
        raise SerializationError(
            f"archive {path!s} failed checksum verification "
            f"(expected {expected[:12]}…, got {actual[:12]}…); the file is "
            "corrupt or was modified after saving"
        )
    return payload


def save_state(path, state):
    """Persist one ``{name: ndarray}`` state dict to ``path`` (.npz)."""
    _write_archive(path, dict(state))


def load_state(path, require_checksum=False):
    """Load a state dict saved by :func:`save_state`.

    Raises :class:`SerializationError` when the archive is unreadable or its
    checksum header does not match the payload.
    """
    payload = _read_archive(path, require_checksum=require_checksum)
    return OrderedDict((name, payload[name]) for name in sorted(payload))


def save_bank_states(path, domain_states, default_state=None):
    """Persist a per-domain state bank to one archive.

    Keys are namespaced ``domain:<index>/<param>`` plus optional
    ``default:<param>`` entries for the fallback state.
    """
    payload = {}
    for domain, state in domain_states.items():
        for name, value in state.items():
            payload[f"{_DOMAIN_PREFIX}{int(domain)}/{name}"] = value
    if default_state is not None:
        for name, value in default_state.items():
            payload[f"{_DEFAULT_PREFIX}{name}"] = value
    if not payload:
        raise ValueError("nothing to save: empty bank")
    _write_archive(path, payload)


def load_bank_states(path, require_checksum=False):
    """Load ``(domain_states, default_state)`` saved by
    :func:`save_bank_states`.

    Raises :class:`SerializationError` on corrupt/mismatched archives (see
    :func:`load_state`).
    """
    payload = _read_archive(path, require_checksum=require_checksum)
    domain_states = {}
    default_state = OrderedDict()
    for key in payload:
        if key.startswith(_DOMAIN_PREFIX):
            rest = key[len(_DOMAIN_PREFIX):]
            domain_text, _, name = rest.partition("/")
            domain_states.setdefault(int(domain_text), OrderedDict())[name] = (
                payload[key]
            )
        elif key.startswith(_DEFAULT_PREFIX):
            default_state[key[len(_DEFAULT_PREFIX):]] = payload[key]
        else:
            raise SerializationError(
                f"unrecognized key {key!r} in bank archive"
            )
    return domain_states, (default_state or None)
