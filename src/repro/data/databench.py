"""Data-plane benchmark: write, open and iterate 1e6–1e8-event files.

The columnar store's whole reason to exist is the paper's 4.9e8-sample
production stream: datasets that cannot be materialized in RAM must still
load in O(1) and feed an epoch at memory-bandwidth speed.  This bench
measures exactly that contract per event count:

* **write** — stream a synthetic Zipf-domain event log to disk through
  the out-of-core :class:`~repro.data.columnar.ColumnarWriter` (bounded
  RAM regardless of size);
* **open** — map the file with :meth:`ColumnarStore.open` (header-only;
  must not scale with file size);
* **epoch** — one full :func:`~repro.data.batching.iter_store_batches`
  pass that *touches every byte* of the users/items/labels columns
  (reductions per batch), with the iterator's periodic
  ``madvise(MADV_DONTNEED)`` release keeping residency flat.

Peak RSS is sampled from ``/proc/self/status`` (``VmRSS``) rather than
``ru_maxrss`` because mapped pages the epoch touches *do* count toward
RSS and ``ru_maxrss`` only ever grows — the constancy claim is about the
live footprint, which must stay within 2x when the dataset grows 100x.

``python -m repro.cli data-bench`` writes the curve to
``BENCH_data.json`` (same journal conventions as the other benches) and
exits non-zero when the acceptance gates — ≥1e7 events/s load+epoch and
RSS constancy across the size sweep — fail.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from ..utils.seeding import spawn_rng
from .batching import iter_store_batches
from .columnar import STREAM_COLUMNS, ColumnarStore, ColumnarWriter

__all__ = [
    "DEFAULT_BENCH_PATH",
    "EVENTS_PER_S_TARGET",
    "RSS_RATIO_LIMIT",
    "generate_event_file",
    "bench_cell",
    "run_data_bench",
    "check_data_bench",
    "render_data_bench",
    "write_bench_record",
]

DEFAULT_BENCH_PATH = "BENCH_data.json"

#: acceptance gates (ROADMAP budget): load + one epoch must sustain at
#: least this many events per second on the largest on-disk cell ...
EVENTS_PER_S_TARGET = 10_000_000
#: ... with a peak RSS within this factor of the smallest cell's.
RSS_RATIO_LIMIT = 2.0


def _vm_rss_mb():
    """Current resident set in MB (``VmRSS``), or None off-Linux."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        return None
    return None


def _zipf_probs(n, exponent):
    weights = (np.arange(n) + 1.0) ** -float(exponent)
    return weights / weights.sum()


def generate_event_file(path, n_events, *, n_domains=32, n_users=1_000_000,
                        n_items=200_000, window_events=4_000_000,
                        domain_skew=1.1, target_ctr=0.3, seed=0):
    """Write a synthetic Zipf-domain event stream straight to disk.

    Everything is vectorized per window (ids via ``rng.integers``-style
    draws from ``spawn_rng`` streams, labels as Bernoulli(ctr)) and
    appended window-by-window, so generation RAM is one window, not the
    stream.  Extents mirror a recorded stream's micro-epochs — the file
    reads back through the same store/batching surface as a real archive.
    Returns the written header dict.
    """
    if n_events < 1:
        raise ValueError("n_events must be positive")
    probs = _zipf_probs(n_domains, domain_skew)
    with ColumnarWriter(
        path, STREAM_COLUMNS, kind="stream", name="databench",
        n_users=n_users, n_items=n_items,
        meta={"synthetic": True, "n_domains": n_domains,
              "target_ctr": target_ctr, "seed": seed},
    ) as writer:
        written = 0
        window = 0
        while written < n_events:
            count = min(window_events, n_events - written)
            rng = spawn_rng(seed, "databench", "window", window)
            writer.new_extent(index=window, start_time=written,
                              watermark=written + count - 1, drift=0.0)
            writer.append(
                users=rng.integers(0, n_users, size=count),
                items=rng.integers(0, n_items, size=count),
                labels=(rng.random(count) < target_ctr),
                domains=rng.choice(n_domains, size=count, p=probs),
                times=written + np.arange(count, dtype=np.int64),
            )
            written += count
            window += 1
        return writer.finalize()


def bench_cell(n_events, *, batch_size=65536, release_every_rows=1 << 20,
               workdir=".", keep_file=False, seed=0, verbose=False):
    """One size point: write the file, open it, run one epoch pass.

    The epoch reduces every batch's users/items/labels columns, so each
    mapped payload byte is actually faulted in and read; the RSS samples
    bracket the release cadence and record the *live* peak.
    """

    def note(message):
        if verbose:
            print(f"[data-bench] {message}", flush=True)

    path = os.path.join(workdir, f"databench_{n_events}.col")
    result = {"n_events": int(n_events), "batch_size": int(batch_size)}

    start = time.perf_counter()
    generate_event_file(path, n_events, seed=seed)
    result["write_s"] = round(time.perf_counter() - start, 4)
    result["file_mb"] = round(os.path.getsize(path) / 2**20, 2)
    note(f"{n_events:,} events written in {result['write_s']}s "
         f"({result['file_mb']} MB)")

    peak_rss = _vm_rss_mb() or 0.0
    try:
        start = time.perf_counter()
        store = ColumnarStore.open(path)
        result["open_s"] = round(time.perf_counter() - start, 6)
        result["extents"] = len(store.extents)

        checksum = 0.0
        batches = 0
        # Sample RSS at a cadence finer than the release interval so the
        # peak between releases is actually observed, not just the low
        # point right after an madvise.
        sample_every = max(1, min(8, release_every_rows // batch_size))
        start = time.perf_counter()
        for batch in iter_store_batches(
            store, batch_size, release_every_rows=release_every_rows,
        ):
            # One reduction per column: every byte of the mapped payload
            # is read, nothing is retained.
            checksum += float(batch.users.sum(dtype=np.float64))
            checksum += float(batch.items.sum(dtype=np.float64))
            checksum += float(batch.labels.sum(dtype=np.float64))
            batches += 1
            if batches % sample_every == 0:
                rss = _vm_rss_mb()
                if rss is not None:
                    peak_rss = max(peak_rss, rss)
        result["epoch_s"] = round(time.perf_counter() - start, 4)
        result["batches"] = batches
        result["checksum"] = checksum
        store.release()
        # The loop variable still holds the final batch's views; drop it
        # or close() refuses to unmap under a live buffer export.
        if batches:
            del batch
        store.close()
    finally:
        if not keep_file and os.path.exists(path):
            os.unlink(path)

    rss = _vm_rss_mb()
    if rss is not None:
        peak_rss = max(peak_rss, rss)
    load_epoch_s = result["open_s"] + result["epoch_s"]
    result["events_per_s"] = round(n_events / load_epoch_s, 1) \
        if load_epoch_s > 0 else float("inf")
    result["peak_rss_mb"] = round(peak_rss, 1)
    note(f"{n_events:,} events: open {result['open_s']}s, epoch "
         f"{result['epoch_s']}s -> {result['events_per_s']:,.0f} ev/s, "
         f"peak RSS {result['peak_rss_mb']} MB")
    return result


def run_data_bench(event_counts=(1_000_000, 100_000_000), batch_size=65536,
                   release_every_rows=1 << 20, workdir=".", seed=0,
                   verbose=False):
    """The size sweep: every count through :func:`bench_cell`."""
    cells = [
        bench_cell(
            n_events, batch_size=batch_size,
            release_every_rows=release_every_rows, workdir=workdir,
            seed=seed, verbose=verbose,
        )
        for n_events in event_counts
    ]
    return {
        "settings": {
            "event_counts": [int(n) for n in event_counts],
            "batch_size": int(batch_size),
            "release_every_rows": int(release_every_rows),
            "seed": int(seed),
            "events_per_s_target": EVENTS_PER_S_TARGET,
            "rss_ratio_limit": RSS_RATIO_LIMIT,
        },
        "cells": cells,
    }


def check_data_bench(record):
    """Acceptance gates; returns ``{"ok": bool, "failures": [...]}``.

    The throughput gate applies to the largest cell (that is the claim:
    paper-scale files stream at memory speed); the RSS gate compares the
    largest cell's live peak to the smallest's — constant-RSS means the
    footprint must not follow the data.
    """
    failures = []
    cells = sorted(record["cells"], key=lambda cell: cell["n_events"])
    if not cells:
        return {"ok": False, "failures": ["no cells recorded"]}
    largest = cells[-1]
    if largest["events_per_s"] < EVENTS_PER_S_TARGET:
        failures.append(
            f"load+epoch throughput {largest['events_per_s']:,.0f} ev/s at "
            f"{largest['n_events']:,} events is below the "
            f"{EVENTS_PER_S_TARGET:,} target"
        )
    smallest = cells[0]
    if smallest["peak_rss_mb"] > 0 and len(cells) > 1:
        ratio = largest["peak_rss_mb"] / smallest["peak_rss_mb"]
        if ratio > RSS_RATIO_LIMIT:
            failures.append(
                f"peak RSS grew {ratio:.2f}x from {smallest['n_events']:,} "
                f"to {largest['n_events']:,} events (limit "
                f"{RSS_RATIO_LIMIT}x) — residency is following the data"
            )
    return {"ok": not failures, "failures": failures}


def render_data_bench(record):
    """Human-readable table of the size sweep."""
    lines = [
        "data-bench (write -> open -> full epoch per cell)",
        f"  batch_size={record['settings']['batch_size']} "
        f"release_every_rows={record['settings']['release_every_rows']} "
        f"seed={record['settings']['seed']}",
        "",
        f"  {'events':>13}  {'file_MB':>9}  {'write_s':>8}  {'open_s':>8}  "
        f"{'epoch_s':>8}  {'Mev/s':>8}  {'peak_MB':>8}",
    ]
    for cell in sorted(record["cells"], key=lambda c: c["n_events"]):
        lines.append(
            f"  {cell['n_events']:>13,}  {cell['file_mb']:>9.1f}  "
            f"{cell['write_s']:>8.2f}  {cell['open_s']:>8.4f}  "
            f"{cell['epoch_s']:>8.2f}  {cell['events_per_s'] / 1e6:>8.1f}  "
            f"{cell['peak_rss_mb']:>8.1f}"
        )
    verdict = check_data_bench(record)
    lines.append("")
    lines.append(
        "  acceptance: ok" if verdict["ok"]
        else "  acceptance: FAILED\n" + "\n".join(
            f"    - {failure}" for failure in verdict["failures"]
        )
    )
    return "\n".join(lines)


def write_bench_record(record, path=DEFAULT_BENCH_PATH):
    """Merge ``record`` into the data benchmark journal at ``path``."""
    path = pathlib.Path(path)
    payload = {"benchmarks": {}}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {"benchmarks": {}}
    bench = payload.setdefault("benchmarks", {})
    entry = bench.setdefault("data_bench", {})
    entry["settings"] = record["settings"]
    # Merge cells by event count so a smoke run refreshes its own cells
    # without clobbering the recorded full-scale curve.
    merged = {cell["n_events"]: cell for cell in entry.get("cells", [])}
    for cell in record["cells"]:
        merged[cell["n_events"]] = cell
    entry["cells"] = [merged[key] for key in sorted(merged)]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
