"""Click simulation and negative sampling.

Positive interactions are drawn from a latent-factor ground-truth model with
a per-domain preference transform (the source of *domain conflict*);
negatives are uniform user-item pairs the user did not click, with the
pos/neg balance set by the per-domain CTR ratio exactly as in the paper
(Eq. 23).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pos_neg_counts",
    "sample_positive_pairs",
    "sample_negative_pairs",
]


def pos_neg_counts(n_samples, ctr_ratio):
    """Split a target sample count into (positives, negatives).

    ``ctr_ratio = #pos / #neg`` (Eq. 23); both counts are at least 1 so every
    domain can compute an AUC.
    """
    if n_samples < 2:
        raise ValueError("a domain needs at least 2 samples")
    if ctr_ratio <= 0:
        raise ValueError(f"CTR ratio must be positive, got {ctr_ratio}")
    n_pos = int(round(n_samples * ctr_ratio / (1.0 + ctr_ratio)))
    n_pos = min(max(n_pos, 1), n_samples - 1)
    return n_pos, n_samples - n_pos


def sample_positive_pairs(rng, user_pool, item_pool, affinity_fn, n_pos,
                          candidates=20, temperature=0.3):
    """Simulate clicks: each positive is a user plus the softmax-sampled
    best item among a random candidate set.

    ``affinity_fn(users, items)`` returns the ground-truth affinity for
    aligned arrays.  Sampling uses the Gumbel-max trick so the whole batch is
    vectorized.
    """
    if n_pos <= 0:
        raise ValueError("n_pos must be positive")
    users = rng.choice(user_pool, size=n_pos)
    candidate_items = rng.choice(item_pool, size=(n_pos, candidates))
    scores = affinity_fn(
        np.repeat(users, candidates),
        candidate_items.ravel(),
    ).reshape(n_pos, candidates)
    gumbel = -np.log(-np.log(rng.random(scores.shape)))
    winners = np.argmax(scores / temperature + gumbel, axis=1)
    items = candidate_items[np.arange(n_pos), winners]
    return users, items


def sample_negative_pairs(rng, user_pool, item_pool, clicked, n_neg,
                          max_rounds=50):
    """Uniform (user, item) pairs excluding clicked pairs.

    ``clicked`` is a set of ``(user, item)`` tuples.  Rejection sampling is
    fine here because click sets are sparse relative to the pool product;
    a guard caps the number of rounds.
    """
    users = np.empty(n_neg, dtype=np.int64)
    items = np.empty(n_neg, dtype=np.int64)
    filled = 0
    for _ in range(max_rounds):
        need = n_neg - filled
        if need == 0:
            break
        cand_u = rng.choice(user_pool, size=need)
        cand_i = rng.choice(item_pool, size=need)
        keep = np.fromiter(
            ((u, i) not in clicked for u, i in zip(cand_u, cand_i)),
            dtype=bool,
            count=need,
        )
        kept = int(keep.sum())
        users[filled:filled + kept] = cand_u[keep]
        items[filled:filled + kept] = cand_i[keep]
        filled += kept
    if filled < n_neg:
        raise RuntimeError(
            "negative sampling could not avoid clicked pairs; "
            "the item pool is too small for the requested sample count"
        )
    return users, items
