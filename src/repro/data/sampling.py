"""Click simulation and negative sampling.

Positive interactions are drawn from a latent-factor ground-truth model with
a per-domain preference transform (the source of *domain conflict*);
negatives are uniform user-item pairs the user did not click, with the
pos/neg balance set by the per-domain CTR ratio exactly as in the paper
(Eq. 23).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pos_neg_counts",
    "sample_positive_pairs",
    "sample_negative_pairs",
    "pack_pairs",
]

_KEY_LIMIT = 1 << 32


def pack_pairs(users, items):
    """Pack aligned (user, item) arrays into sorted-unique ``uint64`` keys.

    ``key = user << 32 | item`` — a total order on pairs, so membership
    tests reduce to :func:`np.searchsorted` on one array (the same idiom
    as the Embedding range check).  Requires ids in ``[0, 2^32)``.
    """
    users = np.asarray(users)
    items = np.asarray(items)
    if len(users) and (
        int(users.min()) < 0 or int(users.max()) >= _KEY_LIMIT
        or int(items.min()) < 0 or int(items.max()) >= _KEY_LIMIT
    ):
        raise ValueError("pair ids must be in [0, 2^32) to pack")
    keys = (users.astype(np.uint64) << np.uint64(32)) \
        | items.astype(np.uint64)
    return np.unique(keys)


def _packable(pool):
    pool = np.asarray(pool)
    if len(pool) == 0:
        return True
    if pool.dtype.kind not in "iu":
        return False
    return int(pool.min()) >= 0 and int(pool.max()) < _KEY_LIMIT


def _clicked_keys(clicked):
    """Sorted key array for the clicked set, or None to use Python lookup.

    Accepts a pre-packed key array (from :func:`pack_pairs`) or any
    iterable of ``(user, item)`` tuples; ids outside ``[0, 2^32)`` fall
    back to the set-based path rather than mis-packing.
    """
    if isinstance(clicked, np.ndarray):
        if clicked.dtype != np.uint64:
            raise ValueError(
                "a pre-packed clicked array must be uint64 keys from "
                "pack_pairs()"
            )
        return clicked
    if not clicked:
        return np.empty(0, dtype=np.uint64)
    pairs = np.asarray(sorted(clicked), dtype=np.int64)
    if int(pairs.min()) < 0 or int(pairs.max()) >= _KEY_LIMIT:
        return None
    return pack_pairs(pairs[:, 0], pairs[:, 1])


def pos_neg_counts(n_samples, ctr_ratio):
    """Split a target sample count into (positives, negatives).

    ``ctr_ratio = #pos / #neg`` (Eq. 23); both counts are at least 1 so every
    domain can compute an AUC.
    """
    if n_samples < 2:
        raise ValueError("a domain needs at least 2 samples")
    if ctr_ratio <= 0:
        raise ValueError(f"CTR ratio must be positive, got {ctr_ratio}")
    n_pos = int(round(n_samples * ctr_ratio / (1.0 + ctr_ratio)))
    n_pos = min(max(n_pos, 1), n_samples - 1)
    return n_pos, n_samples - n_pos


def sample_positive_pairs(rng, user_pool, item_pool, affinity_fn, n_pos,
                          candidates=20, temperature=0.3):
    """Simulate clicks: each positive is a user plus the softmax-sampled
    best item among a random candidate set.

    ``affinity_fn(users, items)`` returns the ground-truth affinity for
    aligned arrays.  Sampling uses the Gumbel-max trick so the whole batch is
    vectorized.
    """
    if n_pos <= 0:
        raise ValueError("n_pos must be positive")
    users = rng.choice(user_pool, size=n_pos)
    candidate_items = rng.choice(item_pool, size=(n_pos, candidates))
    scores = affinity_fn(
        np.repeat(users, candidates),
        candidate_items.ravel(),
    ).reshape(n_pos, candidates)
    gumbel = -np.log(-np.log(rng.random(scores.shape)))
    winners = np.argmax(scores / temperature + gumbel, axis=1)
    items = candidate_items[np.arange(n_pos), winners]
    return users, items


def sample_negative_pairs(rng, user_pool, item_pool, clicked, n_neg,
                          max_rounds=50):
    """Uniform (user, item) pairs excluding clicked pairs.

    ``clicked`` is a set of ``(user, item)`` tuples — or, faster, a
    pre-packed sorted ``uint64`` key array from :func:`pack_pairs`.
    Rejection sampling is fine here because click sets are sparse
    relative to the pool product; a guard caps the number of rounds.

    The rejection filter is vectorized: clicked pairs become sorted
    ``uint64`` keys once and each round's membership test is one
    ``np.searchsorted`` over the candidates, replacing the per-row
    Python loop that dominated at large ``n_neg``.  Membership is exact
    either way and the candidate draws are untouched, so for a given
    ``rng`` the output is bitwise-identical to the set-based path
    (pinned by the parity test); ids outside ``[0, 2^32)`` fall back to
    that path automatically.
    """
    keys = _clicked_keys(clicked)
    if keys is not None and not (
        _packable(user_pool) and _packable(item_pool)
    ):
        # Candidate ids must pack without overflow too, or a wrapped key
        # could falsely collide with a clicked key.
        keys = None
    users = np.empty(n_neg, dtype=np.int64)
    items = np.empty(n_neg, dtype=np.int64)
    filled = 0
    for _ in range(max_rounds):
        need = n_neg - filled
        if need == 0:
            break
        cand_u = rng.choice(user_pool, size=need)
        cand_i = rng.choice(item_pool, size=need)
        if keys is None:
            keep = np.fromiter(
                ((u, i) not in clicked for u, i in zip(cand_u, cand_i)),
                dtype=bool,
                count=need,
            )
        elif len(keys) == 0:
            keep = np.ones(need, dtype=bool)
        else:
            cand_keys = (
                cand_u.astype(np.uint64) << np.uint64(32)
            ) | cand_i.astype(np.uint64)
            slots = np.searchsorted(keys, cand_keys)
            slots[slots == len(keys)] = len(keys) - 1
            keep = keys[slots] != cand_keys
        kept = int(keep.sum())
        users[filled:filled + kept] = cand_u[keep]
        items[filled:filled + kept] = cand_i[keep]
        filled += kept
    if filled < n_neg:
        raise RuntimeError(
            "negative sampling could not avoid clicked pairs; "
            "the item pool is too small for the requested sample count"
        )
    return users, items
