"""Dataset statistics in the layout of the paper's Tables I-IV."""

from __future__ import annotations

from ..utils.tables import format_table

__all__ = ["overall_stats_row", "overall_stats_table", "per_domain_stats_table"]


def overall_stats_row(dataset):
    """One row of Table I for a dataset."""
    n_train = dataset.total_interactions("train")
    n_val = dataset.total_interactions("val")
    n_test = dataset.total_interactions("test")
    total = n_train + n_val + n_test
    return {
        "Dataset": dataset.name,
        "#Domain": dataset.n_domains,
        "#User": dataset.active_users(),
        "#Item": dataset.active_items(),
        "#Train": n_train,
        "#Val": n_val,
        "#Test": n_test,
        "Sample/Domain": total // dataset.n_domains,
    }


def overall_stats_table(datasets):
    """Render Table I (overall statistics) for a list of datasets."""
    rows = [list(overall_stats_row(d).values()) for d in datasets]
    headers = list(overall_stats_row(datasets[0]).keys())
    return format_table(headers, rows, title="Table I analogue: overall dataset statistics")


def per_domain_stats_table(dataset, title=None):
    """Render a Table II/III/IV-style per-domain statistics table."""
    total = sum(d.num_samples for d in dataset.domains)
    rows = []
    for domain in dataset.domains:
        rows.append([
            domain.name,
            domain.num_samples,
            f"{100.0 * domain.num_samples / total:.2f}%",
            f"{domain.ctr_ratio:.2f}",
        ])
    return format_table(
        ["Domain", "#Samples", "Percentage", "CTR Ratio"],
        rows,
        title=title or f"Per-domain statistics: {dataset.name}",
    )
