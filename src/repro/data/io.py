"""Loading and saving multi-domain interaction logs.

The paper released its MDR benchmarks as interaction logs; this module
round-trips a :class:`~repro.data.schema.MultiDomainDataset` through the
same plain-text layout — one CSV row per interaction:

    domain,user,item,label,split

so users can plug their own logs into the library without touching the
synthetic generator.
"""

from __future__ import annotations

import csv

import numpy as np

from .schema import Domain, InteractionTable, MultiDomainDataset

__all__ = ["save_interactions_csv", "load_interactions_csv"]

_SPLITS = ("train", "val", "test")
_HEADER = ["domain", "user", "item", "label", "split"]


def save_interactions_csv(path, dataset):
    """Write every interaction of a dataset to one CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for domain in dataset:
            for split in _SPLITS:
                table = getattr(domain, split)
                for user, item, label in zip(table.users, table.items,
                                             table.labels):
                    # repr() round-trips float64 exactly; int() would
                    # silently truncate non-binary labels (ratings,
                    # soft labels) that the loader parses as float.
                    writer.writerow(
                        [domain.name, int(user), int(item),
                         repr(float(label)), split]
                    )


def load_interactions_csv(path, name="csv_dataset", n_users=None,
                          n_items=None, user_features=None,
                          item_features=None):
    """Build a :class:`MultiDomainDataset` from an interaction CSV.

    Domains are indexed in order of first appearance.  ``n_users`` /
    ``n_items`` default to ``max id + 1``.  Every domain must contain all
    three splits with both label classes (the evaluation protocol needs
    them) — violations raise ``ValueError``.
    """
    rows_by_domain = {}
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(
                f"unexpected CSV header {header!r}; expected {_HEADER}"
            )
        for row_number, row in enumerate(reader, start=2):
            if len(row) != 5:
                raise ValueError(f"line {row_number}: expected 5 columns")
            domain_name, user, item, label, split = row
            if split not in _SPLITS:
                raise ValueError(f"line {row_number}: bad split {split!r}")
            bucket = rows_by_domain.setdefault(
                domain_name, {s: ([], [], []) for s in _SPLITS}
            )
            users, items, labels = bucket[split]
            users.append(int(user))
            items.append(int(item))
            labels.append(float(label))

    if not rows_by_domain:
        raise ValueError("CSV contains no interactions")

    domains = []
    max_user = max_item = -1
    for index, (domain_name, buckets) in enumerate(rows_by_domain.items()):
        tables = {}
        for split in _SPLITS:
            users, items, labels = buckets[split]
            if not users:
                raise ValueError(
                    f"domain {domain_name!r} is missing its {split} split"
                )
            table = InteractionTable(
                np.asarray(users, dtype=np.int64),
                np.asarray(items, dtype=np.int64),
                np.asarray(labels, dtype=np.float64),
            )
            if table.num_positive == 0 or table.num_negative == 0:
                raise ValueError(
                    f"domain {domain_name!r} {split} split needs both classes"
                )
            tables[split] = table
            max_user = max(max_user, int(table.users.max()))
            max_item = max(max_item, int(table.items.max()))
        domains.append(Domain(name=domain_name, index=index, **tables))

    return MultiDomainDataset(
        name,
        domains,
        n_users=n_users if n_users is not None else max_user + 1,
        n_items=n_items if n_items is not None else max_item + 1,
        user_features=user_features,
        item_features=item_features,
    )
