"""Memory-mapped, domain-partitioned columnar interaction store.

The paper's headline deployment trains on 4.9e8 online samples; a dataset
that size cannot live as per-domain Python-object arrays in RAM.  This
module is the data plane that holds it instead: a **struct-of-arrays**
store — contiguous ``uint32`` user/item columns and ``float32``
label/timestamp columns — partitioned into *extents* (one per
``(domain, split)`` for offline datasets, one per micro-epoch for stream
archives, see :mod:`repro.online.stream`), persisted in a checksummed
binary format and opened via one read-only ``mmap``:

* **O(1) open, constant RSS** — :meth:`ColumnarStore.open` reads a
  64-byte preamble plus a JSON header and maps the payload; no row is
  touched until a consumer slices it, and :meth:`ColumnarStore.release`
  (``madvise(MADV_DONTNEED)``) hands resident pages back mid-epoch so a
  full pass over a dataset much larger than RAM runs at a flat memory
  footprint.
* **Zero-copy views** — every extent is a contiguous column range, so a
  domain's split table, a stream window, and an unshuffled minibatch are
  all ``ndarray`` slices of the mapping (no gather, no copy).  Engine
  code upconverts on contact: :class:`~repro.nn.tensor.Tensor` coerces
  float32 labels to float64 (0/1 values are exact in both), and uint32
  ids index embedding tables directly.
* **Integrity** — the same ``FORMAT_VERSION`` + SHA-256 idiom as the
  parameter archives (:mod:`repro.nn.serialization`): the preamble pins
  the header's digest, the header pins per-chunk digests of the payload,
  and the declared file size catches truncation at open time without
  reading a single payload byte.  :meth:`ColumnarStore.verify_checksums`
  streams the payload when a full audit is wanted.

Storage-vs-semantics is split exactly like PR 9's ``DomainParamStore``:
:class:`InteractionStore` is the protocol, :class:`RamInteractionStore`
(packed in-memory columns) and :class:`ColumnarStore` (memory-mapped
file) are the backends, and :func:`dataset_from_store` rebuilds the
ordinary :class:`~repro.data.schema.MultiDomainDataset` /
:class:`~repro.data.schema.Domain` / ``InteractionTable`` surface on top
— every existing split/sampling/batching consumer runs unchanged on
either backend, and the parity suite pins columnar == legacy bitwise for
every registry preset.

The writer is **out-of-core**: rows are appended in chunks, spilled to
per-column temp files, and streamed into the final column-major payload
at :meth:`ColumnarWriter.finalize` — peak RAM is one append batch, never
the dataset.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..nn.serialization import SerializationError
from .schema import Domain, InteractionTable, MultiDomainDataset

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "USER_DTYPE",
    "ITEM_DTYPE",
    "LABEL_DTYPE",
    "TIME_DTYPE",
    "CLOCK_DTYPE",
    "DOMAIN_DTYPE",
    "DATASET_COLUMNS",
    "STREAM_COLUMNS",
    "Extent",
    "InteractionStore",
    "RamInteractionStore",
    "ColumnarStore",
    "ColumnarWriter",
    "write_dataset",
    "open_dataset",
    "dataset_from_store",
]

#: current on-disk format; bumped when the layout changes.
COLUMNAR_FORMAT_VERSION = 1

_MAGIC = b"RPROCOL1"
_PREAMBLE_BYTES = 64            # magic(8) + off(8) + len(8) + sha256(32) + pad
_PAYLOAD_ALIGN = 64             # column sections start 64-byte aligned
_DEFAULT_CHECKSUM_CHUNK = 64 * 1024 * 1024

# The storage schema.  These are the single sanctioned declaration sites
# for the reduced-precision storage dtypes — everything else references
# the constants, so the dtype-drift lint scope over repro/data keeps
# ad-hoc downcasts out of computational code.  uint32 ids cover the
# paper's entity universes (and 69k domains) four times over at half the
# footprint of int64; float32 labels hold {0, 1} exactly.
USER_DTYPE = np.dtype(np.uint32)
ITEM_DTYPE = np.dtype(np.uint32)
LABEL_DTYPE = np.dtype(np.float32)
TIME_DTYPE = np.dtype(np.float32)
#: exact event clocks for stream archives — window watermarks are integer
#: event indices that must survive 1e8-scale streams bit-exactly, which
#: float32's 24-bit mantissa cannot guarantee past ~1.6e7 events.
CLOCK_DTYPE = np.dtype(np.int64)
DOMAIN_DTYPE = np.dtype(np.uint32)

#: column schema of an offline dataset file (one extent per domain+split).
DATASET_COLUMNS = (("users", USER_DTYPE), ("items", ITEM_DTYPE),
                   ("labels", LABEL_DTYPE))
#: column schema of a stream archive (one extent per micro-epoch).
STREAM_COLUMNS = (("users", USER_DTYPE), ("items", ITEM_DTYPE),
                  ("labels", LABEL_DTYPE), ("domains", DOMAIN_DTYPE),
                  ("times", CLOCK_DTYPE))


def _align(offset, alignment=_PAYLOAD_ALIGN):
    return (offset + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class Extent:
    """One contiguous row range of the store plus its partition metadata.

    ``meta`` identifies the partition: ``{"domain": name, "index": i,
    "split": "train"}`` for datasets, ``{"index": i, "watermark": ...}``
    for stream archives.  Extents never overlap and cover the store in
    order.
    """

    start: int
    stop: int
    meta: dict

    def __len__(self):
        return self.stop - self.start


class InteractionStore:
    """Backend protocol for columnar interaction storage.

    Mirrors the ``DomainParamStore`` split (PR 9): consumers see columns,
    extents and zero-copy range views; whether the bytes live in RAM or
    in a memory-mapped file is the backend's business.  Subclasses
    populate :attr:`columns` (``{name: full-length ndarray}``) and
    :attr:`extents`, and may override :meth:`release` / :meth:`close`.
    """

    backend = "ram"

    def __init__(self, columns, extents, *, name="columnar", kind="dataset",
                 n_users=None, n_items=None, meta=None):
        self.columns = OrderedDict(columns)
        self.extents = list(extents)
        self.name = name
        self.kind = kind
        self.n_users = n_users
        self.n_items = n_items
        self.meta = dict(meta or {})
        lengths = {len(col) for col in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.rows = lengths.pop() if lengths else 0
        previous = 0
        for extent in self.extents:
            if extent.start != previous or extent.stop < extent.start:
                raise ValueError(
                    f"extents must tile the store in order; got "
                    f"[{extent.start}, {extent.stop}) after row {previous}"
                )
            previous = extent.stop
        if self.extents and previous != self.rows:
            raise ValueError(
                f"extents cover {previous} rows but the store has {self.rows}"
            )

    # -- views ----------------------------------------------------------
    def column(self, name, start=0, stop=None):
        """Zero-copy view of one column range."""
        return self.columns[name][start:stop if stop is not None else self.rows]

    def table(self, start, stop):
        """Zero-copy :class:`InteractionTable` over ``[start, stop)``."""
        return InteractionTable(
            self.columns["users"][start:stop],
            self.columns["items"][start:stop],
            self.columns["labels"][start:stop],
        )

    def extent_table(self, index):
        extent = self.extents[index]
        return self.table(extent.start, extent.stop)

    def find_extents(self, **filters):
        """Extents whose meta matches every ``key=value`` filter."""
        return [
            extent for extent in self.extents
            if all(extent.meta.get(key) == value
                   for key, value in filters.items())
        ]

    @property
    def nbytes(self):
        return sum(col.nbytes for col in self.columns.values())

    # -- lifecycle ------------------------------------------------------
    def release(self):
        """Drop resident pages (no-op for RAM-backed stores)."""

    def close(self):
        """Release OS resources (no-op for RAM-backed stores)."""


class RamInteractionStore(InteractionStore):
    """Columns packed in RAM — the legacy layout, behind the protocol.

    Used by the writer's tests, by the parity suite and as the packing
    step of :func:`write_dataset`: :meth:`pack_dataset` concatenates a
    legacy dataset's per-domain tables into contiguous storage-dtype
    columns with one extent per ``(domain, split)``.
    """

    backend = "ram"

    @classmethod
    def pack_dataset(cls, dataset, splits=("train", "val", "test")):
        parts = {name: [] for name, _ in DATASET_COLUMNS}
        extents = []
        row = 0
        for domain in dataset:
            for split in splits:
                table = getattr(domain, split)
                _check_ids(table.users, dataset.n_users, "users")
                _check_ids(table.items, dataset.n_items, "items")
                parts["users"].append(table.users)
                parts["items"].append(table.items)
                parts["labels"].append(table.labels)
                extents.append(Extent(row, row + len(table), {
                    "domain": domain.name, "index": domain.index,
                    "split": split,
                }))
                row += len(table)
        dtypes = dict(DATASET_COLUMNS)
        columns = OrderedDict(
            (name, np.concatenate([np.asarray(p, dtype=dtypes[name])
                                   for p in parts[name]])
             if parts[name] else np.empty(0, dtype=dtypes[name]))
            for name, _ in DATASET_COLUMNS
        )
        return cls(columns, extents, name=dataset.name, kind="dataset",
                   n_users=dataset.n_users, n_items=dataset.n_items)


def _check_ids(values, bound, label):
    """Validate an id column fits uint32 (and the declared universe)."""
    if len(values) == 0:
        return
    lo = int(values.min())
    hi = int(values.max())
    if lo < 0:
        raise ValueError(f"{label} contains negative id {lo}")
    limit = int(np.iinfo(USER_DTYPE).max)
    if hi > limit:
        raise ValueError(f"{label} id {hi} exceeds uint32 storage")
    if bound is not None and hi >= bound:
        raise ValueError(f"{label} id {hi} outside universe of {bound}")


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------
def _dtype_str(dtype):
    return np.dtype(dtype).str  # e.g. '<u4' — endianness-explicit


class ColumnarWriter:
    """Chunked out-of-core writer for the columnar binary format.

    Rows arrive in append batches (bounded RAM); each column spills to a
    temp file next to the destination.  :meth:`finalize` streams the
    spills into the final column-major payload while hashing, then writes
    the header at the end of the file and the checksummed preamble at the
    front.  Use as a context manager — an exception cleans up the spills
    and the partial output::

        with ColumnarWriter(path, DATASET_COLUMNS, name="x") as writer:
            writer.new_extent(domain="D1", index=0, split="train")
            writer.append(users=u, items=i, labels=y)
    """

    def __init__(self, path, columns, *, kind="dataset", name="columnar",
                 n_users=None, n_items=None, meta=None,
                 checksum_chunk_bytes=_DEFAULT_CHECKSUM_CHUNK):
        if checksum_chunk_bytes < 1024:
            raise ValueError("checksum_chunk_bytes must be >= 1 KiB")
        self.path = os.fspath(path)
        self.columns = OrderedDict(
            (name_, np.dtype(dtype)) for name_, dtype in columns
        )
        if not self.columns:
            raise ValueError("need at least one column")
        self.kind = kind
        self.name = name
        self.n_users = n_users
        self.n_items = n_items
        self.meta = dict(meta or {})
        self.checksum_chunk_bytes = int(checksum_chunk_bytes)
        self.rows = 0
        self._extents = []
        self._extent_open = False
        self._finalized = False
        # Spills live next to the destination so finalize's copy never
        # crosses filesystems; create the directory on first use.
        dest_dir = os.path.dirname(os.path.abspath(self.path)) or "."
        os.makedirs(dest_dir, exist_ok=True)
        self._spill_dir = tempfile.mkdtemp(
            prefix=".columnar-spill-", dir=dest_dir,
        )
        self._spills = {
            name_: open(os.path.join(self._spill_dir, name_), "wb")
            for name_ in self.columns
        }

    # -- context management --------------------------------------------
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            if not self._finalized:
                self.finalize()
        elif not self._finalized:
            self.abort()
        return False

    # -- appending ------------------------------------------------------
    def new_extent(self, **meta):
        """Close the current extent (if any) and open a new one."""
        self._require_open()
        self._close_extent()
        self._extents.append([self.rows, self.rows, dict(meta)])
        self._extent_open = True

    def append(self, **arrays):
        """Append one batch of rows (all columns, equal lengths)."""
        self._require_open()
        if not self._extent_open:
            raise ValueError("call new_extent() before append()")
        if set(arrays) != set(self.columns):
            raise ValueError(
                f"append needs exactly columns {sorted(self.columns)}, "
                f"got {sorted(arrays)}"
            )
        lengths = {name: len(np.asarray(value))
                   for name, value in arrays.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"ragged append: {lengths}")
        n = next(iter(lengths.values()))
        if n == 0:
            return
        for name, dtype in self.columns.items():
            value = np.asarray(arrays[name])
            cast = self._cast(name, value, dtype)
            self._spills[name].write(np.ascontiguousarray(cast).tobytes())
        self.rows += n
        self._extents[-1][1] = self.rows

    def _cast(self, name, value, dtype):
        if value.dtype == dtype:
            return value
        if dtype.kind == "u":
            _check_ids(
                value,
                self.n_users if name == "users"
                else self.n_items if name == "items" else None,
                name,
            )
        return value.astype(dtype)

    def _close_extent(self):
        self._extent_open = False

    def _require_open(self):
        if self._finalized:
            raise ValueError("writer already finalized")

    # -- finalize -------------------------------------------------------
    def finalize(self):
        """Assemble the final file; returns the parsed header dict."""
        self._require_open()
        self._close_extent()
        for handle in self._spills.values():
            handle.close()

        layout = []
        offset = _PREAMBLE_BYTES
        for name, dtype in self.columns.items():
            offset = _align(offset)
            nbytes = self.rows * dtype.itemsize
            layout.append({
                "name": name, "dtype": _dtype_str(dtype),
                "offset": offset, "nbytes": nbytes,
            })
            offset += nbytes
        payload_stop = offset

        digests = []
        hasher = [hashlib.sha256(), 0]   # current chunk hasher, bytes fed

        def feed(chunk):
            view = memoryview(chunk)
            while len(view):
                room = self.checksum_chunk_bytes - hasher[1]
                take = view[:room]
                hasher[0].update(take)
                hasher[1] += len(take)
                if hasher[1] == self.checksum_chunk_bytes:
                    digests.append(hasher[0].hexdigest())
                    hasher[0] = hashlib.sha256()
                    hasher[1] = 0
                view = view[room:]

        try:
            with open(self.path, "wb") as out:
                out.write(b"\x00" * _PREAMBLE_BYTES)
                position = _PREAMBLE_BYTES
                for spec, name in zip(layout, self.columns):
                    pad = spec["offset"] - position
                    if pad:
                        padding = b"\x00" * pad
                        out.write(padding)
                        feed(padding)
                        position += pad
                    with open(os.path.join(self._spill_dir, name),
                              "rb") as spill:
                        while True:
                            chunk = spill.read(8 * 1024 * 1024)
                            if not chunk:
                                break
                            out.write(chunk)
                            feed(chunk)
                            position += len(chunk)
                    if position != spec["offset"] + spec["nbytes"]:
                        raise SerializationError(
                            f"column {name!r} spill holds "
                            f"{position - spec['offset']} bytes, expected "
                            f"{spec['nbytes']} — append/finalize mismatch"
                        )
                if hasher[1]:
                    digests.append(hasher[0].hexdigest())

                header = {
                    "format_version": COLUMNAR_FORMAT_VERSION,
                    "kind": self.kind,
                    "name": self.name,
                    "n_users": self.n_users,
                    "n_items": self.n_items,
                    "rows": self.rows,
                    "columns": layout,
                    "extents": [
                        {"start": start, "stop": stop, "meta": meta}
                        for start, stop, meta in self._extents
                    ],
                    "meta": self.meta,
                    "payload_stop": payload_stop,
                    "checksum_chunk_bytes": self.checksum_chunk_bytes,
                    "chunk_checksums": digests,
                }
                header_bytes = json.dumps(header, sort_keys=True).encode()
                out.write(header_bytes)

                out.seek(0)
                out.write(_MAGIC)
                out.write(np.uint64(payload_stop).tobytes())
                out.write(np.uint64(len(header_bytes)).tobytes())
                out.write(hashlib.sha256(header_bytes).digest())
        except Exception:
            self._cleanup_spills()
            if os.path.exists(self.path):
                os.unlink(self.path)
            self._finalized = True
            raise
        self._cleanup_spills()
        self._finalized = True
        return header

    def abort(self):
        """Drop the spills and any partial output without finalizing."""
        self._cleanup_spills()
        if not self._finalized and os.path.exists(self.path):
            os.unlink(self.path)
        self._finalized = True

    def _cleanup_spills(self):
        for handle in self._spills.values():
            if not handle.closed:
                handle.close()
        for name in self.columns:
            spill = os.path.join(self._spill_dir, name)
            if os.path.exists(spill):
                os.unlink(spill)
        if os.path.isdir(self._spill_dir):
            os.rmdir(self._spill_dir)


def _read_header(path):
    """Parse and verify preamble + header; O(1) in the payload size."""
    size = os.path.getsize(path)
    if size < _PREAMBLE_BYTES:
        raise SerializationError(
            f"{path}: {size} bytes is smaller than the preamble; not a "
            "columnar file (or catastrophically truncated)"
        )
    with open(path, "rb") as handle:
        preamble = handle.read(_PREAMBLE_BYTES)
        if preamble[:8] != _MAGIC:
            raise SerializationError(
                f"{path}: bad magic {preamble[:8]!r}; not a columnar file"
            )
        header_offset = int(np.frombuffer(preamble, np.uint64, 1, 8)[0])
        header_len = int(np.frombuffer(preamble, np.uint64, 1, 16)[0])
        header_digest = preamble[24:56]
        if header_offset + header_len != size:
            raise SerializationError(
                f"{path}: declared size {header_offset + header_len} != "
                f"actual {size}; the file is truncated or grew after "
                "finalize"
            )
        handle.seek(header_offset)
        header_bytes = handle.read(header_len)
    if hashlib.sha256(header_bytes).digest() != header_digest:
        raise SerializationError(
            f"{path}: header failed checksum verification; the partition "
            "table is corrupt"
        )
    try:
        header = json.loads(header_bytes)
    except ValueError as error:  # pragma: no cover - digest catches first
        raise SerializationError(f"{path}: malformed header: {error}") from error
    version = int(header.get("format_version", -1))
    if version > COLUMNAR_FORMAT_VERSION:
        raise SerializationError(
            f"{path} uses columnar format version {version}, but this "
            f"build only reads up to {COLUMNAR_FORMAT_VERSION}"
        )
    for spec in header["columns"]:
        stop = spec["offset"] + spec["nbytes"]
        if spec["offset"] < _PREAMBLE_BYTES or stop > header["payload_stop"]:
            raise SerializationError(
                f"{path}: column {spec['name']!r} escapes the payload "
                "region; the header is inconsistent"
            )
    return header


class ColumnarStore(InteractionStore):
    """A columnar file opened as one read-only memory mapping.

    All column arrays are zero-copy ``np.frombuffer`` views of a single
    ``mmap``; opening touches only the preamble and header.  ``close()``
    raises ``BufferError`` while any view (including tables handed to
    consumers) is still alive — the interpreter tracks buffer exports, so
    unmapping under a live view is impossible rather than a segfault.
    """

    backend = "mmap"

    def __init__(self, path, header, mapping, columns):
        self.path = os.fspath(path)
        self._mm = mapping
        self.header = header
        extents = [
            Extent(entry["start"], entry["stop"], entry["meta"])
            for entry in header["extents"]
        ]
        super().__init__(
            columns, extents, name=header["name"], kind=header["kind"],
            n_users=header["n_users"], n_items=header["n_items"],
            meta=header["meta"],
        )
        if self.rows != header["rows"]:
            raise SerializationError(
                f"{path}: header declares {header['rows']} rows but the "
                f"columns hold {self.rows}"
            )

    @classmethod
    def open(cls, path, verify=False):
        """Map a columnar file; O(1) unless ``verify`` streams the payload."""
        header = _read_header(path)
        with open(path, "rb") as handle:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            columns = OrderedDict()
            for spec in header["columns"]:
                dtype = np.dtype(spec["dtype"])
                count = spec["nbytes"] // dtype.itemsize
                columns[spec["name"]] = np.frombuffer(
                    mapping, dtype=dtype, count=count, offset=spec["offset"]
                )
            store = cls(path, header, mapping, columns)
        except Exception:
            mapping.close()
            raise
        if verify:
            store.verify_checksums()
        return store

    def verify_checksums(self):
        """Stream the payload and compare every chunk digest (O(payload))."""
        chunk_bytes = int(self.header["checksum_chunk_bytes"])
        expected = self.header["chunk_checksums"]
        payload_stop = int(self.header["payload_stop"])
        digests = []
        with open(self.path, "rb") as handle:
            handle.seek(_PREAMBLE_BYTES)
            remaining = payload_stop - _PREAMBLE_BYTES
            while remaining > 0:
                chunk = handle.read(min(chunk_bytes, remaining))
                if not chunk:
                    break
                digests.append(hashlib.sha256(chunk).hexdigest())
                remaining -= len(chunk)
        if digests != expected:
            bad = next(
                (i for i, (a, b) in enumerate(zip(digests, expected))
                 if a != b),
                min(len(digests), len(expected)),
            )
            raise SerializationError(
                f"{self.path}: payload chunk {bad} failed checksum "
                "verification; the file is corrupt or was modified after "
                "writing"
            )

    def release(self):
        """Return resident payload pages to the OS (data stays on disk).

        The mapping remains fully valid — subsequently touched pages
        fault back in from the file.  Called between chunks of an epoch
        pass, this is what keeps peak RSS flat regardless of dataset
        size.
        """
        madvise = getattr(self._mm, "madvise", None)
        if madvise is not None and hasattr(mmap, "MADV_DONTNEED"):
            madvise(mmap.MADV_DONTNEED)

    def close(self):
        """Unmap the file.  Raises ``BufferError`` if views are alive."""
        self.columns = OrderedDict()
        self._mm.close()


# ----------------------------------------------------------------------
# Dataset adapters
# ----------------------------------------------------------------------
def write_dataset(path, dataset, chunk_rows=1 << 20,
                  checksum_chunk_bytes=_DEFAULT_CHECKSUM_CHUNK):
    """Persist a :class:`MultiDomainDataset` to one columnar file.

    Rows are laid out domain-major (every domain's train/val/test splits
    are contiguous extents), appended in ``chunk_rows`` batches so
    arbitrarily large tables stream through bounded memory.
    """
    with ColumnarWriter(
        path, DATASET_COLUMNS, kind="dataset", name=dataset.name,
        n_users=dataset.n_users, n_items=dataset.n_items,
        checksum_chunk_bytes=checksum_chunk_bytes,
    ) as writer:
        for domain in dataset:
            for split in ("train", "val", "test"):
                table = getattr(domain, split)
                writer.new_extent(domain=domain.name, index=domain.index,
                                  split=split)
                for start in range(0, len(table), chunk_rows):
                    stop = min(start + chunk_rows, len(table))
                    writer.append(
                        users=table.users[start:stop],
                        items=table.items[start:stop],
                        labels=table.labels[start:stop],
                    )
    return path


def dataset_from_store(store, *, user_features=None, item_features=None,
                       splits=("train", "val", "test")):
    """Rebuild the :class:`MultiDomainDataset` surface over a store.

    Every table is a zero-copy column-range view; the returned dataset
    carries ``store`` so callers can ``release()`` pages or ``close()``
    the mapping through it.
    """
    by_index = {}
    for extent in store.extents:
        meta = extent.meta
        if "index" not in meta or "split" not in meta:
            raise SerializationError(
                f"store {store.name!r} has a non-dataset extent {meta!r}; "
                "expected domain/index/split partition metadata"
            )
        by_index.setdefault(int(meta["index"]), {})[meta["split"]] = extent
    domains = []
    for index in sorted(by_index):
        extents = by_index[index]
        missing = [split for split in splits if split not in extents]
        if missing:
            raise SerializationError(
                f"domain index {index} is missing splits {missing}"
            )
        tables = {
            split: store.table(extents[split].start, extents[split].stop)
            for split in splits
        }
        domains.append(Domain(
            name=extents[splits[0]].meta.get("domain", f"D{index}"),
            index=index, **tables,
        ))
    return MultiDomainDataset(
        store.name, domains, n_users=store.n_users, n_items=store.n_items,
        user_features=user_features, item_features=item_features,
        store=store,
    )


def open_dataset(path, *, verify=False, user_features=None,
                 item_features=None):
    """Open a columnar dataset file as a memory-mapped dataset (O(1))."""
    store = ColumnarStore.open(path, verify=verify)
    return dataset_from_store(
        store, user_features=user_features, item_features=item_features
    )
