"""Train/validation/test splitting of interaction tables."""

from __future__ import annotations

import numpy as np



__all__ = ["split_table"]


def split_table(table, rng, train_frac=0.7, val_frac=0.15):
    """Randomly split a table into (train, val, test), stratified by label.

    Fractions follow the paper's roughly 70/15/15 layout (Table I).
    Stratification guarantees every split contains both classes (so AUC is
    defined per split even for the sparsest domains); it needs at least 3
    positives and 3 negatives.
    """
    if train_frac <= 0 or val_frac <= 0 or train_frac + val_frac >= 1.0:
        raise ValueError("need 0 < train_frac, 0 < val_frac, sum < 1")
    positives = np.flatnonzero(table.labels > 0.5)
    negatives = np.flatnonzero(table.labels <= 0.5)
    if len(positives) < 3 or len(negatives) < 3:
        raise ValueError(
            "stratified split needs >= 3 samples of each class, got "
            f"{len(positives)} positives / {len(negatives)} negatives"
        )

    splits = [[], [], []]
    for class_indices in (positives, negatives):
        order = class_indices[rng.permutation(len(class_indices))]
        n = len(order)
        n_train = max(1, int(round(n * train_frac)))
        n_val = max(1, int(round(n * val_frac)))
        if n_train + n_val >= n:
            n_train = n - 2
            n_val = 1
        splits[0].append(order[:n_train])
        splits[1].append(order[n_train:n_train + n_val])
        splits[2].append(order[n_train + n_val:])

    result = []
    for parts in splits:
        index = np.concatenate(parts)
        index = index[rng.permutation(len(index))]
        result.append(table.subset(index))
    return tuple(result)
