"""Train/validation/test splitting of interaction tables.

Two splitters live here with deliberately different contracts:

* :func:`split_table` — the *offline* stratified random split (Table I's
  70/15/15 layout); explicitly seeded via its ``rng`` argument.
* :func:`temporal_split` — the *online* time-ordered split: early rows
  train, the most recent slice is held out.  It never shuffles — a
  temporal holdout that has been shuffled into the past leaks future
  information into training and silently inflates every AUC measured on
  it.
"""

from __future__ import annotations

import numpy as np



__all__ = ["split_table", "temporal_split"]


def split_table(table, rng, train_frac=0.7, val_frac=0.15):
    """Randomly split a table into (train, val, test), stratified by label.

    Fractions follow the paper's roughly 70/15/15 layout (Table I).
    Stratification guarantees every split contains both classes (so AUC is
    defined per split even for the sparsest domains); it needs at least 3
    positives and 3 negatives.
    """
    if train_frac <= 0 or val_frac <= 0 or train_frac + val_frac >= 1.0:
        raise ValueError("need 0 < train_frac, 0 < val_frac, sum < 1")
    positives = np.flatnonzero(table.labels > 0.5)
    negatives = np.flatnonzero(table.labels <= 0.5)
    if len(positives) < 3 or len(negatives) < 3:
        raise ValueError(
            "stratified split needs >= 3 samples of each class, got "
            f"{len(positives)} positives / {len(negatives)} negatives"
        )

    splits = [[], [], []]
    for class_indices in (positives, negatives):
        order = class_indices[rng.permutation(len(class_indices))]
        n = len(order)
        n_train = max(1, int(round(n * train_frac)))
        n_val = max(1, int(round(n * val_frac)))
        if n_train + n_val >= n:
            n_train = n - 2
            n_val = 1
        splits[0].append(order[:n_train])
        splits[1].append(order[n_train:n_train + n_val])
        splits[2].append(order[n_train + n_val:])

    result = []
    for parts in splits:
        index = np.concatenate(parts)
        index = index[rng.permutation(len(index))]
        result.append(table.subset(index))
    return tuple(result)


def temporal_split(table, timestamps, holdout_frac=0.25, watermark=None):
    """Split a table into (train, holdout, cutoff) by event time.

    Rows are ordered by ``timestamps`` (stable, so ties keep arrival
    order) and cut at a watermark: everything at or before the cutoff is
    trainable, everything after is the held-out recent window.  No
    shuffling happens at any point — both outputs stay in time order.

    ``watermark`` pins the cutoff timestamp explicitly; otherwise the
    latest ``holdout_frac`` of rows is held out and the cutoff is the
    last training row's timestamp.  Returns
    ``(train_table, holdout_table, cutoff_time)``.
    """
    timestamps = np.asarray(timestamps)
    if len(timestamps) != len(table):
        raise ValueError("timestamps must align with the table rows")
    if len(table) == 0:
        raise ValueError("cannot split an empty table")
    # Columnar stores and stream archives hand us rows already in event
    # order; detecting that turns the split into two zero-copy slices —
    # no argsort, no fancy-index gather, no per-row copies.  A stable
    # sort of an already-sorted array is the identity permutation, so
    # this fast path is bitwise-identical to the general one.
    if len(timestamps) <= 1 or bool(np.all(timestamps[:-1] <= timestamps[1:])):
        ordered_times = timestamps
        n_train, cutoff = _cut_point(ordered_times, holdout_frac, watermark)
        train = table.subset(slice(0, n_train))
        holdout = table.subset(slice(n_train, len(table)))
        return train, holdout, cutoff
    order = np.argsort(timestamps, kind="stable")
    ordered_times = timestamps[order]
    n_train, cutoff = _cut_point(ordered_times, holdout_frac, watermark)
    train = table.subset(order[:n_train])
    holdout = table.subset(order[n_train:])
    return train, holdout, cutoff


def _cut_point(ordered_times, holdout_frac, watermark):
    """(n_train, cutoff_time) for a time-sorted timestamp array."""
    n = len(ordered_times)
    if watermark is not None:
        return int(np.searchsorted(ordered_times, watermark, side="right")), \
            watermark
    if not 0.0 < holdout_frac < 1.0:
        raise ValueError("holdout_frac must be in (0, 1)")
    n_train = max(1, int(round(n * (1.0 - holdout_frac))))
    n_train = min(n_train, n - 1) if n > 1 else 1
    return n_train, ordered_times[n_train - 1]
