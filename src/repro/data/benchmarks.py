"""MDR benchmark dataset presets, calibrated to the paper's Tables I-IV.

Each preset reproduces the *structure* of the corresponding paper benchmark
— the number of domains, each domain's share of the total sample count, and
each domain's CTR ratio are taken directly from Tables II, III and IV — at a
laptop-friendly scale (the paper's Amazon-6 has 16.9M interactions; ours
defaults to ~12k, tunable via ``scale``).

Amazon-style datasets use trainable id embeddings (the paper randomly
initializes Amazon features); Taobao-style datasets use frozen dense
features (standing in for the paper's frozen GraphSage features).
"""

from __future__ import annotations

import numpy as np

from ..utils.seeding import spawn_rng
from .synthetic import DomainSpec, SyntheticConfig, generate_dataset

__all__ = [
    "amazon6_sim",
    "amazon13_sim",
    "taobao10_sim",
    "taobao20_sim",
    "taobao30_sim",
    "taobao_online_sim",
    "dataset_by_name",
    "BENCHMARK_BUILDERS",
]

# (name, share-of-total, CTR ratio) from Table II.
_AMAZON6 = [
    ("Musical Instruments", 0.0711, 0.22),
    ("Office Products", 0.2317, 0.23),
    ("Patio Lawn and Garden", 0.1787, 0.32),
    ("Prime Pantry", 0.0410, 0.23),
    ("Toys and Games", 0.3180, 0.47),
    ("Video Games", 0.1594, 0.21),
]

# From Table III; the seven newly added domains are the sparse ones.
_AMAZON13 = [
    ("Arts Crafts and Sewing", 0.1186, 0.22),
    ("Digital Music", 0.0378, 0.23),
    ("Gift Cards", 0.0006, 0.32),
    ("Industrial and Scientific", 0.0186, 0.23),
    ("Luxury Beauty", 0.0043, 0.47),
    ("Magazine Subscriptions", 0.0006, 0.21),
    ("Musical Instruments", 0.0399, 0.36),
    ("Office Products", 0.1558, 0.30),
    ("Patio Lawn and Garden", 0.1136, 0.46),
    ("Prime Pantry", 0.0322, 0.25),
    ("Software", 0.0005, 0.30),
    ("Toys and Games", 0.3697, 0.30),
    ("Video Games", 0.1078, 0.27),
]

# From Table IV (D1..D30); Taobao-10/20 take the first 10/20 domains.
_TAOBAO30 = [
    ("D1", 0.0182, 0.22), ("D2", 0.0096, 0.23), ("D3", 0.0277, 0.32),
    ("D4", 0.0860, 0.23), ("D5", 0.0159, 0.47), ("D6", 0.0099, 0.21),
    ("D7", 0.0058, 0.36), ("D8", 0.0331, 0.30), ("D9", 0.0077, 0.46),
    ("D10", 0.0246, 0.25), ("D11", 0.0403, 0.30), ("D12", 0.0089, 0.30),
    ("D13", 0.0122, 0.27), ("D14", 0.1729, 0.20), ("D15", 0.0214, 0.33),
    ("D16", 0.0075, 0.23), ("D17", 0.0194, 0.38), ("D18", 0.0742, 0.22),
    ("D19", 0.0167, 0.29), ("D20", 0.0040, 0.33), ("D21", 0.0065, 0.47),
    ("D22", 0.0403, 0.23), ("D23", 0.0573, 0.24), ("D24", 0.0101, 0.44),
    ("D25", 0.0938, 0.21), ("D26", 0.0073, 0.47), ("D27", 0.0343, 0.37),
    ("D28", 0.0536, 0.28), ("D29", 0.0335, 0.45), ("D30", 0.0472, 0.43),
]

_MIN_DOMAIN_SAMPLES = 40


def _specs_from_shares(entries, total_samples):
    """Turn (name, share, ctr) rows into DomainSpecs with a sparsity floor."""
    total_share = sum(share for _, share, _ in entries)
    specs = []
    for name, share, ctr in entries:
        n = int(round(total_samples * share / total_share))
        specs.append(DomainSpec(name, max(n, _MIN_DOMAIN_SAMPLES), ctr))
    return tuple(specs)


def amazon6_sim(scale=1.0, seed=0):
    """Amazon-6 analogue: 6 data-rich domains, trainable embeddings."""
    total = int(12_000 * scale)
    return generate_dataset(SyntheticConfig(
        name="amazon6_sim",
        domains=_specs_from_shares(_AMAZON6, total),
        n_users=int(900 * scale) + 100,
        n_items=int(500 * scale) + 80,
        feature_mode="trainable",
        conflict=0.6,
        seed=seed,
    ))


def amazon13_sim(scale=1.0, seed=0):
    """Amazon-13 analogue: Amazon-6's domains plus 7 sparse ones."""
    total = int(14_000 * scale)
    return generate_dataset(SyntheticConfig(
        name="amazon13_sim",
        domains=_specs_from_shares(_AMAZON13, total),
        n_users=int(1000 * scale) + 120,
        n_items=int(550 * scale) + 90,
        feature_mode="trainable",
        conflict=0.6,
        seed=seed,
    ))


def _taobao_sim(name, n_domains, scale, seed):
    total = int(11_000 * scale * n_domains / 30)
    return generate_dataset(SyntheticConfig(
        name=name,
        domains=_specs_from_shares(_TAOBAO30[:n_domains], total),
        n_users=int(700 * scale * n_domains / 30) + 150,
        n_items=int(400 * scale * n_domains / 30) + 100,
        feature_mode="fixed",
        feature_dim=16,
        conflict=0.65,
        seed=seed,
    ))


def taobao10_sim(scale=1.0, seed=0):
    """Taobao-10 analogue: first 10 Cloud-Theme domains, frozen features."""
    return _taobao_sim("taobao10_sim", 10, scale, seed)


def taobao20_sim(scale=1.0, seed=0):
    """Taobao-20 analogue: first 20 Cloud-Theme domains."""
    return _taobao_sim("taobao20_sim", 20, scale, seed)


def taobao30_sim(scale=1.0, seed=0):
    """Taobao-30 analogue: all 30 Cloud-Theme domains."""
    return _taobao_sim("taobao30_sim", 30, scale, seed)


def taobao_online_sim(n_domains=60, total_samples=30_000, seed=0,
                      zipf_exponent=1.1):
    """Industry-scale analogue of Taobao-online (Section V-F).

    The paper's production dataset has 69,102 domains with a heavy-tailed
    size distribution (7,088 samples per domain on average, top domains far
    larger).  We reproduce the *shape* — many domains, Zipf-distributed
    sizes, random CTR ratios in [0.2, 0.5] — at a scale a laptop can train.
    """
    rng = spawn_rng(seed, "taobao_online_sim", "specs")
    weights = 1.0 / np.arange(1, n_domains + 1) ** zipf_exponent
    weights /= weights.sum()
    sizes = np.maximum((weights * total_samples).astype(int), _MIN_DOMAIN_SAMPLES)
    ratios = rng.uniform(0.2, 0.5, size=n_domains)
    specs = tuple(
        DomainSpec(f"online-D{i + 1}", int(sizes[i]), float(round(ratios[i], 2)))
        for i in range(n_domains)
    )
    return generate_dataset(SyntheticConfig(
        name="taobao_online_sim",
        domains=specs,
        n_users=max(1500, total_samples // 12),
        n_items=max(800, total_samples // 25),
        feature_mode="fixed",
        feature_dim=16,
        conflict=0.7,
        seed=seed,
    ))


BENCHMARK_BUILDERS = {
    "amazon6_sim": amazon6_sim,
    "amazon13_sim": amazon13_sim,
    "taobao10_sim": taobao10_sim,
    "taobao20_sim": taobao20_sim,
    "taobao30_sim": taobao30_sim,
    "taobao_online_sim": taobao_online_sim,
}


def dataset_by_name(name, **kwargs):
    """Build a benchmark dataset by name."""
    try:
        builder = BENCHMARK_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; expected one of {sorted(BENCHMARK_BUILDERS)}"
        ) from None
    return builder(**kwargs)
