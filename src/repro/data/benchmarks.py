"""MDR benchmark dataset presets, calibrated to the paper's Tables I-IV.

Each preset reproduces the *structure* of the corresponding paper benchmark
— the number of domains, each domain's share of the total sample count, and
each domain's CTR ratio are taken directly from Tables II, III and IV — at a
laptop-friendly scale (the paper's Amazon-6 has 16.9M interactions; ours
defaults to ~12k, tunable via ``scale``).

Amazon-style datasets use trainable id embeddings (the paper randomly
initializes Amazon features); Taobao-style datasets use frozen dense
features (standing in for the paper's frozen GraphSage features).
"""

from __future__ import annotations

import warnings

import numpy as np

from ..utils.seeding import spawn_rng
from .synthetic import DomainSpec, SyntheticConfig, generate_dataset

__all__ = [
    "amazon6_sim",
    "amazon13_sim",
    "taobao_sim",
    "taobao10_sim",
    "taobao20_sim",
    "taobao30_sim",
    "taobao_online_sim",
    "dataset_by_name",
    "BENCHMARK_BUILDERS",
]

# (name, share-of-total, CTR ratio) from Table II.
_AMAZON6 = [
    ("Musical Instruments", 0.0711, 0.22),
    ("Office Products", 0.2317, 0.23),
    ("Patio Lawn and Garden", 0.1787, 0.32),
    ("Prime Pantry", 0.0410, 0.23),
    ("Toys and Games", 0.3180, 0.47),
    ("Video Games", 0.1594, 0.21),
]

# From Table III; the seven newly added domains are the sparse ones.
_AMAZON13 = [
    ("Arts Crafts and Sewing", 0.1186, 0.22),
    ("Digital Music", 0.0378, 0.23),
    ("Gift Cards", 0.0006, 0.32),
    ("Industrial and Scientific", 0.0186, 0.23),
    ("Luxury Beauty", 0.0043, 0.47),
    ("Magazine Subscriptions", 0.0006, 0.21),
    ("Musical Instruments", 0.0399, 0.36),
    ("Office Products", 0.1558, 0.30),
    ("Patio Lawn and Garden", 0.1136, 0.46),
    ("Prime Pantry", 0.0322, 0.25),
    ("Software", 0.0005, 0.30),
    ("Toys and Games", 0.3697, 0.30),
    ("Video Games", 0.1078, 0.27),
]

# From Table IV (D1..D30); Taobao-10/20 take the first 10/20 domains.
_TAOBAO30 = [
    ("D1", 0.0182, 0.22), ("D2", 0.0096, 0.23), ("D3", 0.0277, 0.32),
    ("D4", 0.0860, 0.23), ("D5", 0.0159, 0.47), ("D6", 0.0099, 0.21),
    ("D7", 0.0058, 0.36), ("D8", 0.0331, 0.30), ("D9", 0.0077, 0.46),
    ("D10", 0.0246, 0.25), ("D11", 0.0403, 0.30), ("D12", 0.0089, 0.30),
    ("D13", 0.0122, 0.27), ("D14", 0.1729, 0.20), ("D15", 0.0214, 0.33),
    ("D16", 0.0075, 0.23), ("D17", 0.0194, 0.38), ("D18", 0.0742, 0.22),
    ("D19", 0.0167, 0.29), ("D20", 0.0040, 0.33), ("D21", 0.0065, 0.47),
    ("D22", 0.0403, 0.23), ("D23", 0.0573, 0.24), ("D24", 0.0101, 0.44),
    ("D25", 0.0938, 0.21), ("D26", 0.0073, 0.47), ("D27", 0.0343, 0.37),
    ("D28", 0.0536, 0.28), ("D29", 0.0335, 0.45), ("D30", 0.0472, 0.43),
]

_MIN_DOMAIN_SAMPLES = 40


def _specs_from_shares(entries, total_samples, min_samples=_MIN_DOMAIN_SAMPLES):
    """Turn (name, share, ctr) rows into DomainSpecs with a sparsity floor."""
    total_share = sum(share for _, share, _ in entries)
    specs = []
    for name, share, ctr in entries:
        n = int(round(total_samples * share / total_share))
        specs.append(DomainSpec(name, max(n, min_samples), ctr))
    return tuple(specs)


def amazon6_sim(scale=1.0, seed=0):
    """Amazon-6 analogue: 6 data-rich domains, trainable embeddings."""
    total = int(12_000 * scale)
    return generate_dataset(SyntheticConfig(
        name="amazon6_sim",
        domains=_specs_from_shares(_AMAZON6, total),
        n_users=int(900 * scale) + 100,
        n_items=int(500 * scale) + 80,
        feature_mode="trainable",
        conflict=0.6,
        seed=seed,
    ))


def amazon13_sim(scale=1.0, seed=0):
    """Amazon-13 analogue: Amazon-6's domains plus 7 sparse ones."""
    total = int(14_000 * scale)
    return generate_dataset(SyntheticConfig(
        name="amazon13_sim",
        domains=_specs_from_shares(_AMAZON13, total),
        n_users=int(1000 * scale) + 120,
        n_items=int(550 * scale) + 90,
        feature_mode="trainable",
        conflict=0.6,
        seed=seed,
    ))


def _taobao_entries(n_domains):
    """(name, share, ctr) rows for ``n_domains`` Cloud-Theme-like domains.

    The first 30 come straight from Table IV; beyond that the table is
    extended with a deterministic heavy tail — each extra domain ``D{i}``
    gets a polynomially decaying share and cycles the table's CTR ratios
    — so arbitrarily large domain counts keep the preset's shape without
    any RNG (the extension is a pure function of the index).
    """
    entries = list(_TAOBAO30[:min(n_domains, 30)])
    for i in range(30, n_domains):
        share = 0.004 / (i - 28) ** 1.05
        ctr = _TAOBAO30[i % 30][2]
        entries.append((f"D{i + 1}", share, ctr))
    return entries


def taobao_sim(n_domains, scale=1.0, seed=0, total_samples=None,
               n_users=None, n_items=None, min_domain_samples=None,
               name=None):
    """Parameterized Taobao analogue: ``n_domains`` Cloud-Theme domains.

    The single front door for the Taobao-10/20/30 presets (``n_domains``
    of 10/20/30 with everything else defaulted is bitwise-identical to
    the historical builders) *and* for the 10k-50k domain-scaling runs,
    which override ``total_samples`` / ``min_domain_samples`` to keep the
    tail sparse instead of letting the per-domain floor multiply.
    """
    if n_domains < 1:
        raise ValueError("need at least one domain")
    if name is None:
        name = f"taobao{n_domains}_sim"
    if total_samples is None:
        total_samples = int(11_000 * scale * n_domains / 30)
    if n_users is None:
        n_users = int(700 * scale * n_domains / 30) + 150
    if n_items is None:
        n_items = int(400 * scale * n_domains / 30) + 100
    if min_domain_samples is None:
        min_domain_samples = _MIN_DOMAIN_SAMPLES
    return generate_dataset(SyntheticConfig(
        name=name,
        domains=_specs_from_shares(
            _taobao_entries(n_domains), total_samples,
            min_samples=min_domain_samples,
        ),
        n_users=n_users,
        n_items=n_items,
        feature_mode="fixed",
        feature_dim=16,
        conflict=0.65,
        seed=seed,
    ))


def _deprecated_taobao_shim(n_domains):
    def shim(scale=1.0, seed=0):
        warnings.warn(
            f"taobao{n_domains}_sim is deprecated; call "
            f"taobao_sim({n_domains}, ...) instead",
            DeprecationWarning, stacklevel=2,
        )
        return taobao_sim(n_domains, scale=scale, seed=seed)

    shim.__name__ = f"taobao{n_domains}_sim"
    shim.__doc__ = (
        f"Deprecated alias of ``taobao_sim({n_domains}, ...)`` "
        "(bitwise-identical output)."
    )
    return shim


taobao10_sim = _deprecated_taobao_shim(10)
taobao20_sim = _deprecated_taobao_shim(20)
taobao30_sim = _deprecated_taobao_shim(30)


def taobao_online_sim(n_domains=60, total_samples=30_000, seed=0,
                      zipf_exponent=1.1):
    """Industry-scale analogue of Taobao-online (Section V-F).

    The paper's production dataset has 69,102 domains with a heavy-tailed
    size distribution (7,088 samples per domain on average, top domains far
    larger).  We reproduce the *shape* — many domains, Zipf-distributed
    sizes, random CTR ratios in [0.2, 0.5] — at a scale a laptop can train.
    """
    rng = spawn_rng(seed, "taobao_online_sim", "specs")
    weights = 1.0 / np.arange(1, n_domains + 1) ** zipf_exponent
    weights /= weights.sum()
    sizes = np.maximum((weights * total_samples).astype(int), _MIN_DOMAIN_SAMPLES)
    ratios = rng.uniform(0.2, 0.5, size=n_domains)
    specs = tuple(
        DomainSpec(f"online-D{i + 1}", int(sizes[i]), float(round(ratios[i], 2)))
        for i in range(n_domains)
    )
    return generate_dataset(SyntheticConfig(
        name="taobao_online_sim",
        domains=specs,
        n_users=max(1500, total_samples // 12),
        n_items=max(800, total_samples // 25),
        feature_mode="fixed",
        feature_dim=16,
        conflict=0.7,
        seed=seed,
    ))


def _taobao_preset(n_domains):
    # Registry entries stay warning-free: the string names are the stable
    # preset vocabulary (configs, CLI, saved results); only the module-level
    # shim *functions* are deprecated.
    def build(scale=1.0, seed=0):
        return taobao_sim(n_domains, scale=scale, seed=seed)

    build.__name__ = f"taobao{n_domains}_sim_preset"
    return build


BENCHMARK_BUILDERS = {
    "amazon6_sim": amazon6_sim,
    "amazon13_sim": amazon13_sim,
    "taobao_sim": taobao_sim,
    "taobao10_sim": _taobao_preset(10),
    "taobao20_sim": _taobao_preset(20),
    "taobao30_sim": _taobao_preset(30),
    "taobao_online_sim": taobao_online_sim,
}


def dataset_by_name(name, **kwargs):
    """Build a benchmark dataset by name."""
    try:
        builder = BENCHMARK_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; expected one of {sorted(BENCHMARK_BUILDERS)}"
        ) from None
    return builder(**kwargs)
