"""Minibatch iteration over interaction tables.

Training in MDR iterates *per-domain* batches (the paper optimizes each
domain's loss on that domain's data), so a batch carries its domain index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Batch", "iter_minibatches", "full_batch"]


@dataclass(frozen=True)
class Batch:
    """A homogeneous-domain minibatch."""

    users: np.ndarray
    items: np.ndarray
    labels: np.ndarray
    domain: int

    def __len__(self):
        return len(self.users)


def iter_minibatches(table, domain, batch_size, rng=None, max_batches=None):
    """Yield :class:`Batch` slices of ``table``.

    When ``rng`` is given, rows are shuffled first.  ``max_batches`` bounds
    the pass (useful for the fixed-step inner loops of DN/DR).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = len(table)
    # Unshuffled passes (evaluation, deterministic replays) slice directly:
    # a slice is a zero-copy view, whereas fancy-indexing through an
    # np.arange order copies every row of the table per pass.
    order = rng.permutation(n) if rng is not None else None
    produced = 0
    for start in range(0, n, batch_size):
        if max_batches is not None and produced >= max_batches:
            return
        index = (
            slice(start, start + batch_size)
            if order is None
            else order[start:start + batch_size]
        )
        yield Batch(
            table.users[index], table.items[index], table.labels[index], domain
        )
        produced += 1


def sample_batch(table, domain, batch_size, rng):
    """One random minibatch (with replacement across calls, without within).

    Used by frameworks that need simultaneous per-domain batches (PCGrad,
    Weighted Loss, MAML, MLDG).
    """
    n = len(table)
    if n == 0:
        raise ValueError("cannot sample a batch from an empty table")
    size = min(batch_size, n)
    index = rng.choice(n, size=size, replace=False)
    return Batch(
        table.users[index], table.items[index], table.labels[index], domain
    )


def full_batch(table, domain):
    """The whole table as one batch (used for evaluation)."""
    return Batch(table.users, table.items, table.labels, domain)
