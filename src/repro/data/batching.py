"""Minibatch iteration over interaction tables.

Training in MDR iterates *per-domain* batches (the paper optimizes each
domain's loss on that domain's data), so a batch carries its domain index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Batch", "iter_minibatches", "full_batch", "iter_store_batches"]


@dataclass(frozen=True)
class Batch:
    """A homogeneous-domain minibatch."""

    users: np.ndarray
    items: np.ndarray
    labels: np.ndarray
    domain: int

    def __len__(self):
        return len(self.users)


def iter_minibatches(table, domain, batch_size, rng=None, max_batches=None):
    """Yield :class:`Batch` slices of ``table``.

    When ``rng`` is given, rows are shuffled first.  ``max_batches`` bounds
    the pass (useful for the fixed-step inner loops of DN/DR).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = len(table)
    # Unshuffled passes (evaluation, deterministic replays) slice directly:
    # a slice is a zero-copy view, whereas fancy-indexing through an
    # np.arange order copies every row of the table per pass.
    order = rng.permutation(n) if rng is not None else None
    produced = 0
    for start in range(0, n, batch_size):
        if max_batches is not None and produced >= max_batches:
            return
        index = (
            slice(start, start + batch_size)
            if order is None
            else order[start:start + batch_size]
        )
        yield Batch(
            table.users[index], table.items[index], table.labels[index], domain
        )
        produced += 1


def sample_batch(table, domain, batch_size, rng):
    """One random minibatch (with replacement across calls, without within).

    Used by frameworks that need simultaneous per-domain batches (PCGrad,
    Weighted Loss, MAML, MLDG).
    """
    n = len(table)
    if n == 0:
        raise ValueError("cannot sample a batch from an empty table")
    size = min(batch_size, n)
    index = rng.choice(n, size=size, replace=False)
    return Batch(
        table.users[index], table.items[index], table.labels[index], domain
    )


def full_batch(table, domain):
    """The whole table as one batch (used for evaluation)."""
    return Batch(table.users, table.items, table.labels, domain)


def iter_store_batches(store, batch_size, *, split=None,
                       release_every_rows=4 << 20):
    """Epoch pass over an :class:`~repro.data.columnar.InteractionStore`.

    Walks extents in file order and yields zero-copy :class:`Batch`
    slices; each batch's ``domain`` comes from its extent's metadata
    (``index`` key, or -1 for unpartitioned extents).  ``split`` filters
    dataset extents by split name.

    Every ``release_every_rows`` rows the store's :meth:`release` hook
    runs, handing resident payload pages back to the OS — on a
    memory-mapped backend this is what keeps an epoch over a 1e8-row
    file at a flat RSS (~one release window, not the dataset).  The
    cadence default (4M rows ≈ 70 MB of mapped columns) amortizes the
    syscall to noise while bounding residency well under typical RAM.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    since_release = 0
    for extent in store.extents:
        if split is not None and extent.meta.get("split") != split:
            continue
        domain = int(extent.meta.get("index", -1))
        for start in range(extent.start, extent.stop, batch_size):
            stop = min(start + batch_size, extent.stop)
            yield Batch(
                store.columns["users"][start:stop],
                store.columns["items"][start:stop],
                store.columns["labels"][start:stop],
                domain,
            )
            since_release += stop - start
            if since_release >= release_every_rows:
                store.release()
                since_release = 0
