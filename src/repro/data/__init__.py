"""``repro.data`` — multi-domain datasets.

Schema types, the latent-factor click simulator, benchmark presets scaled
from the paper's Tables I-IV, splitting, batching and statistics.
"""

from .batching import Batch, full_batch, iter_minibatches, sample_batch
from .benchmarks import (
    BENCHMARK_BUILDERS,
    amazon6_sim,
    amazon13_sim,
    dataset_by_name,
    taobao_sim,
    taobao10_sim,
    taobao20_sim,
    taobao30_sim,
    taobao_online_sim,
)
from .io import load_interactions_csv, save_interactions_csv
from .schema import Domain, InteractionTable, MultiDomainDataset
from .splits import split_table, temporal_split
from .stats import overall_stats_row, overall_stats_table, per_domain_stats_table
from .synthetic import DomainSpec, SyntheticConfig, generate_dataset

__all__ = [
    "Batch",
    "full_batch",
    "sample_batch",
    "iter_minibatches",
    "InteractionTable",
    "Domain",
    "MultiDomainDataset",
    "split_table",
    "temporal_split",
    "load_interactions_csv",
    "save_interactions_csv",
    "DomainSpec",
    "SyntheticConfig",
    "generate_dataset",
    "amazon6_sim",
    "amazon13_sim",
    "taobao_sim",
    "taobao10_sim",
    "taobao20_sim",
    "taobao30_sim",
    "taobao_online_sim",
    "dataset_by_name",
    "BENCHMARK_BUILDERS",
    "overall_stats_row",
    "overall_stats_table",
    "per_domain_stats_table",
]
