"""Latent-factor synthetic MDR dataset generator.

The paper evaluates on Amazon review data and Taobao Cloud-Theme click logs,
which are not available offline.  This generator builds the closest synthetic
equivalent that exercises the same phenomena:

* **Shared structure across domains** — one global set of user/item latent
  factors (the "global feature storage" of Figure 2); domains draw
  overlapping user/item pools from it.
* **Domain conflict** — each domain ``d`` scores a pair through its own
  preference transform ``A_d = sqrt(1 - c^2) I + c Q_d`` (``Q_d`` a random
  rotation, ``c`` the *conflict strength*), and adds its own per-item
  popularity deviation (modelling the paper's "varied domain marketing
  tactics").  Both make the Bayes-optimal predictors of two domains
  disagree, so their gradients on shared parameters genuinely conflict —
  exactly the phenomenon of Figure 3.  The per-domain popularity component
  is low-dimensional (one scalar per item), so domain-specific parameters
  *can* recover it from realistic sample counts — which is what makes
  specific parameters worthwhile and what DR regularizes on sparse domains.
* **Data imbalance / sparsity** — per-domain sample counts follow the paper's
  published distributions (Tables II–IV) scaled down; sparse domains invite
  the overfitting DR targets.
* **Per-domain CTR ratios** — positives/negatives per Eq. 23, using the
  paper's published ratios.
* **Fixed vs trainable features** — Taobao-style datasets expose frozen noisy
  projections of the ground-truth factors (standing in for frozen GraphSage
  features); Amazon-style datasets expose ids only, so models train their own
  embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.seeding import spawn_rng
from . import sampling
from .schema import Domain, InteractionTable, MultiDomainDataset
from .splits import split_table

__all__ = ["DomainSpec", "SyntheticConfig", "generate_dataset"]


@dataclass(frozen=True)
class _GroundTruth:
    """The latent generative state shared by all domains of a dataset."""

    user_factors: np.ndarray
    item_factors: np.ndarray
    item_popularity: np.ndarray
    user_activity: np.ndarray


@dataclass(frozen=True)
class DomainSpec:
    """Target statistics for one generated domain."""

    name: str
    n_samples: int
    ctr_ratio: float

    def __post_init__(self):
        if self.n_samples < 10:
            raise ValueError(f"domain {self.name!r}: need >= 10 samples")
        if not 0.0 < self.ctr_ratio < 1.0:
            raise ValueError(
                f"domain {self.name!r}: CTR ratio must be in (0, 1) "
                f"as in the paper's benchmarks, got {self.ctr_ratio}"
            )


@dataclass(frozen=True)
class SyntheticConfig:
    """Full recipe for a synthetic multi-domain dataset."""

    name: str
    domains: tuple
    n_users: int = 2000
    n_items: int = 1000
    latent_dim: int = 12
    conflict: float = 0.6
    interaction_scale: float = 2.0
    popularity_strength: float = 0.5
    domain_popularity_strength: float = 0.5
    activity_strength: float = 0.2
    pool_user_frac: float = 0.35
    pool_item_frac: float = 0.35
    feature_mode: str = "trainable"   # "trainable" (Amazon) | "fixed" (Taobao)
    feature_dim: int = 16
    feature_noise: float = 0.25
    candidates: int = 20
    temperature: float = 0.3
    train_frac: float = 0.7
    val_frac: float = 0.15
    seed: int = 0

    def __post_init__(self):
        if not self.domains:
            raise ValueError("at least one domain spec is required")
        if not 0.0 <= self.conflict <= 1.0:
            raise ValueError("conflict strength must be in [0, 1]")
        if self.feature_mode not in ("trainable", "fixed"):
            raise ValueError(f"unknown feature mode {self.feature_mode!r}")


def generate_dataset(config):
    """Generate a :class:`MultiDomainDataset` from a recipe.

    Deterministic in ``config.seed``: every random draw uses a generator
    namespaced by the dataset name, the domain name and the draw's role.
    """
    latent_rng = spawn_rng(config.seed, config.name, "latent")
    scale = 1.0 / np.sqrt(config.latent_dim)
    user_factors = latent_rng.normal(0.0, scale, size=(config.n_users, config.latent_dim))
    item_factors = latent_rng.normal(0.0, scale, size=(config.n_items, config.latent_dim))
    # Domain-independent popularity/activity biases: the shared, easily
    # learnable part of the signal (the rotated interaction term carries the
    # conflict).
    item_popularity = latent_rng.normal(0.0, config.popularity_strength,
                                        size=config.n_items)
    user_activity = latent_rng.normal(0.0, config.activity_strength,
                                      size=config.n_users)

    ground_truth = _GroundTruth(
        user_factors, item_factors, item_popularity, user_activity
    )
    domains = []
    for index, spec in enumerate(config.domains):
        domains.append(_generate_domain(config, spec, index, ground_truth))

    user_features = item_features = None
    if config.feature_mode == "fixed":
        feat_rng = spawn_rng(config.seed, config.name, "features")
        user_features = _project_features(
            feat_rng,
            np.column_stack([user_factors, user_activity]),
            config.feature_dim,
            config.feature_noise,
        )
        item_features = _project_features(
            feat_rng,
            np.column_stack([item_factors, item_popularity]),
            config.feature_dim,
            config.feature_noise,
        )

    return MultiDomainDataset(
        config.name,
        domains,
        n_users=config.n_users,
        n_items=config.n_items,
        user_features=user_features,
        item_features=item_features,
    )


def _generate_domain(config, spec, index, truth):
    rng = spawn_rng(config.seed, config.name, "domain", spec.name)

    user_pool = _draw_pool(rng, config.n_users, config.pool_user_frac, spec.n_samples)
    item_pool = _draw_pool(rng, config.n_items, config.pool_item_frac, spec.n_samples)

    transform = _domain_transform(rng, config.latent_dim, config.conflict)
    projected_items = truth.item_factors @ transform.T
    bias = rng.normal(0.0, 0.1)
    # This domain's own item-popularity profile (promotions, theme fit, ...):
    # the learnable low-dimensional domain-specific signal.
    domain_popularity = rng.normal(
        0.0, config.domain_popularity_strength, size=config.n_items
    )

    def affinity(users, items):
        interaction = np.einsum(
            "ij,ij->i", truth.user_factors[users], projected_items[items]
        )
        return (
            config.interaction_scale * interaction
            + truth.item_popularity[items]
            + domain_popularity[items]
            + truth.user_activity[users]
            + bias
        )

    n_pos, n_neg = sampling.pos_neg_counts(spec.n_samples, spec.ctr_ratio)
    pos_users, pos_items = sampling.sample_positive_pairs(
        rng, user_pool, item_pool, affinity, n_pos,
        candidates=config.candidates, temperature=config.temperature,
    )
    # Pre-packed sorted keys skip both the Python set construction and
    # the per-candidate hashing inside negative sampling; the sampled
    # pairs are bitwise-identical either way.
    clicked = sampling.pack_pairs(pos_users, pos_items)
    neg_users, neg_items = sampling.sample_negative_pairs(
        rng, user_pool, item_pool, clicked, n_neg
    )

    table = InteractionTable.from_pairs(
        (pos_users, pos_items), (neg_users, neg_items)
    ).shuffled(rng)
    train, val, test = split_table(
        table, rng, train_frac=config.train_frac, val_frac=config.val_frac
    )
    return Domain(
        name=spec.name,
        index=index,
        train=train,
        val=val,
        test=test,
        user_pool=user_pool,
        item_pool=item_pool,
    )


def _draw_pool(rng, universe_size, frac, n_samples):
    """Draw a domain's user/item pool: a random subset of the global ids.

    Pool size scales with the domain's sample count (sparse domains touch
    fewer entities, as in the paper's Tables II-IV) but is bounded below so
    negative sampling always has room.
    """
    target = int(universe_size * frac)
    by_samples = max(30, n_samples // 4)
    size = max(30, min(universe_size, min(target, by_samples)))
    return rng.choice(universe_size, size=size, replace=False)


def _domain_transform(rng, dim, conflict):
    """Preference transform ``A_d``: identity blended with a random rotation.

    ``conflict = 0`` gives identical preferences in all domains; ``1`` gives
    unrelated preferences.  Intermediate values produce partially shared,
    partially conflicting structure — the regime MDR targets.
    """
    if conflict == 0.0:
        return np.eye(dim)
    gaussian = rng.normal(size=(dim, dim))
    rotation, _ = np.linalg.qr(gaussian)
    return np.sqrt(1.0 - conflict ** 2) * np.eye(dim) + conflict * rotation


def _project_features(rng, factors, feature_dim, noise):
    """Frozen noisy linear projection of latent factors (GraphSage stand-in)."""
    dim = factors.shape[1]
    projection = rng.normal(0.0, 1.0 / np.sqrt(dim), size=(dim, feature_dim))
    features = factors @ projection
    features += rng.normal(0.0, noise * features.std(), size=features.shape)
    return features
