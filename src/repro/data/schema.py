"""Core data structures for multi-domain recommendation.

Mirrors Definition III.1 of the paper: a dataset is a set of domains
``D^i = {U^i, V^i, T^i}`` where ``T^i`` holds user-item interactions with
binary click labels, and users/items may overlap across domains.  Tables are
column-oriented numpy arrays for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["InteractionTable", "Domain", "MultiDomainDataset"]


@dataclass(frozen=True)
class InteractionTable:
    """A column-oriented set of ``(user, item, label)`` interactions."""

    users: np.ndarray
    items: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        if not (len(self.users) == len(self.items) == len(self.labels)):
            raise ValueError("users, items and labels must have equal length")

    def __len__(self):
        return len(self.users)

    @property
    def num_positive(self):
        # Accumulate in float64 regardless of the column's storage dtype:
        # a float32 running sum goes inexact past 2^24 and would silently
        # miscount positives on 1e8-row columnar views.
        return int(self.labels.sum(dtype=np.float64))

    @property
    def num_negative(self):
        return len(self) - self.num_positive

    @property
    def ctr_ratio(self):
        """#positive / #negative, the paper's Eq. 23 (inf if no negatives)."""
        negatives = self.num_negative
        if negatives == 0:
            return float("inf")
        return self.num_positive / negatives

    def subset(self, indices):
        """Select rows by index array."""
        return InteractionTable(
            self.users[indices], self.items[indices], self.labels[indices]
        )

    def shuffled(self, rng):
        """Return a row-shuffled copy."""
        order = rng.permutation(len(self))
        return self.subset(order)

    @staticmethod
    def concatenate(tables):
        """Stack several tables into one."""
        tables = list(tables)
        if not tables:
            return InteractionTable(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        return InteractionTable(
            np.concatenate([t.users for t in tables]),
            np.concatenate([t.items for t in tables]),
            np.concatenate([t.labels for t in tables]),
        )

    @staticmethod
    def from_pairs(positive_pairs, negative_pairs):
        """Build a table from (user, item) pair arrays with implied labels."""
        pos_u, pos_i = positive_pairs
        neg_u, neg_i = negative_pairs
        users = np.concatenate([pos_u, neg_u]).astype(np.int64)
        items = np.concatenate([pos_i, neg_i]).astype(np.int64)
        labels = np.concatenate(
            [np.ones(len(pos_u)), np.zeros(len(neg_u))]
        )
        return InteractionTable(users, items, labels)


@dataclass
class Domain:
    """One recommendation domain with its train/val/test interactions."""

    name: str
    index: int
    train: InteractionTable
    val: InteractionTable
    test: InteractionTable
    user_pool: np.ndarray = field(default=None)
    item_pool: np.ndarray = field(default=None)

    @property
    def num_samples(self):
        return len(self.train) + len(self.val) + len(self.test)

    @property
    def ctr_ratio(self):
        total = InteractionTable.concatenate([self.train, self.val, self.test])
        return total.ctr_ratio


class MultiDomainDataset:
    """A named collection of domains plus global feature storage.

    ``user_features``/``item_features`` are fixed dense feature matrices
    (the Taobao setting, where GraphSage features are frozen); when ``None``
    the models learn embedding tables instead (the Amazon setting).
    """

    def __init__(self, name, domains, n_users, n_items,
                 user_features=None, item_features=None, store=None):
        self.name = name
        self.domains = list(domains)
        self.n_users = n_users
        self.n_items = n_items
        self.user_features = user_features
        self.item_features = item_features
        # Optional InteractionStore backend (repro.data.columnar).  When
        # set, every table is a zero-copy view over the store's columns;
        # the dataset object is just the domain-structured lens on it.
        self.store = store
        indices = [d.index for d in self.domains]
        if indices != list(range(len(self.domains))):
            raise ValueError("domain indices must be 0..n-1 in order")

    @property
    def backend(self):
        """Storage backend name: ``"legacy"`` or the store's backend."""
        return self.store.backend if self.store is not None else "legacy"

    def release(self):
        """Drop resident pages of a memory-mapped backend (else no-op)."""
        if self.store is not None:
            self.store.release()

    def close(self):
        """Close the backing store, invalidating its views (else no-op).

        Drops this dataset's domain tables first (they are views over the
        store's buffer); if a consumer still holds another view, the
        store's ``close`` raises ``BufferError`` instead of unmapping
        memory out from under it.
        """
        if self.store is not None:
            self.domains = []
            self.store.close()

    @property
    def n_domains(self):
        return len(self.domains)

    @property
    def has_fixed_features(self):
        return self.user_features is not None

    @property
    def feature_dims(self):
        """(user_feature_dim, item_feature_dim) for fixed-feature datasets."""
        if not self.has_fixed_features:
            raise ValueError(f"dataset {self.name!r} has no fixed features")
        return self.user_features.shape[1], self.item_features.shape[1]

    def domain(self, index):
        return self.domains[index]

    def __iter__(self):
        return iter(self.domains)

    def __len__(self):
        return len(self.domains)

    def total_interactions(self, split="train"):
        return sum(len(getattr(d, split)) for d in self.domains)

    def domain_sizes(self, split="train"):
        """Array of per-domain interaction counts."""
        return np.array([len(getattr(d, split)) for d in self.domains])

    def _active_ids(self, column):
        # Incremental per-domain union: peak memory is one domain's ids
        # plus the running unique set, not a full-size concatenated copy
        # of every interaction — the difference between fine and fatal at
        # 10k+ domains.
        active = np.empty(0, dtype=np.int64)
        for domain in self.domains:
            ids = np.concatenate([
                getattr(domain.train, column),
                getattr(domain.val, column),
                getattr(domain.test, column),
            ])
            active = np.union1d(active, ids)
        return active

    def active_users(self):
        """Number of distinct users appearing in any interaction."""
        return len(self._active_ids("users"))

    def active_items(self):
        """Number of distinct items appearing in any interaction."""
        return len(self._active_ids("items"))
