"""Runtime autodiff sanitizer — Layer 1 of the correctness tooling.

PR 1 made the training hot path fast with exactly the techniques that breed
silent autodiff bugs: zero-copy minibatch views, in-place state algebra
(``state_add_`` / ``state_interpolate_``) over raw parameter buffers, and
sparse embedding gradients.  A stale or aliased buffer does not crash — it
quietly corrupts the DN/DR outer-loop deltas that are the core of MAMDR.
This module provides the guard rails PyTorch uses for the same problem:

* **Version counters** — every :class:`~repro.nn.tensor.Tensor` carries a
  ``_version`` integer bumped on each in-place mutation of its buffer
  (optimizer steps, ``load_state_dict``, the in-place ops in
  ``repro.nn.state`` — including mutations through raw numpy *views* of a
  parameter, traced back to their owner via the registry below).  Under
  :func:`sanitize`, every graph node records its operands' versions at
  forward time and :meth:`Tensor.backward` re-checks them, so mutating a
  buffer saved for backward raises a :class:`VersionError` naming the op.

* **Anomaly mode** — under :func:`anomaly_mode`, every graph node records
  its creation stack and op name; the first op whose forward output or
  backward gradient contains NaN/Inf raises an :class:`AnomalyError`
  pinpointing that op and where it was created.

* **Graph diagnostics** — :func:`graph_census` counts live (retained) graph
  nodes by op, and :func:`densify_counts` tracks unexpected
  :class:`~repro.nn.sparse.SparseGrad` densifications (also surfaced
  through ``repro.utils.profiling`` as ``sparse.densify`` counters).

Both modes are **off by default** and near-zero-cost when disabled: the
engine consults a single module flag (``_ACTIVE`` in ``Tensor._make``, one
attribute check per backward node) before doing any sanitizer work.  This
module deliberately imports nothing from ``repro.nn`` so the engine can
import it without cycles.
"""

from __future__ import annotations

import contextlib
import gc
import traceback
import weakref
from collections import Counter

import numpy as np

__all__ = [
    "SanitizerError",
    "VersionError",
    "AnomalyError",
    "sanitize",
    "anomaly_mode",
    "enabled",
    "anomaly_enabled",
    "register_owner",
    "forget_owner",
    "rebind_owner",
    "notify_mutation",
    "graph_census",
    "densify_counts",
    "note_densify",
    "ReplayMismatchError",
    "replay_verify",
    "replay_verify_enabled",
    "replay_verify_strict",
]

# Module-level flags read directly (as attributes) by the engine's hot path.
# _ACTIVE is the single "any sanitizer feature on?" gate checked per node.
_VERSION_CHECKS = False
_ANOMALY = False
_ACTIVE = False
# Replay verification is deliberately NOT part of _ACTIVE: it checks the
# *compiled* executor, so it must leave compiled execution enabled.
_REPLAY_VERIFY = False
# Strict mode re-runs eagerly even on statically certified tapes (the
# analyzer's ``verify_mode == "static"``); it is the oracle the static
# certificate is tested against.
_REPLAY_VERIFY_STRICT = True


class SanitizerError(RuntimeError):
    """Base class for all sanitizer-detected failures."""


class VersionError(SanitizerError):
    """A buffer saved for backward was mutated before backward consumed it."""


class AnomalyError(SanitizerError):
    """An op produced NaN/Inf in its forward output or backward gradient."""


class ReplayMismatchError(SanitizerError):
    """A compiled tape replay diverged (bitwise) from eager execution."""


def enabled():
    """Whether version-counter checking (``sanitize``) is active."""
    return _VERSION_CHECKS


def anomaly_enabled():
    """Whether NaN/Inf localisation (``anomaly_mode``) is active."""
    return _ANOMALY


def replay_verify_enabled():
    """Whether compiled-replay bitwise verification is active."""
    return _REPLAY_VERIFY


def replay_verify_strict():
    """Whether verification re-runs eagerly even on certified tapes."""
    return _REPLAY_VERIFY and _REPLAY_VERIFY_STRICT


def _refresh_active():
    global _ACTIVE
    _ACTIVE = _VERSION_CHECKS or _ANOMALY


@contextlib.contextmanager
def replay_verify(on=True, strict=True):
    """Verify every compiled tape replay **bitwise** against eager within.

    Inside the context, each replayed training step is immediately re-run
    eagerly on the same inputs (with the dropout RNG streams rewound) and
    every primitive's forward buffer plus every leaf gradient is compared
    for exact binary equality; the first divergence raises
    :class:`ReplayMismatchError` naming the op.  Steps that were not
    compiled (trace steps, eager fallbacks) are unaffected.  Orthogonal to
    :func:`sanitize` / :func:`anomaly_mode`, which force eager execution.

    With ``strict=False``, tapes the static analyzer has certified
    (``tape.verify_mode == "static"``) skip the eager re-run — the
    certificate stands in for the bitwise check — while uncertified tapes
    still verify dynamically.  The default stays strict so existing users
    keep the unconditional oracle.
    """
    global _REPLAY_VERIFY, _REPLAY_VERIFY_STRICT
    previous = (_REPLAY_VERIFY, _REPLAY_VERIFY_STRICT)
    _REPLAY_VERIFY = bool(on)
    _REPLAY_VERIFY_STRICT = bool(strict)
    try:
        yield
    finally:
        _REPLAY_VERIFY, _REPLAY_VERIFY_STRICT = previous


@contextlib.contextmanager
def sanitize(on=True):
    """Enable version-counter checks (and the live-node census) within.

    Graphs built inside the context record operand versions; their
    ``backward()`` raises :class:`VersionError` if any saved buffer was
    mutated in place after the forward pass.
    """
    global _VERSION_CHECKS
    previous = _VERSION_CHECKS
    _VERSION_CHECKS = bool(on)
    _refresh_active()
    try:
        yield
    finally:
        _VERSION_CHECKS = previous
        _refresh_active()


@contextlib.contextmanager
def anomaly_mode(on=True):
    """Enable NaN/Inf localisation within the context.

    Every node created inside records its op name and creation stack; the
    first non-finite forward output raises immediately, and during
    ``backward()`` the first op producing a non-finite gradient raises,
    both naming the op and where it was created.
    """
    global _ANOMALY
    previous = _ANOMALY
    _ANOMALY = bool(on)
    _refresh_active()
    try:
        yield
    finally:
        _ANOMALY = previous
        _refresh_active()


# ----------------------------------------------------------------------
# Buffer-ownership registry.
#
# State-dict algebra operates on raw ``{name: ndarray}`` mappings that may
# be zero-copy views of live parameters (see ``core.param_space`` /
# ``core.negotiation``).  To bump the owning Tensor's version counter when
# such an array is mutated, we keep a map from ``id(buffer)`` to a weakref
# of the owning tensor.  Parameters register at construction and re-register
# whenever their ``data`` is rebound, so entering ``sanitize()`` works
# retroactively on already-built models.
# ----------------------------------------------------------------------

_OWNERS = {}


def register_owner(array, tensor):
    """Record ``tensor`` as the owner of buffer ``array``."""
    key = id(array)

    def _purge(_ref, _key=key):
        _OWNERS.pop(_key, None)

    _OWNERS[key] = weakref.ref(tensor, _purge)


def forget_owner(array):
    """Drop the registry entry for ``array`` (before its id can be reused)."""
    _OWNERS.pop(id(array), None)


def rebind_owner(tensor, old_array):
    """Re-register ``tensor`` after its ``data`` was rebound to a new buffer."""
    forget_owner(old_array)
    register_owner(tensor.data, tensor)


def _owner_of(array):
    """Find the registered owner of ``array`` or any base it is a view of."""
    node = array
    for _ in range(16):  # view chains are shallow; bound the walk
        if node is None:
            return None
        ref = _OWNERS.get(id(node))
        if ref is not None:
            owner = ref()
            if owner is not None:
                return owner
        node = getattr(node, "base", None)
    return None


def notify_mutation(array):
    """Bump the version of the tensor owning ``array`` (or a view of it).

    Called by the in-place state ops when the sanitizer is enabled; a
    mutation of an unregistered array (e.g. an owned clone) is a no-op.
    """
    owner = _owner_of(array)
    if owner is not None:
        owner._version += 1


# ----------------------------------------------------------------------
# Graph-node hooks (called from ``Tensor._make`` / ``Tensor.backward``
# only when ``_ACTIVE`` / a node's saved state says there is work to do).
# ----------------------------------------------------------------------

_LIVE_NODES = weakref.WeakValueDictionary()


def op_name(backward_fn):
    """Derive a readable op name from a backward closure's qualname.

    ``Tensor.__add__.<locals>.<lambda>`` -> ``Tensor.__add__``;
    ``embedding.<locals>.backward`` -> ``embedding``.
    """
    qualname = getattr(backward_fn, "__qualname__", None)
    if not qualname:
        return "<op>"
    return qualname.split(".<locals>", 1)[0]


def _capture_stack(skip=3, depth=10):
    """A compact creation stack for anomaly reports (innermost last)."""
    frames = traceback.extract_stack()[:-skip]
    return "".join(traceback.format_list(frames[-depth:]))


def on_node_created(out, parents, backward_fn):
    """Annotate a freshly created graph node with sanitizer state."""
    out._op = op_name(backward_fn)
    if _VERSION_CHECKS and out._backward is not None:
        # Saved-buffer versions: self (closures often capture the output,
        # e.g. exp/tanh/fused_dense) followed by each operand.
        out._saved_versions = (out._version,) + tuple(
            parent._version for parent in parents
        )
        _LIVE_NODES[id(out)] = out
    if _ANOMALY:
        out._stack = _capture_stack()
        if not np.all(np.isfinite(out.data)):
            raise AnomalyError(
                f"anomaly detected: op '{out._op}' produced NaN/Inf in its "
                f"forward output (shape {out.data.shape}); created at:\n"
                f"{out._stack}"
            )


def check_versions(node):
    """Verify none of a node's saved buffers was mutated since forward."""
    saved_self, saved_parents = node._saved_versions[0], node._saved_versions[1:]
    if node._version != saved_self:
        raise VersionError(
            f"output buffer of op '{node._op}' (saved for backward) was "
            f"modified by an in-place operation: version {node._version}, "
            f"expected {saved_self}"
        )
    for position, (parent, saved) in enumerate(
        zip(node._parents, saved_parents)
    ):
        if parent._version != saved:
            raise VersionError(
                f"one of the buffers needed by the backward of op "
                f"'{node._op}' was modified by an in-place operation: "
                f"operand {position} (shape {parent.shape}) is at version "
                f"{parent._version}, but version {saved} was saved during "
                f"the forward pass"
            )


def check_backward_grads(node, parent_grads):
    """Raise if a node's backward produced a non-finite gradient."""
    for position, grad in enumerate(parent_grads):
        if grad is None:
            continue
        # SparseGrad exposes its nonzero block as ``.values``; duck-type to
        # avoid importing repro.nn here.
        values = getattr(grad, "values", grad)
        if not np.all(np.isfinite(values)):
            where = (
                f"; created at:\n{node._stack}" if node._stack else ""
            )
            raise AnomalyError(
                f"anomaly detected: backward of op '{node._op}' produced "
                f"NaN/Inf in the gradient for operand {position}{where}"
            )


def graph_census(collect=True):
    """Count live (retained) graph nodes by op name.

    Only nodes created under :func:`sanitize` are tracked.  A nonempty
    census after a training step has finished indicates a leaked/retained
    graph (e.g. a loss tensor kept alive across steps).
    """
    if collect:
        gc.collect()
    census = Counter()
    for ref in list(_LIVE_NODES.valuerefs()):
        node = ref()
        if node is not None:
            census[node._op or "<leaf>"] += 1
    return dict(census)


# ----------------------------------------------------------------------
# Densification counters — always on (one Counter increment per densify,
# negligible next to the O(table) allocation it is counting).
# ----------------------------------------------------------------------

_DENSIFY = Counter()


def note_densify(site):
    """Record that a SparseGrad was materialized densely at ``site``."""
    _DENSIFY[site] += 1


def densify_counts(reset=False):
    """Per-site counts of SparseGrad densifications since the last reset."""
    counts = dict(_DENSIFY)
    if reset:
        _DENSIFY.clear()
    return counts
