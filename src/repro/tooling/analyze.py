"""Driver for the whole-program analyzers — ``python -m repro.tooling.analyze``.

Runs the two :mod:`repro.tooling.analyzer` front ends and reports through
the shared baseline machinery:

* ``tape`` — traces one training step for every model in the registry on
  a small synthetic multi-domain dataset, then statically verifies each
  compiled tape (shape/dtype abstract interpretation, buffer def-use and
  aliasing proofs, lifetime/buffer-reuse planning).  Models whose step
  legitimately bails out of compilation are recorded with the bail
  reason, not failed.
* ``effects`` — interprocedural determinism/effect audit over the
  parallel runtime (``repro/distributed`` + ``repro/online``), flagging
  paths by which the parallel entry points could depend on worker count
  or scheduling.

Exit codes: ``0`` clean or fully baselined, ``1`` new findings, ``2``
usage error.  CI runs this with ``--baseline analyzer_baseline.json`` and
uploads the ``--json`` report as an artifact.

Run::

    PYTHONPATH=src python -m repro.tooling.analyze
    PYTHONPATH=src python -m repro.tooling.analyze --frontend effects
    PYTHONPATH=src python -m repro.tooling.analyze \
        --baseline analyzer_baseline.json --json analyzer_report.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analyzer import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Baseline,
    Report,
    UsageError,
    audit_paths,
    certify,
)

__all__ = ["run_tape_frontend", "run_effects_frontend", "main"]

FRONTENDS = ("tape", "effects")

#: default audit perimeter for the effects front end.
EFFECT_PATHS = ("src/repro/distributed", "src/repro/online")


def _tape_dataset(seed=0):
    from ..data import DomainSpec, SyntheticConfig, generate_dataset

    specs = tuple(
        DomainSpec(f"C{i}", 80, 0.25 + 0.05 * i) for i in range(2)
    )
    return generate_dataset(SyntheticConfig(
        name="analyze", domains=specs, n_users=60, n_items=40,
        latent_dim=4, feature_mode="fixed", feature_dim=8, seed=seed,
    ))


def run_tape_frontend(report, models=None, seed=0):
    """Trace + statically certify one step per registry model.

    Returns ``{model: certificate}``.  Certification *findings* go into
    the report; a compile bail (no tape at all) is only a stat — eager
    execution needs no certificate.
    """
    from ..data import sample_batch
    from ..models import MODEL_REGISTRY, build_model
    from ..nn.compile import executor_for
    from ..nn.optim import make_optimizer
    from ..utils.seeding import spawn_rng

    names = sorted(models or MODEL_REGISTRY)
    unknown = set(names) - set(MODEL_REGISTRY)
    if unknown:
        raise UsageError(f"unknown model(s): {', '.join(sorted(unknown))}")
    dataset = _tape_dataset(seed)
    rng = spawn_rng(seed, "analyze", "batch")
    stats, certificates = {}, {}
    for name in names:
        model = build_model(name, dataset, seed=seed)
        optimizer = make_optimizer("adam", model.parameters(), 0.05)
        batch = sample_batch(dataset.domain(0).train, 0, 16, rng)
        tape = executor_for(model).tape_for(batch, optimizer)
        if tape is None:
            stats[name] = {"certified": False, "bail": "compile bail (eager step)"}
            continue
        certificate = certify(tape, name=f"tape:{name}/d0")
        certificates[name] = certificate
        report.extend(certificate.findings)
        entry = {
            "certified": certificate.certified,
            "n_records": certificate.n_records,
            "n_kernels": certificate.n_kernels,
            "n_backward": certificate.n_backward,
            "imprecise": certificate.imprecise,
        }
        if not certificate.certified:
            entry["bail"] = certificate.bail_reason
        if certificate.plan is not None:
            entry["arena_bytes"] = certificate.plan.arena_bytes
            entry["saved_bytes"] = certificate.plan.saved_bytes
        stats[name] = entry
    certified = sum(1 for s in stats.values() if s["certified"])
    report.note("tape", models=stats, certified=certified, total=len(names))
    return certificates


def run_effects_frontend(report, paths=EFFECT_PATHS):
    for path in paths:
        if not Path(path).exists():
            raise UsageError(f"no such file or directory: {path}")
    findings, stats = audit_paths(paths)
    report.extend(findings)
    report.note("effects", paths=list(map(str, paths)), **stats)
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.tooling.analyze",
        description="Whole-program static analysis: tape IR verification "
                    "and the determinism/effect audit.",
    )
    parser.add_argument(
        "--frontend", default=",".join(FRONTENDS),
        help=f"comma-separated front ends to run (default: all of "
             f"{', '.join(FRONTENDS)})",
    )
    parser.add_argument(
        "--paths", nargs="*", default=list(EFFECT_PATHS),
        help="directories for the effects audit "
             f"(default: {' '.join(EFFECT_PATHS)})",
    )
    parser.add_argument(
        "--models", default=None,
        help="comma-separated registry models for the tape front end "
             "(default: all)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable JSON report",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed findings baseline; fail only on new findings",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write the current findings as the new baseline and exit 0",
    )
    args = parser.parse_args(argv)

    try:
        frontends = [f.strip() for f in args.frontend.split(",") if f.strip()]
        unknown = set(frontends) - set(FRONTENDS)
        if unknown:
            raise UsageError(
                f"unknown front end(s): {', '.join(sorted(unknown))} "
                f"(expected: {', '.join(FRONTENDS)})"
            )
        models = (
            [m.strip() for m in args.models.split(",") if m.strip()]
            if args.models else None
        )
        baseline = Baseline.load(args.baseline) if args.baseline else None
        report = Report()
        if "tape" in frontends:
            run_tape_frontend(report, models=models, seed=args.seed)
        if "effects" in frontends:
            run_effects_frontend(report, paths=args.paths)
    except UsageError as error:
        print(f"repro.tooling.analyze: error: {error}", file=sys.stderr)
        return EXIT_USAGE

    new, known = report.finalize(baseline)
    if args.write_baseline:
        Baseline.from_findings(report.findings).save(args.write_baseline)
        print(
            f"repro.tooling.analyze: wrote baseline with "
            f"{len(report.findings)} finding(s) to {args.write_baseline}"
        )
        return EXIT_CLEAN
    if args.json:
        report.write_json(args.json, baseline)

    tape_stats = report.frontends.get("tape")
    if tape_stats:
        print(
            f"tape: {tape_stats['certified']}/{tape_stats['total']} model "
            "tapes statically certified"
        )
        for name, entry in sorted(tape_stats["models"].items()):
            status = "certified" if entry["certified"] else \
                f"NOT certified ({entry.get('bail', '?')})"
            saved = entry.get("saved_bytes")
            extra = f", arena reuse saves {saved} bytes" if saved else ""
            print(f"  {name}: {status}{extra}")
    effects_stats = report.frontends.get("effects")
    if effects_stats:
        print(
            f"effects: {effects_stats['functions']} functions audited "
            f"under {', '.join(effects_stats['paths'])}"
        )
    for finding in sorted(
        report.findings, key=lambda f: (f.path, f.line, f.rule)
    ):
        marker = "" if baseline is None or finding in baseline else " [NEW]"
        print(f"{finding.render()}{marker}")
    if baseline is not None:
        stale = baseline.stale_entries(report.findings)
        for entry in stale:
            print(
                f"note: baseline entry no longer matched: "
                f"{entry['path']} [{entry['frontend']}/{entry['rule']}]"
            )
    status = "FAILED" if new else "ok"
    suffix = f" ({len(known)} baselined)" if known else ""
    print(
        f"repro.tooling.analyze: {len(report.findings)} finding(s)"
        f"{suffix} — {status}"
    )
    return EXIT_FINDINGS if new else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
