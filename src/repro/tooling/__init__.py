"""Correctness tooling: runtime autodiff sanitizer + repo-invariant linter.

Two layers guard the fast paths introduced by the perf work (zero-copy
views, in-place state algebra, sparse embedding gradients):

* :mod:`repro.tooling.sanitizer` — tensor version counters checked in
  ``backward()``, :func:`anomaly_mode` NaN/Inf localisation, and graph
  diagnostics (live-node census, SparseGrad densification counters).
* :mod:`repro.tooling.lint` — a custom AST lint pass encoding repo
  invariants, run as ``python -m repro.tooling.lint src/`` (wired into CI).

See DESIGN.md §8 for the full write-up.
"""

from .sanitizer import (
    AnomalyError,
    ReplayMismatchError,
    SanitizerError,
    VersionError,
    anomaly_enabled,
    anomaly_mode,
    densify_counts,
    enabled,
    graph_census,
    replay_verify,
    replay_verify_enabled,
    sanitize,
)

__all__ = [
    "SanitizerError",
    "VersionError",
    "AnomalyError",
    "ReplayMismatchError",
    "sanitize",
    "anomaly_mode",
    "replay_verify",
    "replay_verify_enabled",
    "enabled",
    "anomaly_enabled",
    "graph_census",
    "densify_counts",
    "all_rules",
    "lint_paths",
    "lint_source",
]

# The lint entry points are imported lazily: eagerly importing ``.lint``
# here would double-import it under ``python -m repro.tooling.lint``.
_LINT_EXPORTS = ("all_rules", "lint_paths", "lint_source")


def __getattr__(name):
    if name in _LINT_EXPORTS:
        from . import lint
        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
