"""Correctness tooling: runtime sanitizer + whole-program static analysis.

Three layers guard the fast paths introduced by the perf work (zero-copy
views, in-place state algebra, sparse embedding gradients, compiled tape
replay):

* :mod:`repro.tooling.sanitizer` — tensor version counters checked in
  ``backward()``, :func:`anomaly_mode` NaN/Inf localisation, and graph
  diagnostics (live-node census, SparseGrad densification counters).
* :mod:`repro.tooling.analyzer` — the static-analysis framework: the
  tape IR verifier (abstract interpretation over compiled kernel tapes,
  aliasing proofs, buffer-reuse planning) and the determinism/effect
  auditor over the parallel runtime.  Driven by
  ``python -m repro.tooling.analyze``.
* :mod:`repro.tooling.lint` — the repo-invariant lint pass, rebuilt as
  rule plugins over the analyzer's shared project index; run as
  ``python -m repro.tooling.lint src/`` (wired into CI).

See DESIGN.md §8 (sanitizer/lint) and §13 (static analysis) for the full
write-ups.
"""

from .sanitizer import (
    AnomalyError,
    ReplayMismatchError,
    SanitizerError,
    VersionError,
    anomaly_enabled,
    anomaly_mode,
    densify_counts,
    enabled,
    graph_census,
    replay_verify,
    replay_verify_enabled,
    replay_verify_strict,
    sanitize,
)

__all__ = [
    "SanitizerError",
    "VersionError",
    "AnomalyError",
    "ReplayMismatchError",
    "sanitize",
    "anomaly_mode",
    "replay_verify",
    "replay_verify_enabled",
    "replay_verify_strict",
    "enabled",
    "anomaly_enabled",
    "graph_census",
    "densify_counts",
    "all_rules",
    "lint_paths",
    "lint_source",
    "Baseline",
    "Finding",
    "Report",
    "UsageError",
    "ProjectIndex",
    "TapeCertificate",
    "BufferPlan",
    "certify",
    "verify_tape",
    "audit",
    "audit_paths",
]

# The lint/analyzer entry points are imported lazily: eagerly importing
# ``.lint`` here would double-import it under ``python -m
# repro.tooling.lint``, and the analyzer is only needed by tooling users.
_LINT_EXPORTS = ("all_rules", "lint_paths", "lint_source")
_ANALYZER_EXPORTS = (
    "Baseline", "Finding", "Report", "UsageError", "ProjectIndex",
    "TapeCertificate", "BufferPlan", "certify", "verify_tape",
    "audit", "audit_paths",
)


def __getattr__(name):
    if name in _LINT_EXPORTS:
        from . import lint
        return getattr(lint, name)
    if name in _ANALYZER_EXPORTS:
        from . import analyzer
        return getattr(analyzer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
