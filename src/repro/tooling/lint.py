"""Repo-invariant AST lint pass — Layer 2 of the correctness tooling.

Generic linters cannot know this repo's invariants; these rules encode
them (stdlib ``ast`` only, no third-party dependencies):

``raw-random``
    No ``np.random.*`` / ``numpy.random`` usage outside
    ``repro/utils/seeding.py`` — all randomness flows through
    ``spawn_rng`` so every run is reproducible.
``dtype-drift``
    No float32/float16 ``astype``/``dtype=`` literals inside
    ``repro/nn/`` or ``repro/serving/`` — the engine is float64
    end-to-end; silent downcasts break the finite-difference gradchecks
    and the serving path's bit-identical parity with offline scoring.
``row-iteration``
    No per-row Python iteration over interaction columns
    (``.users``/``.items``/``.labels``/``.times``) inside ``repro/data/``
    outside ``io.py`` — row loops defeat the zero-copy columnar data
    plane at 1e8-row scale.
``data-mutation``
    No assignment or in-place mutation of ``<obj>.data`` outside the
    engine-internal files (``nn/optim.py``, ``nn/state.py``,
    ``nn/tensor.py``, ``nn/module.py``) — ad-hoc parameter mutation
    bypasses the sanitizer's version counters.
``dense-grad-materialization``
    No ``.to_dense()`` / ``.add_to_dense()`` / ``np.add.at`` outside the
    sanctioned sparse-path files — densifying an embedding-table gradient
    turns an O(batch) step into O(table).
``gradcheck-coverage``
    Every primitive registered in ``repro/nn/functional.py`` (a top-level
    function that calls ``Tensor._make``) must be referenced in
    ``tests/nn/test_gradcheck.py``.
``eager-inner-loop``
    No hand-rolled eager training step (``model.loss`` → ``backward`` →
    ``optimizer.step``) in the driver layers (``repro/core/``,
    ``repro/distributed/``) — steps must route through the compiled
    executor (:func:`repro.nn.compile.active_executor`) so tracing,
    replay verification and the vectorized engine see every step; the
    two sanctioned eager fallbacks carry explicit waivers.
``stale-waiver``
    Every ``# lint: allow[rule]`` comment must still suppress at least
    one violation; waivers that outlive the code they excused are
    reported with the exact line to delete (project runs only — single
    snippets via :func:`lint_source` are not checked).

A violation may be waived where the code is a sanctioned exception by
putting ``# lint: allow[rule-name]`` on the flagged line or the line
directly above it.

The pass runs on the shared :class:`repro.tooling.analyzer.ProjectIndex`
(one parse per file, reused by every rule and by the other analyzer
front ends); rules are plugins registered with :func:`register`.  Exit
codes follow the analyzer contract: ``0`` clean, ``1`` findings, ``2``
usage/IO error.

Run::

    PYTHONPATH=src python -m repro.tooling.lint src/
    PYTHONPATH=src python -m repro.tooling.lint --list-rules
    PYTHONPATH=src python -m repro.tooling.lint src/ --json report.json
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path

from .analyzer.framework import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Baseline,
    Finding,
    Report,
    UsageError,
)
from .analyzer.project import ProjectIndex, _posix

__all__ = [
    "Violation",
    "Rule",
    "register",
    "all_rules",
    "lint_source",
    "lint_paths",
    "main",
]

FRONTEND = "lint"

#: the exact comment syntax ``_waived`` honours; anything else (wrong
#: spacing, typo'd rule) never suppresses and is caught as stale.
_WAIVER_RE = re.compile(r"lint: allow\[([^\]\s]+)\]")


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self):
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_finding(self):
        return Finding(
            frontend=FRONTEND, rule=self.rule, path=self.path,
            message=self.message, line=self.line, col=self.col,
        )


def _dotted(node):
    """Flatten an ``ast.Attribute``/``ast.Name`` chain to ``a.b.c`` or None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base lint rule: per-file ``visit`` plus cross-file ``finalize``."""

    name = ""
    description = ""
    #: posix path suffixes where the rule is sanctioned (does not apply).
    allowed_suffixes = ()
    #: when non-empty, the rule only applies to paths containing one of
    #: these substrings (empty = applies everywhere).
    scopes = ()

    def applies_to(self, posix_path):
        if any(posix_path.endswith(suffix) for suffix in self.allowed_suffixes):
            return False
        if self.scopes and not any(s in posix_path for s in self.scopes):
            return False
        return True

    def visit(self, path, tree):
        """Return violations for one parsed file."""
        return []

    def finalize(self, files):
        """Return violations needing the whole file set ({path: tree})."""
        return []

    def _violation(self, path, node, message):
        return Violation(
            path=_posix(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
        )


#: plugin registry: rule classes in registration order.
RULE_REGISTRY = []


def register(rule_class):
    """Class decorator adding a rule to the default rule set."""
    RULE_REGISTRY.append(rule_class)
    return rule_class


@register
class RawRandomRule(Rule):
    name = "raw-random"
    description = (
        "np.random / numpy.random and the stdlib random module must only be "
        "used in repro/utils/seeding.py; derive generators via "
        "repro.utils.seeding.spawn_rng (fault injection included — a chaos "
        "run must replay from its plan seed alone)"
    )
    allowed_suffixes = ("repro/utils/seeding.py",)

    def visit(self, path, tree):
        violations = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted in ("np.random", "numpy.random"):
                    violations.append(self._violation(
                        path, node,
                        "raw numpy RNG access; route randomness through "
                        "repro.utils.seeding.spawn_rng",
                    ))
                elif dotted is not None and (
                    dotted == "random" or dotted.startswith("random.")
                ):
                    violations.append(self._violation(
                        path, node,
                        "stdlib random access; route randomness through "
                        "repro.utils.seeding.spawn_rng",
                    ))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        violations.append(self._violation(
                            path, node,
                            "import of the stdlib random module; route "
                            "randomness through repro.utils.seeding.spawn_rng",
                        ))
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "numpy.random" or module.startswith("numpy.random."):
                    violations.append(self._violation(
                        path, node,
                        f"import from {module!r}; route randomness through "
                        "repro.utils.seeding.spawn_rng",
                    ))
                elif module == "random" or module.startswith("random."):
                    violations.append(self._violation(
                        path, node,
                        "import from the stdlib random module; route "
                        "randomness through repro.utils.seeding.spawn_rng",
                    ))
        return violations


@register
class DtypeDriftRule(Rule):
    name = "dtype-drift"
    description = (
        "no float32/float16 astype()/dtype= literals in repro/nn, "
        "repro/serving, repro/online, repro/traffic or the columnar data "
        "plane — the engine is float64 end-to-end, and the bit-identical "
        "parity guarantees of the serving path, the continual pipeline "
        "and the multi-process predictor pool all die on any downcast; "
        "the columnar storage dtypes are declared once as np.dtype(...) "
        "constants in repro/data/columnar.py, everything else references "
        "those"
    )
    scopes = ("repro/nn/", "repro/serving/", "repro/online/",
              "repro/traffic/", "repro/data/columnar",
              "repro/data/databench")

    _BAD_DOTTED = frozenset({
        "np.float32", "np.float16", "np.single", "np.half",
        "numpy.float32", "numpy.float16", "numpy.single", "numpy.half",
    })
    _BAD_STRINGS = frozenset({"float32", "float16", "f4", "f2", "<f4", "<f2"})

    def _is_bad_dtype(self, node):
        dotted = _dotted(node)
        if dotted in self._BAD_DOTTED:
            return True
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in self._BAD_STRINGS
        )

    def visit(self, path, tree):
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            candidates = [
                keyword.value for keyword in node.keywords
                if keyword.arg == "dtype"
            ]
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
            ):
                candidates.append(node.args[0])
            for candidate in candidates:
                if self._is_bad_dtype(candidate):
                    violations.append(self._violation(
                        path, node,
                        "reduced-precision dtype literal in repro/nn; the "
                        "autodiff engine and its gradchecks are float64",
                    ))
        return violations


@register
class RowIterationRule(Rule):
    name = "row-iteration"
    description = (
        "no per-row Python iteration over interaction columns "
        "(.users/.items/.labels/.times) in repro/data outside io.py — a "
        "Python loop over a 1e8-row columnar view is a 1000x slowdown "
        "and defeats the zero-copy data plane; use vectorized numpy ops "
        "or packed-key membership (io.py's CSV row writer is the one "
        "sanctioned row loop)"
    )
    scopes = ("repro/data/",)
    allowed_suffixes = ("repro/data/io.py",)
    _COLUMNS = frozenset({"users", "items", "labels", "times"})
    #: iteration wrappers whose arguments are still row-wise traversals.
    _WRAPPERS = frozenset({"zip", "enumerate", "reversed", "iter"})

    def _is_column(self, node):
        return isinstance(node, ast.Attribute) and node.attr in self._COLUMNS

    def _iterates_columns(self, node):
        if self._is_column(node):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._WRAPPERS
        ):
            return any(self._iterates_columns(arg) for arg in node.args)
        return False

    def visit(self, path, tree):
        violations = []
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters = [generator.iter for generator in node.generators]
            else:
                continue
            for iterable in iters:
                if self._iterates_columns(iterable):
                    violations.append(self._violation(
                        path, node,
                        "per-row Python iteration over an interaction "
                        "column; vectorize (numpy reductions, searchsorted "
                        "membership, slice views) — row loops are only "
                        "sanctioned in repro/data/io.py",
                    ))
        return violations


@register
class DataMutationRule(Rule):
    name = "data-mutation"
    description = (
        "Tensor.data may only be assigned/mutated in the engine files "
        "(nn/optim.py, nn/state.py, nn/tensor.py, nn/module.py)"
    )
    allowed_suffixes = (
        "repro/nn/optim.py",
        "repro/nn/state.py",
        "repro/nn/tensor.py",
        "repro/nn/module.py",
    )

    @staticmethod
    def _targets_data(target):
        if isinstance(target, ast.Attribute) and target.attr == "data":
            return True
        if isinstance(target, ast.Subscript):
            return DataMutationRule._targets_data(target.value)
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(DataMutationRule._targets_data(t) for t in target.elts)
        return False

    def visit(self, path, tree):
        violations = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            if any(self._targets_data(target) for target in targets):
                violations.append(self._violation(
                    path, node,
                    "direct .data mutation outside the engine bypasses the "
                    "sanitizer's version counters; go through an optimizer, "
                    "load_state_dict, or the state ops",
                ))
        return violations


@register
class DenseMaterializationRule(Rule):
    name = "dense-grad-materialization"
    description = (
        "SparseGrad densification (.to_dense/.add_to_dense/np.add.at) is "
        "only sanctioned inside the sparse-path engine files"
    )
    allowed_suffixes = (
        "repro/nn/sparse.py",
        "repro/nn/tensor.py",
        "repro/nn/optim.py",
        "repro/nn/functional.py",
    )

    def visit(self, path, tree):
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in ("to_dense", "add_to_dense"):
                violations.append(self._violation(
                    path, node,
                    f".{func.attr}() materializes a full dense gradient "
                    "(O(table), not O(batch)); keep embedding grads sparse "
                    "or waive a sanctioned interop site explicitly",
                ))
            elif _dotted(func) in ("np.add.at", "numpy.add.at"):
                violations.append(self._violation(
                    path, node,
                    "np.add.at dense scatter outside the sanctioned sparse "
                    "fallback paths",
                ))
        return violations


@register
class EagerInnerLoopRule(Rule):
    name = "eager-inner-loop"
    description = (
        "hand-rolled eager training steps (model.loss → backward → "
        "optimizer.step) in repro/core, repro/distributed or repro/traffic "
        "must route through the compiled executor (repro.nn.compile) or "
        "carry an explicit waiver on the sanctioned eager fallback"
    )
    scopes = ("repro/core/", "repro/distributed/", "repro/traffic/")

    @staticmethod
    def _attr_calls(func_def, attr):
        return [
            node for node in ast.walk(func_def)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr
        ]

    def visit(self, path, tree):
        violations = []
        for func_def in ast.walk(tree):
            if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._attr_calls(func_def, "backward"):
                continue
            if not self._attr_calls(func_def, "step"):
                continue
            for loss_call in self._attr_calls(func_def, "loss"):
                violations.append(self._violation(
                    path, loss_call,
                    "eager inner training loop (loss → backward → "
                    "optimizer.step) bypasses the compiled executor; route "
                    "the step through repro.nn.compile (executor.step) or "
                    "waive the sanctioned eager fallback",
                ))
        return violations


@register
class GradcheckCoverageRule(Rule):
    name = "gradcheck-coverage"
    description = (
        "every primitive in repro/nn/functional.py (calls Tensor._make) "
        "must be referenced in tests/nn/test_gradcheck.py"
    )

    def __init__(self, gradcheck_tests=None):
        self.gradcheck_tests = gradcheck_tests

    @staticmethod
    def _calls_make(func_def):
        for node in ast.walk(func_def):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_make"
            ):
                return True
        return False

    @staticmethod
    def _locate_tests(functional_path):
        for ancestor in Path(functional_path).resolve().parents:
            candidate = ancestor / "tests" / "nn" / "test_gradcheck.py"
            if candidate.is_file():
                return candidate
        return None

    def finalize(self, files):
        functional = next(
            (
                (path, tree) for path, tree in files.items()
                if _posix(path).endswith("repro/nn/functional.py")
            ),
            None,
        )
        if functional is None:
            return []
        path, tree = functional
        primitives = [
            node for node in tree.body
            if isinstance(node, ast.FunctionDef) and self._calls_make(node)
        ]
        if not primitives:
            return []
        tests_path = self.gradcheck_tests or self._locate_tests(path)
        if tests_path is None:
            return [self._violation(
                path, tree,
                "cannot locate tests/nn/test_gradcheck.py to verify "
                "primitive coverage (pass --gradcheck-tests)",
            )]
        try:
            tests_tree = ast.parse(
                Path(tests_path).read_text(), filename=str(tests_path)
            )
        except (OSError, SyntaxError) as error:
            return [self._violation(
                path, tree, f"cannot parse gradcheck tests: {error}"
            )]
        referenced = set()
        for node in ast.walk(tests_tree):
            if isinstance(node, ast.Name):
                referenced.add(node.id)
            elif isinstance(node, ast.Attribute):
                referenced.add(node.attr)
        return [
            self._violation(
                path, primitive,
                f"primitive '{primitive.name}' registers a backward via "
                f"Tensor._make but is never referenced in {tests_path}; "
                "add a finite-difference gradcheck",
            )
            for primitive in primitives
            if primitive.name not in referenced
        ]


@register
class ThetaDictAccessRule(Rule):
    name = "theta-dict-access"
    description = (
        "per-domain delta storage is an implementation detail of "
        "repro/core/param_space.py; reaching into '.deltas' / '.theta_i' "
        "dicts elsewhere bypasses the DomainParamStore protocol "
        "(groups()/delta()/apply_delta()) and silently assumes the dense "
        "backend"
    )
    allowed_suffixes = ("repro/core/param_space.py",)
    _attrs = ("deltas", "theta_i")

    def visit(self, path, tree):
        # Method *calls* named .deltas() (e.g. a cache reporting its delta
        # tables) are someone else's API, not dict access — skip the
        # Attribute nodes serving as a Call's func.
        call_funcs = {
            id(node.func) for node in ast.walk(tree)
            if isinstance(node, ast.Call)
        }
        violations = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self._attrs
                and id(node) not in call_funcs
            ):
                violations.append(self._violation(
                    path, node,
                    f"direct '.{node.attr}' dict access outside "
                    "param_space.py; go through the DomainParamStore "
                    "protocol (groups()/delta()/apply_delta()/"
                    "materialize()) so clustered backends keep working",
                ))
        return violations


def all_rules(gradcheck_tests=None):
    """Instantiate the full registered rule set."""
    rules = []
    for rule_class in RULE_REGISTRY:
        if rule_class is GradcheckCoverageRule:
            rules.append(rule_class(gradcheck_tests=gradcheck_tests))
        else:
            rules.append(rule_class())
    return rules


#: rule names that are not Rule plugins but can appear in reports and be
#: selected/ignored: the index's parse failures and the waiver auditor.
BUILTIN_RULES = {
    "parse-error": "file does not parse; nothing else can be checked",
    "stale-waiver": (
        "a '# lint: allow[rule]' comment that suppresses no violation; "
        "delete the comment (or fix the rule name/spacing if it was "
        "meant to suppress one)"
    ),
}


def known_rule_names(gradcheck_tests=None):
    return {rule.name for rule in all_rules(gradcheck_tests)} | set(BUILTIN_RULES)


def _waived(violation, lines):
    tag = f"lint: allow[{violation.rule}]"
    for lineno in (violation.line, violation.line - 1):
        if 1 <= lineno <= len(lines) and tag in lines[lineno - 1]:
            return True
    return False


def _waiver_declarations(entry):
    """All ``(line, rule)`` waiver comments in one file.

    Tokenized, not grepped: only real ``#`` comments declare waivers, so
    docstrings *describing* the syntax (like this module's) don't count.
    """
    found = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(entry.source).readline)
        comments = [
            (token.start[0], token.string) for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - parsed ok
        return found
    for lineno, text in comments:
        for match in _WAIVER_RE.finditer(text):
            if "{" not in match.group(1):
                found.append((lineno, match.group(1)))
    return found


def _filter_waived(violations, index, used):
    """Drop waived violations, recording which waiver lines fired."""
    kept = []
    for violation in violations:
        entry = index.entries.get(violation.path)
        lines = entry.lines if entry is not None else ()
        tag = f"lint: allow[{violation.rule}]"
        waiving_line = None
        for lineno in (violation.line, violation.line - 1):
            if 1 <= lineno <= len(lines) and tag in lines[lineno - 1]:
                waiving_line = lineno
                break
        if waiving_line is None:
            kept.append(violation)
        else:
            used.add((violation.path, waiving_line, violation.rule))
    return kept


def _stale_waivers(index, used, active_rules, select):
    """Waiver comments that suppressed nothing in this run.

    Only waivers for rules that actually ran are judged — under
    ``--select`` a waiver for an unselected rule had no chance to fire.
    Waivers naming a rule that does not exist at all are always stale on a
    full run (they can never suppress anything).
    """
    stale = []
    for entry in index.entries.values():
        for lineno, rule in _waiver_declarations(entry):
            if select is not None and rule not in select:
                continue
            if select is None and rule not in active_rules \
                    and rule in known_rule_names():
                continue
            if (entry.posix, lineno, rule) in used:
                continue
            stale.append(Violation(
                path=entry.posix, line=lineno, col=0, rule="stale-waiver",
                message=(
                    f"waiver 'lint: allow[{rule}]' suppresses nothing; "
                    f"delete the comment on line {lineno}"
                ),
            ))
    return stale


def lint_source(source, path="fixture.py", rules=None):
    """Lint a source string (unit-test entry point; per-file rules only).

    Stale-waiver auditing is deliberately skipped here: a snippet has no
    project context, so an unused waiver in a fixture is not an error.
    """
    rules = rules if rules is not None else all_rules()
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    posix = _posix(path)
    violations = []
    for rule in rules:
        if rule.applies_to(posix):
            violations.extend(rule.visit(path, tree))
    return [v for v in violations if not _waived(v, lines)]


def _rules_for(select, ignore, gradcheck_tests):
    rules = all_rules(gradcheck_tests=gradcheck_tests)
    if select:
        rules = [rule for rule in rules if rule.name in select]
    if ignore:
        rules = [rule for rule in rules if rule.name not in ignore]
    return rules


def lint_paths(paths, select=None, ignore=None, gradcheck_tests=None,
               index=None):
    """Lint files/directories; returns (violations, files_checked).

    Builds (or reuses, via ``index``) a shared :class:`ProjectIndex` —
    one parse per file for every rule — then runs per-file rules, the
    cross-file ``finalize`` passes, waiver filtering, and the
    stale-waiver audit over the waivers the run could have used.
    """
    rules = _rules_for(select, ignore, gradcheck_tests)
    if index is None:
        index = ProjectIndex.build(paths)
    violations = [
        Violation(path=f.path, line=f.line or 1, col=f.col, rule=f.rule,
                  message=f.message)
        for f in index.parse_failures
    ]
    # Rules receive the real filesystem path (``finalize`` passes resolve
    # sibling files from it); the violations they emit carry the
    # ``_posix``-normalized path, matching the index keys.
    for entry in index.files():
        for rule in rules:
            if rule.applies_to(entry.posix):
                violations.extend(rule.visit(entry.path, entry.tree))
    files = {entry.path: entry.tree for entry in index.files()}
    for rule in rules:
        violations.extend(rule.finalize(files))

    used = set()
    violations = _filter_waived(violations, index, used)
    stale_active = "stale-waiver" not in (ignore or ()) and (
        select is None or "stale-waiver" in select
    )
    if stale_active:
        active_rules = {rule.name for rule in rules}
        stale = _stale_waivers(index, used, active_rules, select)
        violations.extend(_filter_waived(stale, index, set()))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations, len(index.entries)


def _parse_rule_set(raw, gradcheck_tests=None):
    if not raw:
        return None
    names = {name.strip() for name in raw.split(",") if name.strip()}
    unknown = names - known_rule_names(gradcheck_tests)
    if unknown:
        raise UsageError(
            f"unknown rule name(s): {', '.join(sorted(unknown))} "
            "(see --list-rules)"
        )
    return names


def _check_paths(paths):
    for raw in paths:
        if not Path(raw).exists():
            raise UsageError(f"no such file or directory: {raw}")


def _build_report(violations, files_checked, rules):
    report = Report()
    report.extend([v.to_finding() for v in violations])
    report.note(
        FRONTEND,
        files_checked=files_checked,
        rules=sorted(rule.name for rule in rules),
        violations=len(violations),
    )
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.tooling.lint",
        description="Repo-invariant AST lint pass for the MAMDR reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--gradcheck-tests", default=None,
        help="explicit path to tests/nn/test_gradcheck.py",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write a machine-readable JSON report",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed findings baseline; fail only on new findings",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        for name, description in sorted(BUILTIN_RULES.items()):
            print(f"{name}: {description}")
        return EXIT_CLEAN

    try:
        _check_paths(args.paths)
        select = _parse_rule_set(args.select, args.gradcheck_tests)
        ignore = _parse_rule_set(args.ignore, args.gradcheck_tests)
        baseline = Baseline.load(args.baseline) if args.baseline else None
        violations, files_checked = lint_paths(
            args.paths, select=select, ignore=ignore,
            gradcheck_tests=args.gradcheck_tests,
        )
    except UsageError as error:
        print(f"repro.tooling.lint: error: {error}", file=sys.stderr)
        return EXIT_USAGE

    rules = _rules_for(select, ignore, args.gradcheck_tests)
    report = _build_report(violations, files_checked, rules)
    if args.write_baseline:
        Baseline.from_findings(report.findings).save(args.write_baseline)
        print(
            f"repro.tooling.lint: wrote baseline with "
            f"{len(report.findings)} finding(s) to {args.write_baseline}"
        )
        return EXIT_CLEAN
    new, known = report.finalize(baseline)
    if args.json:
        report.write_json(args.json, baseline)

    for violation in violations:
        print(violation.render())
    stale = [v for v in violations if v.rule == "stale-waiver"]
    if stale:
        print("\nstale waivers — delete these comments:")
        for violation in stale:
            print(f"  {violation.path}:{violation.line}")
    status = "FAILED" if new else "ok"
    suffix = f" ({len(known)} baselined)" if known else ""
    print(
        f"repro.tooling.lint: {files_checked} files checked, "
        f"{len(violations)} violation(s){suffix} — {status}"
    )
    return EXIT_FINDINGS if new else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
