"""Repo-invariant AST lint pass — Layer 2 of the correctness tooling.

Generic linters cannot know this repo's invariants; these rules encode
them (stdlib ``ast`` only, no third-party dependencies):

``raw-random``
    No ``np.random.*`` / ``numpy.random`` usage outside
    ``repro/utils/seeding.py`` — all randomness flows through
    ``spawn_rng`` so every run is reproducible.
``dtype-drift``
    No float32/float16 ``astype``/``dtype=`` literals inside
    ``repro/nn/`` or ``repro/serving/`` — the engine is float64
    end-to-end; silent downcasts break the finite-difference gradchecks
    and the serving path's bit-identical parity with offline scoring.
``data-mutation``
    No assignment or in-place mutation of ``<obj>.data`` outside the
    engine-internal files (``nn/optim.py``, ``nn/state.py``,
    ``nn/tensor.py``, ``nn/module.py``) — ad-hoc parameter mutation
    bypasses the sanitizer's version counters.
``dense-grad-materialization``
    No ``.to_dense()`` / ``.add_to_dense()`` / ``np.add.at`` outside the
    sanctioned sparse-path files — densifying an embedding-table gradient
    turns an O(batch) step into O(table).
``gradcheck-coverage``
    Every primitive registered in ``repro/nn/functional.py`` (a top-level
    function that calls ``Tensor._make``) must be referenced in
    ``tests/nn/test_gradcheck.py``.
``eager-inner-loop``
    No hand-rolled eager training step (``model.loss`` → ``backward`` →
    ``optimizer.step``) in the driver layers (``repro/core/``,
    ``repro/distributed/``) — steps must route through the compiled
    executor (:func:`repro.nn.compile.active_executor`) so tracing,
    replay verification and the vectorized engine see every step; the
    two sanctioned eager fallbacks carry explicit waivers.

A violation may be waived where the code is a sanctioned exception by
putting ``# lint: allow[rule-name]`` on the flagged line or the line
directly above it.

Run::

    PYTHONPATH=src python -m repro.tooling.lint src/
    PYTHONPATH=src python -m repro.tooling.lint --list-rules
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Violation",
    "Rule",
    "all_rules",
    "lint_source",
    "lint_paths",
    "main",
]


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self):
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def _dotted(node):
    """Flatten an ``ast.Attribute``/``ast.Name`` chain to ``a.b.c`` or None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _posix(path):
    return str(path).replace("\\", "/")


class Rule:
    """Base lint rule: per-file ``visit`` plus cross-file ``finalize``."""

    name = ""
    description = ""
    #: posix path suffixes where the rule is sanctioned (does not apply).
    allowed_suffixes = ()
    #: when non-empty, the rule only applies to paths containing one of
    #: these substrings (empty = applies everywhere).
    scopes = ()

    def applies_to(self, posix_path):
        if any(posix_path.endswith(suffix) for suffix in self.allowed_suffixes):
            return False
        if self.scopes and not any(s in posix_path for s in self.scopes):
            return False
        return True

    def visit(self, path, tree):
        """Return violations for one parsed file."""
        return []

    def finalize(self, files):
        """Return violations needing the whole file set ({path: tree})."""
        return []

    def _violation(self, path, node, message):
        return Violation(
            path=_posix(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
        )


class RawRandomRule(Rule):
    name = "raw-random"
    description = (
        "np.random / numpy.random and the stdlib random module must only be "
        "used in repro/utils/seeding.py; derive generators via "
        "repro.utils.seeding.spawn_rng (fault injection included — a chaos "
        "run must replay from its plan seed alone)"
    )
    allowed_suffixes = ("repro/utils/seeding.py",)

    def visit(self, path, tree):
        violations = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted in ("np.random", "numpy.random"):
                    violations.append(self._violation(
                        path, node,
                        "raw numpy RNG access; route randomness through "
                        "repro.utils.seeding.spawn_rng",
                    ))
                elif dotted is not None and (
                    dotted == "random" or dotted.startswith("random.")
                ):
                    violations.append(self._violation(
                        path, node,
                        "stdlib random access; route randomness through "
                        "repro.utils.seeding.spawn_rng",
                    ))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        violations.append(self._violation(
                            path, node,
                            "import of the stdlib random module; route "
                            "randomness through repro.utils.seeding.spawn_rng",
                        ))
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "numpy.random" or module.startswith("numpy.random."):
                    violations.append(self._violation(
                        path, node,
                        f"import from {module!r}; route randomness through "
                        "repro.utils.seeding.spawn_rng",
                    ))
                elif module == "random" or module.startswith("random."):
                    violations.append(self._violation(
                        path, node,
                        "import from the stdlib random module; route "
                        "randomness through repro.utils.seeding.spawn_rng",
                    ))
        return violations


class DtypeDriftRule(Rule):
    name = "dtype-drift"
    description = (
        "no float32/float16 astype()/dtype= literals in repro/nn, "
        "repro/serving or repro/online — the engine is float64 end-to-end, "
        "and both the serving path's and the continual pipeline's "
        "bit-identical parity guarantees die on any downcast"
    )
    scopes = ("repro/nn/", "repro/serving/", "repro/online/")

    _BAD_DOTTED = frozenset({
        "np.float32", "np.float16", "np.single", "np.half",
        "numpy.float32", "numpy.float16", "numpy.single", "numpy.half",
    })
    _BAD_STRINGS = frozenset({"float32", "float16", "f4", "f2", "<f4", "<f2"})

    def _is_bad_dtype(self, node):
        dotted = _dotted(node)
        if dotted in self._BAD_DOTTED:
            return True
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in self._BAD_STRINGS
        )

    def visit(self, path, tree):
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            candidates = [
                keyword.value for keyword in node.keywords
                if keyword.arg == "dtype"
            ]
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
            ):
                candidates.append(node.args[0])
            for candidate in candidates:
                if self._is_bad_dtype(candidate):
                    violations.append(self._violation(
                        path, node,
                        "reduced-precision dtype literal in repro/nn; the "
                        "autodiff engine and its gradchecks are float64",
                    ))
        return violations


class DataMutationRule(Rule):
    name = "data-mutation"
    description = (
        "Tensor.data may only be assigned/mutated in the engine files "
        "(nn/optim.py, nn/state.py, nn/tensor.py, nn/module.py)"
    )
    allowed_suffixes = (
        "repro/nn/optim.py",
        "repro/nn/state.py",
        "repro/nn/tensor.py",
        "repro/nn/module.py",
    )

    @staticmethod
    def _targets_data(target):
        if isinstance(target, ast.Attribute) and target.attr == "data":
            return True
        if isinstance(target, ast.Subscript):
            return DataMutationRule._targets_data(target.value)
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(DataMutationRule._targets_data(t) for t in target.elts)
        return False

    def visit(self, path, tree):
        violations = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            if any(self._targets_data(target) for target in targets):
                violations.append(self._violation(
                    path, node,
                    "direct .data mutation outside the engine bypasses the "
                    "sanitizer's version counters; go through an optimizer, "
                    "load_state_dict, or the state ops",
                ))
        return violations


class DenseMaterializationRule(Rule):
    name = "dense-grad-materialization"
    description = (
        "SparseGrad densification (.to_dense/.add_to_dense/np.add.at) is "
        "only sanctioned inside the sparse-path engine files"
    )
    allowed_suffixes = (
        "repro/nn/sparse.py",
        "repro/nn/tensor.py",
        "repro/nn/optim.py",
        "repro/nn/functional.py",
    )

    def visit(self, path, tree):
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in ("to_dense", "add_to_dense"):
                violations.append(self._violation(
                    path, node,
                    f".{func.attr}() materializes a full dense gradient "
                    "(O(table), not O(batch)); keep embedding grads sparse "
                    "or waive a sanctioned interop site explicitly",
                ))
            elif _dotted(func) in ("np.add.at", "numpy.add.at"):
                violations.append(self._violation(
                    path, node,
                    "np.add.at dense scatter outside the sanctioned sparse "
                    "fallback paths",
                ))
        return violations


class GradcheckCoverageRule(Rule):
    name = "gradcheck-coverage"
    description = (
        "every primitive in repro/nn/functional.py (calls Tensor._make) "
        "must be referenced in tests/nn/test_gradcheck.py"
    )

    def __init__(self, gradcheck_tests=None):
        self.gradcheck_tests = gradcheck_tests

    @staticmethod
    def _calls_make(func_def):
        for node in ast.walk(func_def):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_make"
            ):
                return True
        return False

    @staticmethod
    def _locate_tests(functional_path):
        for ancestor in Path(functional_path).resolve().parents:
            candidate = ancestor / "tests" / "nn" / "test_gradcheck.py"
            if candidate.is_file():
                return candidate
        return None

    def finalize(self, files):
        functional = next(
            (
                (path, tree) for path, tree in files.items()
                if _posix(path).endswith("repro/nn/functional.py")
            ),
            None,
        )
        if functional is None:
            return []
        path, tree = functional
        primitives = [
            node for node in tree.body
            if isinstance(node, ast.FunctionDef) and self._calls_make(node)
        ]
        if not primitives:
            return []
        tests_path = self.gradcheck_tests or self._locate_tests(path)
        if tests_path is None:
            return [self._violation(
                path, tree,
                "cannot locate tests/nn/test_gradcheck.py to verify "
                "primitive coverage (pass --gradcheck-tests)",
            )]
        try:
            tests_tree = ast.parse(
                Path(tests_path).read_text(), filename=str(tests_path)
            )
        except (OSError, SyntaxError) as error:
            return [self._violation(
                path, tree, f"cannot parse gradcheck tests: {error}"
            )]
        referenced = set()
        for node in ast.walk(tests_tree):
            if isinstance(node, ast.Name):
                referenced.add(node.id)
            elif isinstance(node, ast.Attribute):
                referenced.add(node.attr)
        return [
            self._violation(
                path, primitive,
                f"primitive '{primitive.name}' registers a backward via "
                f"Tensor._make but is never referenced in {tests_path}; "
                "add a finite-difference gradcheck",
            )
            for primitive in primitives
            if primitive.name not in referenced
        ]


class EagerInnerLoopRule(Rule):
    name = "eager-inner-loop"
    description = (
        "hand-rolled eager training steps (model.loss → backward → "
        "optimizer.step) in repro/core or repro/distributed must route "
        "through the compiled executor (repro.nn.compile) or carry an "
        "explicit waiver on the sanctioned eager fallback"
    )
    scopes = ("repro/core/", "repro/distributed/")

    @staticmethod
    def _attr_calls(func_def, attr):
        return [
            node for node in ast.walk(func_def)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr
        ]

    def visit(self, path, tree):
        violations = []
        for func_def in ast.walk(tree):
            if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._attr_calls(func_def, "backward"):
                continue
            if not self._attr_calls(func_def, "step"):
                continue
            for loss_call in self._attr_calls(func_def, "loss"):
                violations.append(self._violation(
                    path, loss_call,
                    "eager inner training loop (loss → backward → "
                    "optimizer.step) bypasses the compiled executor; route "
                    "the step through repro.nn.compile (executor.step) or "
                    "waive the sanctioned eager fallback",
                ))
        return violations


def all_rules(gradcheck_tests=None):
    """Instantiate the full rule set."""
    return [
        RawRandomRule(),
        DtypeDriftRule(),
        DataMutationRule(),
        DenseMaterializationRule(),
        EagerInnerLoopRule(),
        GradcheckCoverageRule(gradcheck_tests=gradcheck_tests),
    ]


def _waived(violation, lines):
    tag = f"lint: allow[{violation.rule}]"
    for lineno in (violation.line, violation.line - 1):
        if 1 <= lineno <= len(lines) and tag in lines[lineno - 1]:
            return True
    return False


def _collect_files(paths):
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_source(source, path="fixture.py", rules=None):
    """Lint a source string (unit-test entry point; per-file rules only)."""
    rules = rules if rules is not None else all_rules()
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    posix = _posix(path)
    violations = []
    for rule in rules:
        if rule.applies_to(posix):
            violations.extend(rule.visit(path, tree))
    return [v for v in violations if not _waived(v, lines)]


def lint_paths(paths, select=None, gradcheck_tests=None):
    """Lint files/directories; returns (violations, files_checked)."""
    rules = all_rules(gradcheck_tests=gradcheck_tests)
    if select:
        rules = [rule for rule in rules if rule.name in select]
    violations = []
    parsed = {}
    sources = {}
    for path in _collect_files(paths):
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as error:
            violations.append(Violation(
                path=_posix(path), line=getattr(error, "lineno", 1) or 1,
                col=0, rule="parse-error", message=str(error),
            ))
            continue
        parsed[path] = tree
        sources[_posix(path)] = source.splitlines()
        posix = _posix(path)
        for rule in rules:
            if rule.applies_to(posix):
                violations.extend(rule.visit(path, tree))
    for rule in rules:
        violations.extend(rule.finalize(parsed))
    violations = [
        v for v in violations
        if not _waived(v, sources.get(v.path, ()))
    ]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations, len(parsed)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.tooling.lint",
        description="Repo-invariant AST lint pass for the MAMDR reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--gradcheck-tests", default=None,
        help="explicit path to tests/nn/test_gradcheck.py",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        return 0

    select = (
        {name.strip() for name in args.select.split(",") if name.strip()}
        if args.select else None
    )
    violations, files_checked = lint_paths(
        args.paths, select=select, gradcheck_tests=args.gradcheck_tests
    )
    for violation in violations:
        print(violation.render())
    status = "FAILED" if violations else "ok"
    print(
        f"repro.tooling.lint: {files_checked} files checked, "
        f"{len(violations)} violation(s) — {status}"
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
