"""Whole-program static analysis for the repro codebase.

Two front ends share one pass/report/baseline infrastructure
(:mod:`.framework`):

* the **tape IR verifier** (:mod:`.tape_verifier`) — abstract
  interpretation over compiled kernel tapes: shape/dtype lattice,
  buffer def-use and aliasing proofs, lifetime-based buffer-reuse
  planning.  A passing tape is *statically certified* and the executor
  may skip the bitwise eager re-verification on it.
* the **determinism/effect auditor** (:mod:`.effects`) — interprocedural
  AST effect inference over the parallel runtime flagging paths by
  which ``parallel_dn_epoch`` / ``parallel_dr_rounds`` results could
  depend on worker count or scheduling.

``python -m repro.tooling.analyze`` drives both against a committed
findings baseline.
"""

from __future__ import annotations

from .effects import audit, audit_paths
from .framework import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Baseline,
    Finding,
    Report,
    UsageError,
)
from .project import FileEntry, FunctionInfo, ProjectIndex
from .tape_verifier import (
    BufferPlan,
    TapeCertificate,
    certify,
    verify_tape,
)

__all__ = [
    "Baseline",
    "BufferPlan",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "FileEntry",
    "Finding",
    "FunctionInfo",
    "ProjectIndex",
    "Report",
    "TapeCertificate",
    "UsageError",
    "audit",
    "audit_paths",
    "certify",
    "verify_tape",
]
