"""Shape/dtype lattice and per-primitive transfer functions.

The tape verifier runs a forward abstract interpretation: every buffer is
mapped to an :class:`AbstractValue` — a (shape, dtype) pair where either
component may be ``TOP`` (statically unknown) — and each traced primitive
has a *transfer function* computing the output's abstract value from its
operands'.  The recorded output buffer is then checked against the
abstract result; any disagreement is a verification finding (a shape the
kernel cannot have produced, or a dtype drift away from the engine's
float64 contract).

The lattice is deliberately shallow: trace-time buffers are concrete, so
values start fully known and only *lose* precision through transfer
functions without an exact rule (``TOP`` propagates).  ``TOP`` compares
equal to anything — an unknown component can never produce a finding,
only reduced coverage (reported as ``imprecise`` per tape).

Transfer functions mirror the kernel table in ``repro.nn.compile``; the
kind names come from ``repro.nn._tracing``.  A kind without a transfer
function is itself a finding (``tape-unknown-op``): the verifier and the
kernel set must move in lockstep.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TOP", "AbstractValue", "TransferError", "TRANSFER", "transfer"]


class _Top:
    """Statically unknown shape or dtype; equal to everything."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "TOP"


TOP = _Top()


class TransferError(Exception):
    """The operand shapes/dtypes are inconsistent with the primitive."""


class AbstractValue:
    """One lattice element: shape and dtype, each concrete or TOP."""

    __slots__ = ("shape", "dtype")

    def __init__(self, shape, dtype):
        self.shape = shape if shape is TOP else tuple(shape)
        self.dtype = dtype if dtype is TOP else np.dtype(dtype)

    @classmethod
    def of(cls, array):
        return cls(array.shape, array.dtype)

    @classmethod
    def top(cls):
        return cls(TOP, TOP)

    def matches(self, array):
        """Whether a concrete buffer is admissible for this value."""
        if self.shape is not TOP and tuple(array.shape) != self.shape:
            return False
        if self.dtype is not TOP and np.dtype(array.dtype) != self.dtype:
            return False
        return True

    @property
    def imprecise(self):
        return self.shape is TOP or self.dtype is TOP

    def __repr__(self):
        return f"AbstractValue(shape={self.shape}, dtype={self.dtype})"


def _shapes(values):
    shapes = [v.shape for v in values]
    if any(s is TOP for s in shapes):
        return None
    return shapes


def _result_dtype(values):
    dtypes = [v.dtype for v in values]
    if any(d is TOP for d in dtypes):
        return TOP
    return np.result_type(*dtypes)


def _broadcast(values):
    shapes = _shapes(values)
    if shapes is None:
        return TOP
    try:
        return tuple(np.broadcast_shapes(*shapes))
    except ValueError as error:
        raise TransferError(f"operands do not broadcast: {error}") from None


def _binary(values, aux):
    return AbstractValue(_broadcast(values), _result_dtype(values))


def _div(values, aux):
    # True division promotes integer/bool operands to float64.
    shape = _broadcast(values)
    dtype = _result_dtype(values)
    if dtype is not TOP and dtype.kind in "bui":
        dtype = np.dtype(np.float64)
    return AbstractValue(shape, dtype)


def _unary_float(values, aux):
    # Elementwise float math: shape preserved, dtype promoted to float64
    # (the engine's only float dtype; integer inputs never reach these).
    value = values[0]
    dtype = TOP if value.dtype is TOP else np.result_type(value.dtype, np.float64)
    return AbstractValue(value.shape, dtype)


def _same(values, aux):
    return AbstractValue(values[0].shape, values[0].dtype)


def _pow(values, aux):
    value = values[0]
    if value.dtype is TOP:
        dtype = TOP
    else:
        dtype = np.result_type(value.dtype, np.min_scalar_type(aux["exponent"]))
    return AbstractValue(value.shape, dtype)


def _matmul(values, aux):
    a, b = values
    dtype = _result_dtype(values)
    if a.shape is TOP or b.shape is TOP:
        return AbstractValue(TOP, dtype)
    sa, sb = a.shape, b.shape
    if len(sa) < 2 or len(sb) < 2:
        # 1-D matmul has asymmetric prepend/append rules; stay imprecise
        # rather than encode them (the engine only emits >=2-D matmuls).
        return AbstractValue(TOP, dtype)
    if sa[-1] != sb[-2]:
        raise TransferError(
            f"matmul contraction mismatch: {sa} @ {sb}"
        )
    try:
        batch = np.broadcast_shapes(sa[:-2], sb[:-2])
    except ValueError as error:
        raise TransferError(f"matmul batch dims do not broadcast: {error}") from None
    return AbstractValue(tuple(batch) + (sa[-2], sb[-1]), dtype)


def _sum(values, aux):
    value = values[0]
    if value.shape is TOP:
        return AbstractValue(TOP, value.dtype)
    return AbstractValue(
        _reduce_shape(value.shape, aux["axis"], aux["keepdims"]), value.dtype
    )


def _reduce_shape(shape, axis, keepdims):
    ndim = len(shape)
    if axis is None:
        axes = set(range(ndim))
    else:
        axes = {axis} if np.isscalar(axis) else set(axis)
        axes = {a + ndim if a < 0 else a for a in axes}
        if any(a < 0 or a >= ndim for a in axes):
            raise TransferError(f"reduction axis out of range for shape {shape}")
    if keepdims:
        return tuple(1 if i in axes else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i not in axes)


def _reshape(values, aux):
    value = values[0]
    target = aux["shape"]
    if not isinstance(target, tuple):
        target = (target,) if np.isscalar(target) else tuple(target)
    if value.shape is TOP:
        return AbstractValue(TOP if -1 in target else target, value.dtype)
    size = int(np.prod(value.shape, dtype=np.int64))
    if -1 in target:
        known = int(np.prod([d for d in target if d != -1], dtype=np.int64))
        if known == 0 or size % known:
            raise TransferError(f"cannot reshape {value.shape} into {target}")
        target = tuple(size // known if d == -1 else d for d in target)
    if int(np.prod(target, dtype=np.int64)) != size:
        raise TransferError(f"cannot reshape {value.shape} into {target}")
    return AbstractValue(target, value.dtype)


def _transpose(values, aux):
    value = values[0]
    if value.shape is TOP:
        return AbstractValue(TOP, value.dtype)
    axes = aux["axes"]
    if axes is None:
        return AbstractValue(tuple(reversed(value.shape)), value.dtype)
    if sorted(a % len(value.shape) for a in axes) != list(range(len(value.shape))):
        raise TransferError(f"invalid transpose axes {axes} for {value.shape}")
    return AbstractValue(
        tuple(value.shape[a] for a in axes), value.dtype
    )


def _swapaxes(values, aux):
    value = values[0]
    if value.shape is TOP:
        return AbstractValue(TOP, value.dtype)
    a, b = aux["axes"]
    shape = list(value.shape)
    try:
        shape[a], shape[b] = shape[b], shape[a]
    except IndexError:
        raise TransferError(
            f"swapaxes({a}, {b}) out of range for {value.shape}"
        ) from None
    return AbstractValue(tuple(shape), value.dtype)


def _getitem(values, aux):
    value = values[0]
    if value.shape is TOP:
        return AbstractValue(TOP, value.dtype)
    # Evaluate the index against a stride-0 dummy: basic and advanced
    # indexing shape rules without touching (or allocating) real data.
    dummy = np.broadcast_to(np.zeros(1, dtype=np.bool_), value.shape)
    try:
        shape = dummy[aux["index"]].shape
    except (IndexError, TypeError, ValueError) as error:
        raise TransferError(f"index invalid for shape {value.shape}: {error}") from None
    return AbstractValue(shape, value.dtype)


def _concat(values, aux):
    shapes = _shapes(values)
    dtype = _result_dtype(values)
    if shapes is None:
        return AbstractValue(TOP, dtype)
    axis = aux["axis"] % len(shapes[0]) if shapes[0] else 0
    first = shapes[0]
    for shape in shapes[1:]:
        if len(shape) != len(first) or any(
            i != axis and shape[i] != first[i] for i in range(len(first))
        ):
            raise TransferError(f"concat shapes incompatible: {shapes}")
    out = list(first)
    out[axis] = sum(shape[axis] for shape in shapes)
    return AbstractValue(tuple(out), dtype)


def _stack(values, aux):
    shapes = _shapes(values)
    dtype = _result_dtype(values)
    if shapes is None:
        return AbstractValue(TOP, dtype)
    if any(shape != shapes[0] for shape in shapes):
        raise TransferError(f"stack shapes differ: {shapes}")
    axis = aux["axis"] % (len(shapes[0]) + 1)
    out = list(shapes[0])
    out.insert(axis, len(shapes))
    return AbstractValue(tuple(out), dtype)


def _embedding(values, aux):
    table = values[0]
    indices = aux["indices"]
    if not np.issubdtype(indices.dtype, np.integer):
        raise TransferError(f"embedding indices are {indices.dtype}, not integer")
    if table.shape is TOP:
        return AbstractValue(TOP, table.dtype)
    if len(table.shape) < 1:
        raise TransferError("embedding table is 0-d")
    return AbstractValue(
        tuple(indices.shape) + tuple(table.shape[1:]), table.dtype
    )


def _fused_dense(values, aux):
    x, w = values[0], values[1]
    dtype = _result_dtype(values)
    if x.shape is TOP or w.shape is TOP:
        return AbstractValue(TOP, dtype)
    if len(x.shape) != 2 or len(w.shape) != 2 or x.shape[1] != w.shape[0]:
        raise TransferError(f"fused_dense shapes invalid: {x.shape} @ {w.shape}")
    if len(values) == 3:
        bias = values[2]
        if bias.shape is not TOP and bias.shape not in ((w.shape[1],), (1,)):
            raise TransferError(
                f"fused_dense bias shape {bias.shape} does not broadcast "
                f"over output width {w.shape[1]}"
            )
    return AbstractValue((x.shape[0], w.shape[1]), dtype)


def _bce(values, aux):
    x, y = values[0], values[1]
    _broadcast([x, y])  # raises TransferError when incompatible
    # The loss is a scalar mean; the engine stores it as a 0-d buffer.
    return AbstractValue((), np.float64)


def _rng_mask(values, aux):
    return AbstractValue(aux["array"].shape, np.float64)


def _reduce_max(values, aux):
    source = values[0]
    if source.shape is TOP:
        return AbstractValue(TOP, source.dtype)
    return AbstractValue(
        _reduce_shape(source.shape, aux["axis"], True), source.dtype
    )


def _fixed_gather(values, aux):
    matrix, indices = aux["matrix"], aux["indices"]
    if not np.issubdtype(indices.dtype, np.integer):
        raise TransferError(f"fixed_gather indices are {indices.dtype}, not integer")
    return AbstractValue(
        tuple(indices.shape) + tuple(matrix.shape[1:]), matrix.dtype
    )


TRANSFER = {
    "add": _binary,
    "sub": _binary,
    "mul": _binary,
    "div": _div,
    "neg": _same,
    "pow": _pow,
    "matmul": _matmul,
    "exp": _unary_float,
    "log": _unary_float,
    "sqrt": _unary_float,
    "tanh": _unary_float,
    "sigmoid": _unary_float,
    "relu": _same,
    "softplus": _unary_float,
    "abs": _same,
    "leaky_relu": _unary_float,
    "sum": _sum,
    "reshape": _reshape,
    "transpose": _transpose,
    "swapaxes": _swapaxes,
    "getitem": _getitem,
    "concat": _concat,
    "stack": _stack,
    "embedding": _embedding,
    "fused_dense": _fused_dense,
    "bce": _bce,
    "rng_mask": _rng_mask,
    "reduce_max": _reduce_max,
    "fixed_gather": _fixed_gather,
}


def transfer(kind, values, aux):
    """Abstract result of primitive ``kind`` over operand ``values``.

    Raises ``KeyError`` for an unknown kind and :class:`TransferError` for
    operand values the primitive cannot accept.
    """
    return TRANSFER[kind](values, aux)
