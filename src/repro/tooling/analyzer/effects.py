"""Interprocedural determinism/effect auditor for the parallel runtime.

MAMDR's reproducibility claims (DN/DR replay, worker-count invariance)
are only as strong as the runtime's discipline: results must not depend
on wall-clock time, unseeded randomness, hash iteration order, process
scheduling or state smuggled across fork boundaries.  Today that
discipline is checked *dynamically* — run the cluster twice, compare
bits.  This pass checks it *statically*: an AST effect inference over
``repro/distributed/`` and ``repro/online/`` that infers, per function,
which of five effects it (or anything it calls) can perform:

``wall-clock``
    reads ``time.time``/``perf_counter``/``monotonic``/``datetime.now``
    — fine for telemetry, fatal if it feeds a result.
``unseeded-rng``
    draws from ``np.random``/stdlib ``random`` module state instead of
    a ``spawn_rng``-derived generator.
``iteration-order``
    iterates (or materializes via ``list``/``tuple``) a ``set`` —
    hash-order-dependent; ``sorted(...)`` is the sanctioned spelling.
``shared-state-mutation``
    mutates module-global state from inside a function — cross-call
    coupling that makes results depend on call scheduling.
``fork-unsafe-capture``
    ships a closure to a forked ``Process`` that captures an
    RNG constructed in the enclosing scope — parent and child silently
    share (copies of) one stream.

Effects propagate through the project call graph (fixpoint over
:meth:`ProjectIndex.resolve_call`), so the audit can answer the real
question: *by what path could* ``parallel_dn_epoch`` / ``parallel_dr_rounds``
*results depend on worker count or scheduling?*  Every effect site is a
:class:`Finding` (reviewed hits live in the committed baseline); any
path from an entry point to a nondeterminism-relevant effect
(``unseeded-rng``, ``iteration-order``, ``fork-unsafe-capture``) is
additionally flagged with its call chain.
"""

from __future__ import annotations

import ast

from .framework import Finding

__all__ = ["EFFECTS", "ENTRY_POINTS", "audit", "audit_paths"]

FRONTEND = "effects"

EFFECTS = (
    "wall-clock",
    "unseeded-rng",
    "iteration-order",
    "shared-state-mutation",
    "fork-unsafe-capture",
)

#: the functions whose worker-count/scheduling invariance the audit
#: exists to protect, and the effects that would break it.
ENTRY_POINTS = (
    ("repro.distributed.parallel", "parallel_dn_epoch"),
    ("repro.distributed.parallel", "parallel_dr_rounds"),
)
NONDETERMINISM = frozenset(
    {"unseeded-rng", "iteration-order", "fork-unsafe-capture"}
)

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
})

_MUTATORS = frozenset({
    "append", "add", "update", "setdefault", "extend", "insert",
    "remove", "discard", "pop", "popitem", "clear",
})


def _dotted(node):
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node):
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_rng_construction(node):
    """A call expression that builds (or is) module-state randomness."""
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func) or ""
    return (
        dotted.startswith("np.random.")
        or dotted.startswith("numpy.random.")
        or dotted in ("random.Random", "random.SystemRandom")
        or dotted.startswith("random.")
    )


class _FunctionScan:
    """Direct (intraprocedural) effects of one function body."""

    def __init__(self, info, module_globals=()):
        self.info = info
        self.module_global_names = module_globals
        self.sites = []          # (effect, lineno, message)
        self.local_names = set()
        self.set_names = set()   # locals assigned from set expressions
        self.rng_names = {}      # locals assigned from RNG constructions
        self.nested = {}         # name -> nested FunctionDef
        self._collect_bindings()
        self._scan()

    def _collect_bindings(self):
        node = self.info.node
        args = node.args
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.local_names.add(arg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            self.local_names.add(leaf.id)
                if len(sub.targets) == 1 and isinstance(
                    sub.targets[0], ast.Name
                ):
                    name = sub.targets[0].id
                    if _is_set_expr(sub.value):
                        self.set_names.add(name)
                    if _is_rng_construction(sub.value):
                        self.rng_names[name] = sub.lineno
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(sub.target, ast.Name):
                    self.local_names.add(sub.target.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for leaf in ast.walk(sub.target):
                    if isinstance(leaf, ast.Name):
                        self.local_names.add(leaf.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not node:
                    self.nested[sub.name] = sub
                    self.local_names.add(sub.name)
            elif isinstance(sub, ast.withitem) and sub.optional_vars:
                for leaf in ast.walk(sub.optional_vars):
                    if isinstance(leaf, ast.Name):
                        self.local_names.add(leaf.id)

    def _site(self, effect, node, message):
        self.sites.append((effect, getattr(node, "lineno", 0), message))

    def _iterates_set(self, expr):
        if _is_set_expr(expr):
            return "a set expression"
        if isinstance(expr, ast.Name) and expr.id in self.set_names:
            return f"the set {expr.id!r}"
        return None

    def _scan(self):
        node = self.info.node
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._scan_call(sub)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                what = self._iterates_set(sub.iter)
                if what:
                    self._site(
                        "iteration-order", sub,
                        f"for-loop iterates {what}; hash order is not a "
                        "stable order — sort first",
                    )
            elif isinstance(sub, ast.comprehension):
                what = self._iterates_set(sub.iter)
                if what:
                    self._site(
                        "iteration-order", sub.iter,
                        f"comprehension iterates {what}; hash order is not "
                        "a stable order — sort first",
                    )
            elif isinstance(sub, ast.Global):
                self._site(
                    "shared-state-mutation", sub,
                    "function rebinds module globals "
                    f"({', '.join(sub.names)}); results couple across "
                    "calls and processes",
                )

    def _scan_call(self, call):
        dotted = _dotted(call.func) or ""
        if dotted in _WALL_CLOCK:
            self._site(
                "wall-clock", call,
                f"reads the wall clock via {dotted}()",
            )
        elif (
            dotted.startswith("np.random.")
            or dotted.startswith("numpy.random.")
        ):
            self._site(
                "unseeded-rng", call,
                f"{dotted}() draws from numpy's global RNG state; derive "
                "a generator via repro.utils.seeding.spawn_rng",
            )
        elif dotted.startswith("random.") and dotted != "random.Random":
            self._site(
                "unseeded-rng", call,
                f"{dotted}() draws from the stdlib random module state; "
                "derive a generator via repro.utils.seeding.spawn_rng",
            )
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in ("list", "tuple")
            and len(call.args) == 1
        ):
            what = self._iterates_set(call.args[0])
            if what:
                self._site(
                    "iteration-order", call,
                    f"{call.func.id}() materializes {what} in hash order; "
                    "use sorted() for a stable order",
                )
        if isinstance(call.func, ast.Attribute):
            base = call.func.value
            if (
                call.func.attr in _MUTATORS
                and isinstance(base, ast.Name)
                and base.id not in self.local_names
                and base.id in self.module_global_names
            ):
                self._site(
                    "shared-state-mutation", call,
                    f"mutates module-global {base.id!r} via "
                    f".{call.func.attr}(); results couple across calls "
                    "and processes",
                )
        if (_dotted(call.func) or "").rpartition(".")[2] == "Process":
            self._scan_fork(call)

    def _scan_fork(self, call):
        target = next(
            (kw.value for kw in call.keywords if kw.arg == "target"), None
        )
        if not isinstance(target, ast.Name):
            return
        nested = self.nested.get(target.id)
        if nested is None:
            return
        bound = set()
        for sub in ast.walk(nested):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                bound.add(sub.id)
        args = nested.args
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            bound.add(arg.arg)
        for sub in ast.walk(nested):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id not in bound
                and sub.id in self.rng_names
            ):
                self._site(
                    "fork-unsafe-capture", call,
                    f"fork target {target.id!r} captures RNG {sub.id!r} "
                    f"(constructed at line {self.rng_names[sub.id]}) across "
                    "the fork boundary; pass a spawn_rng-derived seed "
                    "instead",
                )


def audit(index):
    """Run the effect audit over an indexed project.

    Returns ``(findings, stats)``.  ``stats`` summarizes the inferred
    per-entry-point effect sets (with witness chains) for the report.
    """
    findings = list(index.parse_failures)
    scans = {}
    for info in index.iter_functions():
        scans[(info.module, info.qualname)] = _FunctionScan(
            info, index.module_globals.get(info.module, ())
        )

    # Per-site findings.
    for (module, qualname), scan in scans.items():
        entry = scan.info.entry
        for effect, lineno, message in scan.sites:
            findings.append(Finding(
                frontend=FRONTEND, rule=effect, path=entry.posix,
                line=lineno, symbol=qualname, message=message,
            ))

    # Interprocedural propagation: effects[(m, q)] maps effect ->
    # witness, where witness is None (direct) or the callee key the
    # effect arrived through.
    effects = {
        key: {effect: None for effect, _, _ in scan.sites}
        for key, scan in scans.items()
    }
    callees = {}
    for key, scan in scans.items():
        seen = []
        for sub in ast.walk(scan.info.node):
            if isinstance(sub, ast.Call):
                target = index.resolve_call(scan.info, sub.func)
                if target is not None:
                    tkey = (target.module, target.qualname)
                    if tkey != key and tkey not in seen:
                        seen.append(tkey)
        callees[key] = seen

    changed = True
    while changed:
        changed = False
        for key, targets in callees.items():
            own = effects[key]
            for tkey in targets:
                for effect in effects.get(tkey, ()):
                    if effect not in own:
                        own[effect] = tkey
                        changed = True

    def chain(key, effect):
        names = [key[1]]
        seen = {key}
        via = effects[key][effect]
        while via is not None and via not in seen:
            names.append(via[1])
            seen.add(via)
            via = effects.get(via, {}).get(effect)
        return " -> ".join(names)

    stats = {"functions": len(scans), "entry_points": {}}
    for module, qualname in ENTRY_POINTS:
        key = (module, qualname)
        if key not in effects:
            continue
        summary = {
            effect: chain(key, effect)
            for effect in sorted(effects[key])
        }
        stats["entry_points"][f"{module}.{qualname}"] = summary
        info = scans[key].info
        for effect, witness in sorted(summary.items()):
            if effect not in NONDETERMINISM:
                continue
            findings.append(Finding(
                frontend=FRONTEND, rule="entrypoint-nondeterminism",
                path=info.entry.posix, line=info.node.lineno,
                symbol=qualname,
                message=f"results can depend on worker scheduling: "
                f"{effect} reachable via {witness}",
            ))
    return findings, stats


def audit_paths(paths):
    """Index ``paths`` and audit them; returns ``(findings, stats)``."""
    from .project import ProjectIndex

    return audit(ProjectIndex.build(paths))
