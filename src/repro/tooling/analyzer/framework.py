"""Shared pass/report/baseline infrastructure for the static analyzers.

Every front end — the tape IR verifier, the determinism/effect auditor,
and the rebuilt lint pass — emits :class:`Finding` objects and reports
them through the same machinery:

* **Findings** carry a content-derived *fingerprint* that is stable under
  line drift (the line number is excluded), so a committed baseline keeps
  matching after unrelated edits to the same file.
* **Baselines** are committed JSON files listing reviewed findings; a run
  fails only on findings *not* in the baseline, which is how a
  whole-program auditor with a handful of sanctioned hits (telemetry
  wall-clock reads, reviewed set iterations) can gate CI without freezing
  the codebase.
* **Reports** serialize a full run — per-front-end stats plus every
  finding and its baseline status — to machine-readable JSON for the CI
  artifact.

Exit-code contract (shared by ``repro.tooling.analyze`` and
``repro.tooling.lint``): ``0`` clean (or all findings baselined), ``1``
new findings, ``2`` usage/IO error.  :class:`UsageError` is what front
ends raise for the latter.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "UsageError",
    "Finding",
    "Baseline",
    "Report",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

REPORT_VERSION = 1
BASELINE_VERSION = 1


class UsageError(Exception):
    """A usage/IO error (bad path, unknown rule, unreadable baseline).

    Distinct from findings: drivers translate it to exit code 2 so CI can
    tell "the analyzer could not run" from "the analyzer found problems".
    """


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, front-end agnostic.

    ``path`` is a repo-relative posix path for AST front ends and a tape
    name (``tape:<model>/<signature>``) for the IR verifier; ``symbol`` is
    the enclosing function/op context.  The fingerprint hashes everything
    *except* the line/column, so baselines survive unrelated line drift.
    """

    frontend: str
    rule: str
    path: str
    message: str
    line: int = 0
    col: int = 0
    symbol: str = ""

    def fingerprint(self):
        payload = "\x1f".join(
            (self.frontend, self.rule, self.path, self.symbol, self.message)
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def render(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        context = f" ({self.symbol})" if self.symbol else ""
        return f"{where}: [{self.frontend}/{self.rule}]{context} {self.message}"

    def to_dict(self):
        record = asdict(self)
        record["fingerprint"] = self.fingerprint()
        return record

    @classmethod
    def from_dict(cls, record):
        known = {f: record[f] for f in (
            "frontend", "rule", "path", "message") if f in record}
        for optional in ("line", "col", "symbol"):
            if optional in record:
                known[optional] = record[optional]
        return cls(**known)


class Baseline:
    """A committed set of reviewed findings, matched by fingerprint.

    Fingerprints form a *set*: two byte-identical findings in one function
    (e.g. repeated ``perf_counter`` reads) share an entry, so the baseline
    stays small and review-friendly at the cost of not counting
    occurrences.  Entries keep the human-readable fields alongside the
    fingerprint so reviewers can audit the file without running the tool.
    """

    def __init__(self, entries=()):
        self.entries = list(entries)
        self._fingerprints = {e["fingerprint"] for e in self.entries}

    def __len__(self):
        return len(self._fingerprints)

    def __contains__(self, finding):
        return finding.fingerprint() in self._fingerprints

    def split(self, findings):
        """Partition ``findings`` into (new, baselined)."""
        new, known = [], []
        for finding in findings:
            (known if finding in self else new).append(finding)
        return new, known

    def stale_entries(self, findings):
        """Baseline entries no longer matched by any current finding."""
        live = {f.fingerprint() for f in findings}
        return [e for e in self.entries if e["fingerprint"] not in live]

    @classmethod
    def from_findings(cls, findings):
        entries, seen = [], set()
        for finding in sorted(
            findings, key=lambda f: (f.path, f.rule, f.symbol, f.message)
        ):
            fingerprint = finding.fingerprint()
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            record = finding.to_dict()
            # Line/col are informational in a baseline (excluded from the
            # fingerprint); keep them for the reviewer reading the file.
            entries.append(record)
        return cls(entries)

    @classmethod
    def load(cls, path):
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise UsageError(f"baseline file not found: {path}") from None
        except (OSError, json.JSONDecodeError) as error:
            raise UsageError(f"cannot read baseline {path}: {error}") from None
        entries = payload.get("entries")
        if not isinstance(entries, list) or any(
            "fingerprint" not in e for e in entries
        ):
            raise UsageError(f"malformed baseline file: {path}")
        return cls(entries)

    def save(self, path):
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro.tooling.analyzer",
            "entries": self.entries,
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@dataclass
class Report:
    """One analyzer run: findings plus per-front-end statistics."""

    findings: list = field(default_factory=list)
    frontends: dict = field(default_factory=dict)

    def extend(self, findings):
        self.findings.extend(findings)

    def note(self, frontend, **stats):
        self.frontends.setdefault(frontend, {}).update(stats)

    def finalize(self, baseline=None):
        """Apply ``baseline`` and return the (new, baselined) partition."""
        if baseline is None:
            return list(self.findings), []
        return baseline.split(self.findings)

    def to_dict(self, baseline=None):
        new, known = self.finalize(baseline)
        return {
            "version": REPORT_VERSION,
            "tool": "repro.tooling.analyzer",
            "frontends": self.frontends,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "new": len(new),
                "baselined": len(known),
            },
        }

    def write_json(self, path, baseline=None):
        Path(path).write_text(
            json.dumps(self.to_dict(baseline), indent=2, sort_keys=True) + "\n"
        )
