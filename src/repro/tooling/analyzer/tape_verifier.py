"""Static verification of compiled kernel tapes.

``repro.nn.compile`` proves replay correctness *dynamically*: under
``replay_verify`` every replay re-runs the step eagerly and compares
op-by-op, doubling (at least) the cost of every verified step.  This
module proves the same invariants *statically*, once per tape, by
analyzing the recorded schedules:

1. **Abstract interpretation** — a shape/dtype lattice
   (:mod:`.lattice`) is propagated through every forward kernel and
   checked against the recorded concrete buffers; any disagreement
   (a shape the kernel cannot produce, a dtype drifting off the
   engine's float64 contract) is a finding.
2. **Aliasing** — the forward schedule must be single-assignment over
   disjoint byte intervals: every written buffer has exactly one
   writer, no two written buffers overlap, and no kernel output
   overlaps a parameter/staging/constant root.  Together with reads
   resolving (through view-alias chains) to an earlier def or a root,
   this proves no kernel reads a cell after an in-place overwrite.
3. **Backward dataflow** — the declarative backward plan is simulated
   over gradient cells: every cell is read only after its def, the
   static first-write/accumulate flags are consistent, cell shapes
   agree with their node buffers, and every trainable leaf's cell is
   defined.
4. **Lifetime analysis** — def/last-use intervals over the forward
   schedule (minus the buffers pinned by backward reads) feed a
   linear-scan allocator that emits a :class:`BufferPlan`: an advisory
   slot assignment showing how much replay-arena memory buffer reuse
   would reclaim.

A tape with no findings is **certified** (:class:`TapeCertificate`,
``verify_mode == "static"``): the executor may skip the eager re-run
for it under ``replay_verify`` (strict mode and the dynamic oracle
remain available).  Verification failure never breaks training — an
uncertified tape simply stays on dynamic verification.

The verifier duck-types the tape (``_trace_records``,
``_forward_kinds``, ``_backward_plan``, …) and imports nothing from
``repro.nn`` except the cycle-free kind metadata in
``repro.nn._tracing``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...nn._tracing import AUX_KINDS, VIEW_KINDS
from .framework import Finding
from .lattice import TOP, AbstractValue, TransferError, transfer

try:  # numpy >= 2.0 moved byte_bounds out of the top-level namespace
    from numpy.lib.array_utils import byte_bounds
except ImportError:  # pragma: no cover - numpy < 2.0
    byte_bounds = np.byte_bounds

__all__ = ["BufferPlan", "TapeCertificate", "verify_tape", "certify"]

FRONTEND = "tape"

#: forward-buffer read sets of the fast backward kernels (everything a
#: recorded-closure step might read is pinned conservatively instead).
_FAST_BWD_READS = {
    "fused_dense": lambda rec: [rec.out.data, rec.parents[0].data,
                                rec.parents[1].data],
    "bce": lambda rec: [rec.aux["x"], rec.aux["y"]],
    "concat": lambda rec: [],
    "mul": lambda rec: [p.data for p in rec.parents],
    "embedding": lambda rec: [rec.aux["indices"]],
}

#: scratch buffers (recorded in aux) that a node's forward kernel writes
#: in addition to its output buffer.
_SCRATCH_WRITES = {
    "relu": ("mask",),
    "abs": ("sign",),
    "leaky_relu": ("scale",),
    "bce": ("per_sample", "weighted"),
}


@dataclass
class BufferPlan:
    """Advisory buffer-reuse plan from the lifetime analysis.

    ``assignments`` maps ephemeral buffers (label → arena slot); buffers
    sharing a slot have disjoint def/last-use intervals and identical
    shape+dtype, so rewiring their kernels to one allocation is safe.
    ``arena_bytes`` is what the forward arena would occupy under the
    plan (pinned buffers plus one allocation per slot) versus the
    ``total_bytes`` it occupies today.
    """

    n_buffers: int = 0
    n_pinned: int = 0
    n_ephemeral: int = 0
    n_slots: int = 0
    total_bytes: int = 0
    pinned_bytes: int = 0
    arena_bytes: int = 0
    assignments: list = field(default_factory=list)

    @property
    def saved_bytes(self):
        return self.total_bytes - self.arena_bytes

    def to_dict(self):
        return {
            "n_buffers": self.n_buffers,
            "n_pinned": self.n_pinned,
            "n_ephemeral": self.n_ephemeral,
            "n_slots": self.n_slots,
            "total_bytes": self.total_bytes,
            "pinned_bytes": self.pinned_bytes,
            "arena_bytes": self.arena_bytes,
            "saved_bytes": self.saved_bytes,
            "assignments": list(self.assignments),
        }


@dataclass
class TapeCertificate:
    """The outcome of statically verifying one tape."""

    certified: bool
    bail_reason: str = ""
    findings: list = field(default_factory=list)
    n_records: int = 0
    n_kernels: int = 0
    n_backward: int = 0
    imprecise: int = 0
    plan: BufferPlan = None

    def to_dict(self):
        return {
            "certified": self.certified,
            "bail_reason": self.bail_reason,
            "findings": [f.to_dict() for f in self.findings],
            "n_records": self.n_records,
            "n_kernels": self.n_kernels,
            "n_backward": self.n_backward,
            "imprecise": self.imprecise,
            "plan": self.plan.to_dict() if self.plan is not None else None,
        }


class _Op:
    """One record of the forward schedule, with its read/write buffers."""

    __slots__ = ("index", "kind", "record", "emitted", "writes", "reads")

    def __init__(self, index, kind, record, emitted, writes, reads):
        self.index = index
        self.kind = kind
        self.record = record
        self.emitted = emitted
        self.writes = writes
        self.reads = reads


def _node_writes(rec):
    writes = [rec.out.data]
    for key in _SCRATCH_WRITES.get(rec.kind, ()):
        arr = rec.aux.get(key)
        if isinstance(arr, np.ndarray) and not any(arr is w for w in writes):
            writes.append(arr)
    return writes


def _node_reads(rec):
    reads = [p.data for p in rec.parents]
    if rec.kind == "getitem" and isinstance(rec.aux.get("index"), np.ndarray):
        reads.append(rec.aux["index"])
    elif rec.kind == "embedding":
        reads.append(rec.aux["indices"])
    return reads


def _extract_ops(tape, name, findings):
    """The op stream, cross-checked against the emitted kernel kinds.

    Returns ``None`` (after recording a structure finding) when the
    record stream and the compiled kernel list disagree — the schedules
    cannot be trusted, so every downstream check is skipped.
    """
    ops = []
    kinds = list(tape._forward_kinds)
    ki = 0
    for index, rec in enumerate(tape._trace_records):
        if rec.out is None:
            if rec.kind not in AUX_KINDS:
                findings.append(_finding(
                    name, "tape-structure", index, rec.kind,
                    f"unknown auxiliary record kind {rec.kind!r}",
                ))
                return None
            emitted = True
            if rec.kind == "rng_mask":
                writes, reads = [rec.aux["array"]], []
            elif rec.kind == "reduce_max":
                writes = [rec.aux["array"]]
                reads = [rec.aux["source"].data]
            else:  # fixed_gather
                writes = [rec.aux["array"]]
                reads = [rec.aux["matrix"], rec.aux["indices"]]
        elif rec.kind in VIEW_KINDS and np.may_share_memory(
            rec.out.data, rec.parents[0].data
        ):
            # Alias node: the output is a live view of its parent; the
            # compiler emitted no kernel, replay does no work.
            emitted, writes, reads = False, [], []
        else:
            emitted = True
            writes, reads = _node_writes(rec), _node_reads(rec)
        if emitted:
            if ki >= len(kinds) or kinds[ki] != rec.kind:
                have = kinds[ki] if ki < len(kinds) else "<end>"
                findings.append(_finding(
                    name, "tape-structure", index, rec.kind,
                    f"record stream expects kernel {rec.kind!r} at position "
                    f"{ki}, compiled schedule has {have!r}",
                ))
                return None
            ki += 1
        ops.append(_Op(index, rec.kind, rec, emitted, writes, reads))
    if ki != len(kinds):
        findings.append(_finding(
            name, "tape-structure", len(ops), "",
            f"compiled schedule has {len(kinds) - ki} kernel(s) with no "
            "matching trace record",
        ))
        return None
    return ops


def _finding(name, rule, index, kind, message):
    symbol = f"op{index}:{kind}" if kind else f"op{index}"
    return Finding(
        frontend=FRONTEND, rule=rule, path=name, symbol=symbol,
        message=message, line=index,
    )


# ----------------------------------------------------------------------
# 1. Abstract interpretation (shape/dtype lattice)
# ----------------------------------------------------------------------

def _abstract_forward(ops, name, findings):
    """Propagate the lattice through the forward schedule; returns the
    number of ops whose abstract result was imprecise (TOP somewhere)."""
    values = {}
    imprecise = 0

    def value_of(arr):
        entry = values.get(id(arr))
        if entry is None:
            entry = values[id(arr)] = AbstractValue.of(arr)
        return entry

    for op in ops:
        rec = op.record
        if rec.out is None:
            out_buf = rec.aux["array"]
            operands = (
                [value_of(rec.aux["source"].data)]
                if rec.kind == "reduce_max" else []
            )
        else:
            out_buf = rec.out.data
            operands = [value_of(p.data) for p in rec.parents]
        try:
            result = transfer(rec.kind, operands, rec.aux)
        except KeyError:
            findings.append(_finding(
                name, "tape-unknown-op", op.index, rec.kind,
                f"no transfer function for primitive {rec.kind!r}; the "
                "verifier and the kernel table have diverged",
            ))
            values[id(out_buf)] = AbstractValue.of(out_buf)
            continue
        except TransferError as error:
            findings.append(_finding(
                name, "tape-transfer", op.index, rec.kind,
                f"operands are inconsistent with the primitive: {error}",
            ))
            values[id(out_buf)] = AbstractValue.of(out_buf)
            continue
        if result.shape is not TOP and tuple(out_buf.shape) != result.shape:
            findings.append(_finding(
                name, "tape-shape", op.index, rec.kind,
                f"recorded buffer shape {tuple(out_buf.shape)} disagrees "
                f"with the abstract result {result.shape}",
            ))
        if result.dtype is not TOP and out_buf.dtype != result.dtype:
            findings.append(_finding(
                name, "tape-dtype-drift", op.index, rec.kind,
                f"recorded buffer dtype {out_buf.dtype} disagrees with the "
                f"abstract result {result.dtype}",
            ))
        elif (
            np.issubdtype(out_buf.dtype, np.floating)
            and out_buf.dtype != np.float64
        ):
            findings.append(_finding(
                name, "tape-dtype-drift", op.index, rec.kind,
                f"float buffer is {out_buf.dtype}; the engine contract is "
                "float64 end-to-end",
            ))
        if result.imprecise:
            imprecise += 1
        # Continue from the recorded (concrete) value: it agrees with the
        # abstract result wherever that was precise, and restores full
        # precision after a TOP.
        values[id(out_buf)] = AbstractValue.of(out_buf)
    return imprecise


# ----------------------------------------------------------------------
# 2. Aliasing / single-assignment over byte intervals
# ----------------------------------------------------------------------

def _check_aliasing(ops, roots, name, findings):
    """Prove no kernel reads a cell after an in-place overwrite.

    Forward discipline: (a) every written buffer has exactly one writer,
    (b) written buffers occupy pairwise-disjoint byte intervals, also
    disjoint from every root (parameters, staged inputs, constants), and
    (c) every read resolves — through view-alias chains — to a root or
    to a buffer defined earlier in the schedule.  Under (a)+(b), the one
    def of a buffer is the only write its bytes ever see, so (c) means
    every read observes its def.

    Returns ``(defs, alias, arrays)`` for the lifetime analysis.
    """
    defs = {}      # id(arr) -> def op index
    arrays = {}    # id -> array (kept alive by the tape)
    alias = {}     # id(view arr) -> id of the buffer it aliases

    def resolve(arr_id):
        while arr_id in alias:
            arr_id = alias[arr_id]
        return arr_id

    root_ids = {}
    for label, arr in roots:
        arrays[id(arr)] = arr
        root_ids.setdefault(id(arr), label)

    for op in ops:
        rec = op.record
        if not op.emitted and rec.out is not None:
            arrays[id(rec.out.data)] = rec.out.data
            alias[id(rec.out.data)] = resolve(id(rec.parents[0].data))
            continue
        for arr in op.writes:
            arrays[id(arr)] = arr
            if id(arr) in defs:
                findings.append(_finding(
                    name, "tape-alias-overwrite", op.index, op.kind,
                    f"buffer (shape {tuple(arr.shape)}) already written by "
                    f"op {defs[id(arr)]}; a second in-place write would be "
                    "read-after-overwrite for every earlier consumer",
                ))
            elif id(arr) in root_ids:
                findings.append(_finding(
                    name, "tape-alias-overwrite", op.index, op.kind,
                    f"kernel writes a {root_ids[id(arr)]} buffer in place",
                ))
            else:
                defs[id(arr)] = op.index

    # Reads: resolve through alias chains; unclassified stable trace
    # buffers (plain constants) become roots for the interval check.
    for op in ops:
        if not op.emitted:
            continue
        for arr in op.reads:
            arrays.setdefault(id(arr), arr)
            rid = resolve(id(arr))
            if rid in defs:
                if defs[rid] > op.index:
                    findings.append(_finding(
                        name, "tape-alias-overwrite", op.index, op.kind,
                        "kernel reads a buffer whose defining write runs "
                        f"later (op {defs[rid]})",
                    ))
            elif rid not in root_ids:
                root_ids[rid] = "constant"

    intervals = []
    for arr_id, def_index in defs.items():
        arr = arrays[arr_id]
        if arr.size:
            lo, hi = byte_bounds(arr)
            intervals.append((lo, hi, f"op{def_index} output", def_index))
    for arr_id, label in root_ids.items():
        arr = arrays[arr_id]
        if arr.size and arr_id not in defs:
            lo, hi = byte_bounds(arr)
            intervals.append((lo, hi, label, None))
    intervals.sort(key=lambda entry: (entry[0], entry[1]))
    for prev, cur in zip(intervals, intervals[1:]):
        if prev[1] > cur[0]:
            # Two distinct allocations never overlap; an overlap means a
            # kernel output is a view into another live buffer.
            if prev[3] is None and cur[3] is None:
                continue  # two roots may legally alias (views of a table)
            findings.append(_finding(
                name, "tape-alias-overwrite",
                cur[3] if cur[3] is not None else prev[3], "",
                f"byte intervals of {prev[2]} and {cur[2]} overlap; an "
                "in-place write to one overwrites cells of the other",
            ))
    return defs, alias, arrays


# ----------------------------------------------------------------------
# 3. Backward cell dataflow
# ----------------------------------------------------------------------

def _check_backward(tape, name, findings):
    defined = {0}
    shapes = {0: tuple(np.shape(tape._loss_buf))}
    for pos, (rec, ci, targets) in enumerate(tape._backward_plan):
        where = f"bwd{pos}:{rec.kind}"
        if ci not in defined:
            findings.append(Finding(
                frontend=FRONTEND, rule="tape-backward-read-undef",
                path=name, symbol=where, line=pos,
                message=f"backward step reads gradient cell {ci} before "
                "any step defines it",
            ))
        elif shapes.get(ci) is not None and (
            tuple(rec.out.data.shape) != shapes[ci]
        ):
            findings.append(Finding(
                frontend=FRONTEND, rule="tape-backward-shape",
                path=name, symbol=where, line=pos,
                message=f"cell {ci} holds a gradient of shape {shapes[ci]} "
                f"but the op's output is {tuple(rec.out.data.shape)}",
            ))
        if ci >= tape._ncells:
            findings.append(Finding(
                frontend=FRONTEND, rule="tape-backward-read-undef",
                path=name, symbol=where, line=pos,
                message=f"cell index {ci} out of range ({tape._ncells})",
            ))
        for parent, target in zip(rec.parents, targets):
            if target is None:
                continue
            pci, first = target
            pshape = tuple(parent.data.shape)
            if pci >= tape._ncells:
                findings.append(Finding(
                    frontend=FRONTEND, rule="tape-backward-read-undef",
                    path=name, symbol=where, line=pos,
                    message=f"target cell {pci} out of range "
                    f"({tape._ncells})",
                ))
                continue
            if first:
                if pci in defined:
                    findings.append(Finding(
                        frontend=FRONTEND, rule="tape-backward-first-write",
                        path=name, symbol=where, line=pos,
                        message=f"cell {pci} is flagged first-write but an "
                        "earlier step already defined it; the assignment "
                        "would drop an accumulated gradient",
                    ))
                defined.add(pci)
                shapes[pci] = pshape
            else:
                if pci not in defined:
                    findings.append(Finding(
                        frontend=FRONTEND, rule="tape-backward-first-write",
                        path=name, symbol=where, line=pos,
                        message=f"cell {pci} is flagged accumulate but no "
                        "earlier step defined it",
                    ))
                    defined.add(pci)
                    shapes[pci] = pshape
                elif shapes.get(pci) != pshape:
                    findings.append(Finding(
                        frontend=FRONTEND, rule="tape-backward-shape",
                        path=name, symbol=where, line=pos,
                        message=f"accumulating a {pshape} gradient into "
                        f"cell {pci} holding {shapes[pci]}",
                    ))
    for leaf, ci in tape._leaf_cells:
        if ci not in defined:
            findings.append(Finding(
                frontend=FRONTEND, rule="tape-backward-leaf",
                path=name, symbol=f"leaf-cell{ci}",
                message=f"trainable leaf (shape {tuple(leaf.data.shape)}) "
                f"reads cell {ci}, which no backward step defines",
            ))
        elif shapes.get(ci) != tuple(leaf.data.shape):
            findings.append(Finding(
                frontend=FRONTEND, rule="tape-backward-shape",
                path=name, symbol=f"leaf-cell{ci}",
                message=f"leaf of shape {tuple(leaf.data.shape)} reads cell "
                f"{ci} holding a {shapes.get(ci)} gradient",
            ))


# ----------------------------------------------------------------------
# 4. Lifetime analysis → buffer-reuse plan
# ----------------------------------------------------------------------

def _backward_pins(tape, alias):
    """Ids of forward buffers the backward schedule reads.

    Fast kernels have statically known read sets; recorded-closure steps
    conservatively pin their output, parents and every aux array (the
    closure may have captured any of them).
    """
    def resolve(arr_id):
        while arr_id in alias:
            arr_id = alias[arr_id]
        return arr_id

    fast_flags = getattr(tape, "_backward_fast", None)
    pins = set()
    for pos, (rec, ci, targets) in enumerate(tape._backward_plan):
        fast = bool(fast_flags[pos]) if fast_flags else False
        reader = _FAST_BWD_READS.get(rec.kind) if fast else None
        if reader is not None:
            arrays = reader(rec)
        else:
            arrays = [rec.out.data]
            arrays.extend(p.data for p in rec.parents)
            arrays.extend(
                v for v in rec.aux.values() if isinstance(v, np.ndarray)
            )
        pins.update(resolve(id(arr)) for arr in arrays)
    return pins


def _buffer_plan(tape, ops, defs, alias, arrays):
    def resolve(arr_id):
        while arr_id in alias:
            arr_id = alias[arr_id]
        return arr_id

    last_use = dict(defs)
    for op in ops:
        if not op.emitted:
            continue
        for arr in op.reads:
            rid = resolve(id(arr))
            if rid in defs:
                last_use[rid] = max(last_use[rid], op.index)
    pins = _backward_pins(tape, alias)

    plan = BufferPlan(n_buffers=len(defs))
    plan.total_bytes = sum(arrays[arr_id].nbytes for arr_id in defs)
    ephemeral = []
    for arr_id, def_index in sorted(defs.items(), key=lambda kv: kv[1]):
        if arr_id in pins:
            plan.n_pinned += 1
            plan.pinned_bytes += arrays[arr_id].nbytes
        else:
            ephemeral.append((arr_id, def_index, last_use[arr_id]))
    plan.n_ephemeral = len(ephemeral)

    # Linear scan: same-shape+dtype buffers with disjoint live ranges
    # share one arena slot.
    slots = []  # per slot: [key, free_from, nbytes]
    for arr_id, def_index, last in ephemeral:
        arr = arrays[arr_id]
        key = (arr.dtype.str, tuple(arr.shape))
        slot_id = next(
            (i for i, slot in enumerate(slots)
             if slot[0] == key and slot[1] <= def_index),
            None,
        )
        if slot_id is None:
            slot_id = len(slots)
            slots.append([key, last + 1, arr.nbytes])
        else:
            slots[slot_id][1] = last + 1
        plan.assignments.append(
            [f"op{def_index}:{ops[def_index].kind}", slot_id]
        )
    plan.n_slots = len(slots)
    plan.arena_bytes = plan.pinned_bytes + sum(slot[2] for slot in slots)
    return plan


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def verify_tape(tape, name="tape"):
    """Run every static check over one compiled tape.

    Returns ``(findings, stats, plan)``; ``plan`` is ``None`` when the
    structure check failed (the schedules cannot be trusted).
    """
    findings = []
    stats = {
        "n_records": len(tape._trace_records),
        "n_kernels": len(tape._forward_kinds),
        "n_backward": len(tape._backward_plan),
        "imprecise": 0,
    }
    ops = _extract_ops(tape, name, findings)
    if ops is None:
        return findings, stats, None
    stats["imprecise"] = _abstract_forward(ops, name, findings)

    roots = [("parameter", param.data) for param, _ in tape._param_slots]
    roots.extend((f"staging[{field}]", arr) for field, arr in tape._staging)
    defs, alias, arrays = _check_aliasing(ops, roots, name, findings)
    _check_backward(tape, name, findings)
    plan = _buffer_plan(tape, ops, defs, alias, arrays)
    return findings, stats, plan


def certify(tape, name="tape"):
    """Verify ``tape`` and mint its :class:`TapeCertificate`.

    Never raises: any internal verifier error demotes the tape to
    dynamic verification with the exception as the bail reason.
    """
    try:
        findings, stats, plan = verify_tape(tape, name)
    except Exception as error:  # defensive: certification must not break training
        return TapeCertificate(
            certified=False,
            bail_reason=f"verifier error: {type(error).__name__}: {error}",
        )
    bail = ""
    if findings:
        bail = f"{len(findings)} static finding(s): " + "; ".join(
            sorted({f.rule for f in findings})
        )
    return TapeCertificate(
        certified=not findings,
        bail_reason=bail,
        findings=findings,
        n_records=stats["n_records"],
        n_kernels=stats["n_kernels"],
        n_backward=stats["n_backward"],
        imprecise=stats["imprecise"],
        plan=plan,
    )
