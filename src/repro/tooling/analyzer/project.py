"""Project index: one parse per file, shared by every AST front end.

The pre-rebuild linter re-parsed and re-walked files per rule and had no
notion of the *program* — only of files.  The index gives passes a shared
view:

* every ``.py`` file parsed exactly once (``FileEntry`` keeps the tree
  *and* the source lines, so waiver scanning needs no second read);
* a module table keyed by dotted module name (derived from the path's
  ``repro/...`` suffix) with each module's top-level functions, classes,
  methods and assignments;
* import resolution between indexed modules (``from .x import y``,
  ``from repro.a import b``, ``import repro.a.b as c``), which is what
  lets the effect auditor chase a call from ``parallel.py`` into
  ``worker.py`` without guessing.

The index is deliberately syntactic — no execution, no type inference.
Name resolution is best-effort: a miss returns ``None`` and the caller
stays conservative.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .framework import Finding

__all__ = ["FileEntry", "FunctionInfo", "ProjectIndex"]


def _posix(path):
    text = str(path).replace("\\", "/")
    # Store repo-relative paths so finding fingerprints (and therefore
    # the committed baseline) do not depend on the invocation directory.
    anchor = text.find("src/repro/")
    if anchor > 0:
        text = text[anchor:]
    return text


def module_name_for(posix_path):
    """Dotted module name from a path (``.../repro/online/gate.py`` →
    ``repro.online.gate``); falls back to the stem outside ``repro/``."""
    parts = posix_path.split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    name = ".".join(parts)
    if name.endswith(".py"):
        name = name[:-3]
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


class FunctionInfo:
    """One function or method: its AST, qualname and enclosing module."""

    __slots__ = ("module", "qualname", "node", "entry")

    def __init__(self, module, qualname, node, entry):
        self.module = module
        self.qualname = qualname
        self.node = node
        self.entry = entry

    @property
    def name(self):
        return self.node.name

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.module}.{self.qualname})"


class FileEntry:
    """One parsed source file."""

    __slots__ = ("path", "posix", "module", "tree", "lines", "source")

    def __init__(self, path, source, tree):
        self.path = path
        self.posix = _posix(path)
        self.module = module_name_for(self.posix)
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree


class ProjectIndex:
    """Parsed files + cross-file symbol table for a set of paths."""

    def __init__(self):
        self.entries = {}        # posix path -> FileEntry
        self.modules = {}        # dotted module name -> FileEntry
        self.functions = {}      # (module, qualname) -> FunctionInfo
        self.imports = {}        # module -> {local name: dotted target}
        self.module_globals = {} # module -> set of top-level assigned names
        self.parse_failures = [] # Finding objects for unparsable files

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, paths):
        index = cls()
        for path in _collect_files(paths):
            index.add_file(path)
        return index

    @classmethod
    def from_sources(cls, sources):
        """Index in-memory ``{path: source}`` mappings (test entry point)."""
        index = cls()
        for path, source in sources.items():
            index.add_source(path, source)
        return index

    def add_file(self, path):
        try:
            source = Path(path).read_text()
        except OSError as error:
            self.parse_failures.append(Finding(
                frontend="index", rule="read-error", path=_posix(path),
                message=str(error),
            ))
            return None
        return self.add_source(path, source)

    def add_source(self, path, source):
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            self.parse_failures.append(Finding(
                frontend="index", rule="parse-error", path=_posix(path),
                line=error.lineno or 1, message=str(error),
            ))
            return None
        entry = FileEntry(path, source, tree)
        self.entries[entry.posix] = entry
        self.modules[entry.module] = entry
        self._index_symbols(entry)
        return entry

    def _index_symbols(self, entry):
        imports = self.imports.setdefault(entry.module, {})
        toplevel = self.module_globals.setdefault(entry.module, set())
        package = entry.module.rsplit(".", 1)[0] if "." in entry.module else ""
        for node in entry.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(entry, node, node.name)
            elif isinstance(node, ast.ClassDef):
                toplevel.add(node.name)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._register_function(
                            entry, item, f"{node.name}.{item.name}"
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds only ``a`` in the namespace.
                        root = alias.name.split(".", 1)[0]
                        imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                target = self._resolve_from(node, package)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports[local] = f"{target}.{alias.name}" if target else alias.name
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            toplevel.add(leaf.id)

    @staticmethod
    def _resolve_from(node, package):
        if node.level == 0:
            return node.module or ""
        # Relative import: peel ``level`` components off the package.
        parts = package.split(".") if package else []
        parts = parts[: len(parts) - (node.level - 1)] if node.level > 1 else parts
        base = ".".join(parts)
        if node.module:
            return f"{base}.{node.module}" if base else node.module
        return base

    def _register_function(self, entry, node, qualname):
        info = FunctionInfo(entry.module, qualname, node, entry)
        self.functions[(entry.module, qualname)] = info
        self.module_globals.setdefault(entry.module, set()).add(
            qualname.split(".", 1)[0]
        )

    # -- queries --------------------------------------------------------
    def files(self):
        return list(self.entries.values())

    def iter_functions(self):
        return list(self.functions.values())

    def function(self, module, qualname):
        return self.functions.get((module, qualname))

    def resolve_call(self, caller, func_node):
        """Best-effort resolution of a call expression to a FunctionInfo.

        Handles ``name(...)`` (same module, or imported function),
        ``module.name(...)`` via the import table, and ``self.method(...)``
        within the caller's class.  Returns ``None`` when the target is not
        an indexed function.
        """
        if isinstance(func_node, ast.Name):
            name = func_node.id
            info = self.functions.get((caller.module, name))
            if info is not None:
                return info
            target = self.imports.get(caller.module, {}).get(name)
            if target and "." in target:
                mod, _, attr = target.rpartition(".")
                return self.functions.get((mod, attr))
            return None
        if isinstance(func_node, ast.Attribute):
            attr = func_node.attr
            base = func_node.value
            if isinstance(base, ast.Name):
                if base.id == "self" and "." in caller.qualname:
                    klass = caller.qualname.split(".", 1)[0]
                    return self.functions.get((caller.module, f"{klass}.{attr}"))
                target = self.imports.get(caller.module, {}).get(base.id)
                if target:
                    return self.functions.get((target, attr))
        return None


def _collect_files(paths):
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files
