"""One-call training facade: ``Session(config).fit()``.

Historically the repo had three ways to train a model, each with its own
construction ritual:

* build a model + instantiate a framework and call ``framework.fit``;
* describe a :class:`~repro.experiments.runner.MethodSpec` and call
  ``run_method``;
* build a per-worker model factory and drive a
  :class:`~repro.distributed.cluster.SimulatedCluster` by hand.

:class:`Session` folds all three behind one frozen, serializable config:
pick a dataset, a model, a framework *or* a distributed cluster setup,
and call :meth:`Session.fit`.  The same JSON config file drives the
``python -m repro.cli train`` command, the fault-injection chaos harness
and the serving benchmark, so an experiment is fully described by one
artifact.

A Session adds no training logic of its own — it mirrors the historical
construction paths exactly, so results are byte-identical with driving
the underlying objects by hand (the shim-parity tests pin this).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

from ..core import TrainConfig
from ..data import dataset_by_name
from ..distributed import FaultPlan, RetryPolicy, SimulatedCluster
from ..frameworks import framework_by_name
from ..metrics import evaluate_bank
from ..models import build_model
from ..nn.serialization import load_bank_states

__all__ = ["ConfigError", "DistributedConfig", "Session", "SessionConfig",
           "SessionResult"]


class ConfigError(ValueError):
    """A session config is malformed (unknown key, bad nested section).

    Subclasses ``ValueError`` so existing ``except ValueError`` handlers
    (and tests) keep working; exists so config mistakes surface as one
    catchable, clearly-worded type instead of a bare ``TypeError`` from
    deep inside a dataclass constructor.
    """


def _coerce(cls, data, section):
    """Build nested config ``cls`` from a dict with a clear error."""
    try:
        return cls(**data)
    except TypeError as exc:
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        detail = f"unknown keys {unknown}" if unknown else str(exc)
        raise ConfigError(
            f"invalid {section!r} section in session config: {detail}"
        ) from exc


@dataclass(frozen=True)
class DistributedConfig:
    """Cluster setup for a distributed session (Section IV-E runtime)."""

    n_workers: int = 4
    mode: str = "async"
    outer_optimizer: str | None = None
    use_dr: bool = False
    max_staleness: int | None = None
    heartbeat_timeout: int | None = 2
    checkpoint_path: str | None = None
    checkpoint_every: int = 1
    faults: FaultPlan | None = None
    retry: RetryPolicy | None = None

    def __post_init__(self):
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.mode not in ("sync", "async"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if isinstance(self.faults, dict):
            object.__setattr__(
                self, "faults",
                _coerce(FaultPlan, self.faults, "distributed.faults"),
            )
        if isinstance(self.retry, dict):
            object.__setattr__(
                self, "retry",
                _coerce(RetryPolicy, self.retry, "distributed.retry"),
            )

    def to_dict(self):
        # asdict() would recurse into FaultPlan, whose mappingproxy
        # fields cannot be deep-copied — serialize nested configs by hand.
        out = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("faults", "retry")
        }
        out["faults"] = None if self.faults is None else self.faults.as_dict()
        out["retry"] = None if self.retry is None else asdict(self.retry)
        return out


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to reproduce one training run.

    ``seed`` drives training-time randomness (batch order, DR sampling);
    ``model_seed`` drives parameter initialization and defaults to
    ``seed``.  With ``distributed`` set, the run goes through the
    simulated PS-Worker cluster instead of an in-process framework, and
    ``framework`` is ignored.

    ``warm_start_snapshot`` names a checksummed bank archive (as written
    by ``SnapshotStore.save`` / ``save_bank_states``) whose shared state
    initializes the model before training — the continual-learning hook.
    ``online`` is an optional plain-dict section of continual-pipeline
    knobs (stream/gate/trainer overrides) consumed by
    :func:`repro.online.sim.build_sim_config`; it rides along untouched
    so one JSON artifact also describes an online run.
    """

    dataset: str = "taobao10_sim"
    scale: float = 1.0
    model: str = "mlp"
    framework: str = "mamdr"
    seed: int = 0
    model_seed: int | None = None
    method: str | None = None
    train: TrainConfig = field(default_factory=TrainConfig)
    distributed: DistributedConfig | None = None
    model_kwargs: dict = field(default_factory=dict)
    framework_kwargs: dict = field(default_factory=dict)
    warm_start_snapshot: str | None = None
    online: dict | None = None

    def __post_init__(self):
        if isinstance(self.train, dict):
            object.__setattr__(
                self, "train", _coerce(TrainConfig, self.train, "train")
            )
        if isinstance(self.distributed, dict):
            object.__setattr__(
                self, "distributed",
                _coerce(DistributedConfig, self.distributed, "distributed"),
            )
        if self.online is not None and not isinstance(self.online, dict):
            raise ConfigError(
                "the 'online' section must be a JSON object of "
                f"continual-pipeline knobs, got {type(self.online).__name__}"
            )

    @property
    def effective_model_seed(self):
        return self.seed if self.model_seed is None else self.model_seed

    @property
    def method_label(self):
        if self.method is not None:
            return self.method
        suffix = "cluster" if self.distributed is not None else self.framework
        return f"{self.model}+{suffix}"

    def updated(self, **changes):
        return replace(self, **changes)

    def to_dict(self):
        """JSON-serializable image; round-trips through :meth:`from_dict`."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["train"] = asdict(self.train)
        out["distributed"] = (
            None if self.distributed is None else self.distributed.to_dict()
        )
        out["model_kwargs"] = dict(self.model_kwargs)
        out["framework_kwargs"] = dict(self.framework_kwargs)
        out["online"] = None if self.online is None else dict(self.online)
        return out

    @classmethod
    def from_dict(cls, data):
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown session config keys: {sorted(unknown)}"
            )
        return cls(**data)

    @classmethod
    def from_file(cls, path):
        """Load a config from a JSON file (the CLI's ``--config``)."""
        with open(Path(path), "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class SessionResult:
    """What a finished session hands back."""

    bank: object
    report: object
    stats: dict | None = None

    @property
    def mean_auc(self):
        return self.report.mean_auc


class Session:
    """Train per one :class:`SessionConfig`; the unified entrypoint.

    ``dataset`` may be passed explicitly (experiment code that already
    built one); otherwise it is constructed from the config's dataset
    name and scale.
    """

    def __init__(self, config, dataset=None):
        if isinstance(config, dict):
            config = SessionConfig.from_dict(config)
        self.config = config
        self._dataset = dataset
        self.cluster = None
        self._warm_start = None

    def build_dataset(self):
        if self._dataset is not None:
            return self._dataset
        return dataset_by_name(self.config.dataset, scale=self.config.scale)

    def build_model(self, dataset, seed=None):
        seed = self.config.effective_model_seed if seed is None else seed
        model = build_model(self.config.model, dataset, seed=seed,
                            **dict(self.config.model_kwargs))
        warm = self.warm_start_state()
        if warm is not None:
            model.load_state_dict(warm)
        return model

    def warm_start_state(self):
        """The shared state θ_S from ``warm_start_snapshot`` (cached).

        Loaded through the checksummed archive reader, so a truncated or
        corrupted snapshot fails here with a clear error instead of
        silently training from garbage.
        """
        if self.config.warm_start_snapshot is None:
            return None
        if self._warm_start is None:
            _states, default = load_bank_states(
                self.config.warm_start_snapshot, require_checksum=True
            )
            if default is None:
                raise ConfigError(
                    f"warm-start archive {self.config.warm_start_snapshot!r} "
                    "has no default (shared) state"
                )
            self._warm_start = default
        return self._warm_start

    def fit(self, profiler=None):
        """Run the configured training and return a :class:`SessionResult`.

        ``profiler`` may be a :class:`repro.utils.profiling.Profile`; when
        given, training runs inside it.
        """
        dataset = self.build_dataset()
        if profiler is not None:
            with profiler:
                bank, stats = self._train(dataset)
        else:
            bank, stats = self._train(dataset)
        report = evaluate_bank(bank, dataset,
                               method=self.config.method_label)
        return SessionResult(bank=bank, report=report, stats=stats)

    def _train(self, dataset):
        if self.config.distributed is not None:
            return self._train_cluster(dataset)
        model = self.build_model(dataset)
        framework = framework_by_name(self.config.framework,
                                      **dict(self.config.framework_kwargs))
        bank = framework.fit(model, dataset, self.config.train,
                             seed=self.config.seed)
        return bank, None

    def _train_cluster(self, dataset):
        dist = self.config.distributed
        self.cluster = SimulatedCluster(
            n_workers=dist.n_workers,
            mode=dist.mode,
            outer_optimizer=dist.outer_optimizer,
            fault_plan=dist.faults,
            retry_policy=dist.retry,
            max_staleness=dist.max_staleness,
            heartbeat_timeout=dist.heartbeat_timeout,
            checkpoint_path=dist.checkpoint_path,
            checkpoint_every=dist.checkpoint_every,
        )
        bank = self.cluster.run(
            lambda worker_id: self.build_model(dataset),
            dataset, self.config.train, seed=self.config.seed,
            use_dr=dist.use_dr,
        )
        return bank, self.cluster.stats()
