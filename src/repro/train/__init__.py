"""``repro.train`` — the unified training facade.

``Session(config).fit()`` replaces the three historical construction
rituals (framework ``fit``, ``run_method`` specs, hand-built clusters)
with one frozen, JSON-serializable :class:`SessionConfig`.
"""

from .session import (
    ConfigError,
    DistributedConfig,
    Session,
    SessionConfig,
    SessionResult,
)

__all__ = [
    "ConfigError",
    "DistributedConfig",
    "Session",
    "SessionConfig",
    "SessionResult",
]
