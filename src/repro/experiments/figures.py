"""Figures 8 and 9: hyper-parameter sensitivity of MAMDR.

* Figure 8: average AUC of MLP+MAMDR vs the DR sample number ``k`` on
  Taobao-30 — the paper observes a rise-then-drop with a peak around k=5
  and degradation once θ_i deviates too far from θ_S.
* Figure 9: average AUC of MLP+DN under a grid of inner learning rates α
  and outer learning rates β on Taobao-10 — the paper observes that α must
  be small enough for the Taylor analysis to hold, and that β = 1
  (degeneration to Alternate Training) underperforms β < 1.
"""

from __future__ import annotations

from ..core import TrainConfig
from ..data import benchmarks
from ..utils.tables import format_table
from .runner import MethodSpec, run_method

__all__ = [
    "FIG8_SAMPLE_NUMBERS",
    "FIG9_INNER_LRS",
    "FIG9_OUTER_LRS",
    "run_fig8",
    "render_fig8",
    "run_fig9",
    "render_fig9",
]

FIG8_SAMPLE_NUMBERS = (0, 1, 3, 5, 7, 10)
# The paper sweeps alpha in {1e-1, 1e-2, 1e-3} around its optimum of 1e-3;
# our scaled-down datasets have an optimum near 1e-2, so the analogous grid
# spans one decade above and below it plus a clearly-too-large value.
FIG9_INNER_LRS = (3e-1, 1e-1, 1e-2, 1e-3)
FIG9_OUTER_LRS = (1.0, 0.5, 0.1)


def run_fig8(scale=1.0, seeds=(0,), config=None,
             sample_numbers=FIG8_SAMPLE_NUMBERS, verbose=False):
    """AUC of MLP+MAMDR as a function of the DR sample number k
    (seed-averaged)."""
    base = config or TrainConfig()
    series = {}
    for k in sample_numbers:
        aucs = []
        for seed in seeds:
            dataset = benchmarks.taobao_sim(30, scale=scale, seed=seed)
            spec = MethodSpec(f"k={k}", model="mlp", framework="mamdr",
                              config_overrides={"sample_k": k})
            aucs.append(run_method(spec, dataset, config=base, seed=seed).mean_auc)
        series[k] = sum(aucs) / len(aucs)
        if verbose:
            print(f"[fig8] k={k}: AUC={series[k]:.4f}")
    return series


def render_fig8(series):
    rows = [[f"k={k}", auc] for k, auc in series.items()]
    return format_table(
        ["Sample number", "AUC"], rows,
        title="Figure 8 analogue: MAMDR AUC vs DR sample number k (Taobao-30)",
    )


def run_fig9(scale=1.0, seeds=(0,), config=None, inner_lrs=FIG9_INNER_LRS,
             outer_lrs=FIG9_OUTER_LRS, verbose=False):
    """AUC of MLP+DN under an (α, β) grid; returns ``{(α, β): auc}``
    (seed-averaged)."""
    base = config or TrainConfig()
    grid = {}
    for alpha in inner_lrs:
        for beta in outer_lrs:
            aucs = []
            for seed in seeds:
                dataset = benchmarks.taobao_sim(10, scale=scale, seed=seed)
                spec = MethodSpec(
                    f"a={alpha:g},b={beta:g}", model="mlp", framework="dn",
                    config_overrides={"inner_lr": alpha, "outer_lr": beta},
                )
                aucs.append(run_method(spec, dataset, config=base, seed=seed).mean_auc)
            grid[(alpha, beta)] = sum(aucs) / len(aucs)
            if verbose:
                print(f"[fig9] alpha={alpha:g} beta={beta:g}: "
                      f"AUC={grid[(alpha, beta)]:.4f}")
    return grid


def render_fig9(grid):
    alphas = sorted({alpha for alpha, _ in grid}, reverse=True)
    betas = sorted({beta for _, beta in grid}, reverse=True)
    headers = ["alpha \\ beta"] + [f"{beta:g}" for beta in betas]
    rows = []
    for alpha in alphas:
        rows.append([f"{alpha:g}"] + [grid[(alpha, beta)] for beta in betas])
    return format_table(
        headers, rows,
        title="Figure 9 analogue: DN AUC vs inner lr alpha x outer lr beta (Taobao-10)",
    )
