"""Table VI (ablation of DN and DR) and Table VII (per-domain Amazon-6).

Four variants of MLP+MAMDR: the full framework, without DN (alternate
shared training + DR), without DR (DN only, no specific parameters) and
without both (plain alternate training).
"""

from __future__ import annotations

from ..data import benchmarks
from ..utils.tables import format_table
from .runner import MethodSpec, run_comparison_averaged
from .table5 import TABLE5_DATASETS

__all__ = [
    "ABLATION_METHODS",
    "run_table6",
    "render_table6",
    "run_table7",
    "render_table7",
]

ABLATION_METHODS = (
    MethodSpec("MLP+MAMDR (DN+DR)", model="mlp", framework="mamdr"),
    MethodSpec("w/o DN", model="mlp", framework="mamdr",
               framework_kwargs={"use_dn": False}),
    MethodSpec("w/o DR", model="mlp", framework="mamdr",
               framework_kwargs={"use_dr": False}),
    MethodSpec("w/o DN+DR", model="mlp", framework="alternate"),
)


def run_table6(scale=1.0, seeds=(0,), config=None, datasets=TABLE5_DATASETS,
               verbose=False):
    """Ablation over all benchmark datasets (seed-averaged)."""
    results = {}
    for name in datasets:
        if verbose:
            print(f"[table6] {name}")
        results[name] = run_comparison_averaged(
            ABLATION_METHODS,
            lambda seed, name=name: benchmarks.dataset_by_name(
                name, scale=scale, seed=seed
            ),
            seeds, config=config, verbose=verbose,
        )
    return results


def render_table6(results):
    datasets = list(results)
    headers = ["Method"] + [
        f"{name.replace('_sim', '')} AUC" for name in datasets
    ]
    method_names = list(next(iter(results.values())).reports)
    rows = []
    for method in method_names:
        row = [method] + [results[name].mean_auc[method] for name in datasets]
        rows.append(row)
    return format_table(headers, rows, title="Table VI analogue: DN/DR ablation")


def run_table7(scale=1.0, seeds=(0,), config=None, verbose=False):
    """Per-domain ablation results on Amazon-6 (the paper's Table VII)."""
    return run_comparison_averaged(
        ABLATION_METHODS,
        lambda seed: benchmarks.amazon6_sim(scale=scale, seed=seed),
        seeds, config=config, verbose=verbose,
    )


def render_table7(result):
    method_names = list(result.reports)
    domains = list(next(iter(result.reports.values())).per_domain)
    headers = ["Method"] + domains
    rows = []
    for method in method_names:
        per_domain = result.reports[method].per_domain
        rows.append([method] + [per_domain[d] for d in domains])
    return format_table(
        headers, rows, title="Table VII analogue: per-domain AUC on Amazon-6"
    )
