"""``repro.experiments`` — the table/figure regeneration harness.

One module per artifact of the paper's evaluation section; the
``benchmarks/`` pytest targets call these and print the rendered tables.
"""

from .figures import (
    FIG8_SAMPLE_NUMBERS,
    FIG9_INNER_LRS,
    FIG9_OUTER_LRS,
    render_fig8,
    render_fig9,
    run_fig8,
    run_fig9,
)
from .industry import (
    INDUSTRY_METHODS,
    render_table8,
    render_table9,
    run_industry,
)
from .runner import (
    ComparisonResult,
    MethodSpec,
    run_comparison,
    run_comparison_averaged,
    run_method,
)
from .table5 import TABLE5_DATASETS, TABLE5_METHODS, render_table5, run_table5
from .table6 import (
    ABLATION_METHODS,
    render_table6,
    render_table7,
    run_table6,
    run_table7,
)
from .tuning import GridSearchResult, grid_search
from .table10 import (
    TABLE10_FRAMEWORKS,
    TABLE10_MODELS,
    render_table10,
    run_table10,
)

__all__ = [
    "MethodSpec",
    "ComparisonResult",
    "run_method",
    "run_comparison",
    "run_comparison_averaged",
    "grid_search",
    "GridSearchResult",
    "TABLE5_METHODS",
    "TABLE5_DATASETS",
    "run_table5",
    "render_table5",
    "ABLATION_METHODS",
    "run_table6",
    "render_table6",
    "run_table7",
    "render_table7",
    "INDUSTRY_METHODS",
    "run_industry",
    "render_table8",
    "render_table9",
    "TABLE10_FRAMEWORKS",
    "TABLE10_MODELS",
    "run_table10",
    "render_table10",
    "FIG8_SAMPLE_NUMBERS",
    "FIG9_INNER_LRS",
    "FIG9_OUTER_LRS",
    "run_fig8",
    "render_fig8",
    "run_fig9",
    "render_fig9",
]
