"""Grid search over :class:`~repro.core.config.TrainConfig` fields.

The paper stresses that MAMDR works "without burdensome hyper-parameter
tuning"; for the cases where tuning *is* wanted (e.g. picking β and γ for
a new model structure), this utility runs a small grid with validation
selection and returns every cell's score — the machinery behind Figures 8
and 9, generalized to arbitrary config fields.
"""

from __future__ import annotations

import itertools

from ..core import TrainConfig
from ..utils.tables import format_table

__all__ = ["GridSearchResult", "grid_search"]


class GridSearchResult:
    """All grid cells with their validation and test scores."""

    def __init__(self, cells):
        if not cells:
            raise ValueError("empty grid")
        self.cells = list(cells)

    @property
    def best(self):
        """The cell with the best validation AUC."""
        return max(self.cells, key=lambda cell: cell["val_auc"])

    def render(self, title="Grid search"):
        keys = sorted(self.cells[0]["params"])
        rows = [
            [
                ", ".join(f"{k}={cell['params'][k]:g}" for k in keys),
                cell["val_auc"],
                cell["test_auc"],
            ]
            for cell in self.cells
        ]
        return format_table(["Cell", "Val AUC", "Test AUC"], rows, title=title)


def grid_search(spec, dataset, grid, base_config=None, seed=0, verbose=False):
    """Evaluate a method spec over the Cartesian product of ``grid``.

    Parameters
    ----------
    spec:
        The :class:`MethodSpec` to tune.
    grid:
        ``{config_field: [values...]}``, e.g.
        ``{"outer_lr": [0.5, 0.1], "sample_k": [1, 3, 5]}``.

    Selection uses validation AUC; test AUC is reported for the record but
    never used for picking (no test leakage).
    """
    base = base_config or TrainConfig()
    names = list(grid)
    cells = []
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        tuned = base.updated(**params)
        val_auc, test_auc = _train_and_score(spec, dataset, tuned, seed)
        cells.append({
            "params": params,
            "val_auc": val_auc,
            "test_auc": test_auc,
        })
        if verbose:
            print(f"  {params}: val={val_auc:.4f} test={test_auc:.4f}")
    return GridSearchResult(cells)


def _train_and_score(spec, dataset, config, seed):
    """One training run, scored on both validation and test splits."""
    from ..frameworks import framework_by_name
    from ..metrics.report import evaluate_bank
    from ..models import build_model

    model = build_model(spec.model, dataset, seed=seed, **spec.model_kwargs)
    framework = framework_by_name(spec.framework, **spec.framework_kwargs)
    bank = framework.fit(model, dataset, config, seed=seed)
    val = evaluate_bank(bank, dataset, split="val", method=spec.name).mean_auc
    test = evaluate_bank(bank, dataset, split="test", method=spec.name).mean_auc
    return val, test
