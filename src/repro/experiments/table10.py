"""Table X: learning frameworks x model structures on Taobao-10.

Ten model-agnostic learning frameworks (Alternate, Alternate+Finetune,
Weighted Loss, PCGrad, MAML, Reptile, MLDG, DN, DR, MAMDR) applied to six
model structures (MLP, WDL, NeurFM, DeepFM, Shared-bottom, Star).
"""

from __future__ import annotations

from ..data import benchmarks
from ..utils.tables import format_table
from .runner import MethodSpec, run_comparison_averaged

__all__ = [
    "TABLE10_FRAMEWORKS",
    "TABLE10_MODELS",
    "run_table10",
    "render_table10",
]

TABLE10_FRAMEWORKS = (
    ("Alternate", "alternate"),
    ("Alternate+Finetune", "alternate_finetune"),
    ("Weighted Loss", "weighted_loss"),
    ("PCGrad", "pcgrad"),
    ("MAML", "maml"),
    ("Reptile", "reptile"),
    ("MLDG", "mldg"),
    ("DN", "dn"),
    ("DR", "dr"),
    ("MAMDR (DN+DR)", "mamdr"),
)

TABLE10_MODELS = ("mlp", "wdl", "neurfm", "deepfm", "shared_bottom", "star")


def run_table10(scale=1.0, seeds=(0,), config=None, models=TABLE10_MODELS,
                frameworks=TABLE10_FRAMEWORKS, verbose=False):
    """Run every (model, framework) pair; returns ``{model: ComparisonResult}``."""
    results = {}
    for model_name in models:
        specs = [
            MethodSpec(framework_label, model=model_name,
                       framework=framework_name)
            for framework_label, framework_name in frameworks
        ]
        if verbose:
            print(f"[table10] model={model_name}")
        results[model_name] = run_comparison_averaged(
            specs,
            lambda seed: benchmarks.taobao_sim(10, scale=scale, seed=seed),
            seeds, config=config, verbose=verbose,
        )
    return results


def render_table10(results):
    models = list(results)
    framework_names = list(next(iter(results.values())).reports)
    headers = ["Framework"] + list(models)
    rows = []
    for framework in framework_names:
        rows.append(
            [framework] + [results[m].mean_auc[framework] for m in models]
        )
    return format_table(
        headers, rows,
        title="Table X analogue: learning frameworks x model structures (Taobao-10)",
    )
