"""Experiment runner: train a (model, framework) pair and evaluate it.

The benchmark harness describes every experiment as a list of
:class:`MethodSpec` rows; :func:`run_comparison` trains them all on one
dataset and produces per-domain AUCs, mean AUC and the paper's RANK metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import TrainConfig
from ..metrics import average_rank
from ..train import Session, SessionConfig
from ..utils.tables import format_table

__all__ = ["MethodSpec", "ComparisonResult", "run_method", "run_comparison"]


@dataclass(frozen=True)
class MethodSpec:
    """One row of a comparison table: a model trained by a framework."""

    name: str
    model: str = "mlp"
    framework: str = "alternate"
    model_kwargs: dict = field(default_factory=dict)
    framework_kwargs: dict = field(default_factory=dict)
    config_overrides: dict = field(default_factory=dict)


class ComparisonResult:
    """All methods' per-domain AUCs on one dataset."""

    def __init__(self, dataset_name, reports):
        self.dataset_name = dataset_name
        self.reports = dict(reports)

    @property
    def mean_auc(self):
        return {name: report.mean_auc for name, report in self.reports.items()}

    @property
    def rank(self):
        return average_rank(
            {name: report.per_domain for name, report in self.reports.items()}
        )

    def summary_rows(self):
        """(method, mean AUC, avg RANK) rows, in method order."""
        ranks = self.rank
        return [
            (name, report.mean_auc, ranks[name])
            for name, report in self.reports.items()
        ]

    def render(self, title=None):
        return format_table(
            ["Method", "AUC", "RANK"],
            [[name, auc, f"{rank:.1f}"] for name, auc, rank in self.summary_rows()],
            title=title or f"Comparison on {self.dataset_name}",
        )

    def best_method(self):
        return max(self.reports, key=lambda name: self.reports[name].mean_auc)


def run_method(spec, dataset, config=None, seed=0, profiler=None):
    """Train one method spec on a dataset and return its evaluation report.

    ``profiler`` may be a :class:`repro.utils.profiling.Profile`; when
    given, training runs inside it so per-op wall-time/allocation counters
    (embedding fwd/bwd, fused kernels, optimizer steps) are collected.
    """
    config = config or TrainConfig()
    if spec.config_overrides:
        config = config.updated(**spec.config_overrides)
    session = Session(
        SessionConfig(
            dataset=dataset.name,
            model=spec.model,
            framework=spec.framework,
            seed=seed,
            method=spec.name,
            train=config,
            model_kwargs=dict(spec.model_kwargs),
            framework_kwargs=dict(spec.framework_kwargs),
        ),
        dataset=dataset,
    )
    return session.fit(profiler=profiler).report


def run_comparison(specs, dataset, config=None, seed=0, verbose=False,
                   profiler=None):
    """Train every method spec on ``dataset`` and collect the reports."""
    reports = {}
    for spec in specs:
        report = run_method(spec, dataset, config=config, seed=seed,
                            profiler=profiler)
        reports[spec.name] = report
        if verbose:
            print(f"  {spec.name:24s} AUC={report.mean_auc:.4f}")
    return ComparisonResult(dataset.name, reports)


def run_comparison_averaged(specs, dataset_builder, seeds, config=None,
                            verbose=False):
    """Run a comparison over several seeds and average per-domain AUCs.

    ``dataset_builder(seed)`` regenerates the dataset, so both data and
    initialization vary per seed — the standard protocol for reporting
    stable comparisons on synthetic benchmarks.
    """
    from ..metrics.report import EvaluationReport

    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    per_method = {spec.name: {} for spec in specs}
    dataset_name = None
    for seed in seeds:
        dataset = dataset_builder(seed)
        dataset_name = dataset.name
        for spec in specs:
            report = run_method(spec, dataset, config=config, seed=seed)
            if verbose:
                print(f"  seed={seed} {spec.name:24s} AUC={report.mean_auc:.4f}")
            for domain, auc in report.per_domain.items():
                per_method[spec.name].setdefault(domain, []).append(auc)
    reports = {
        name: EvaluationReport(
            name, dataset_name,
            {domain: sum(vals) / len(vals) for domain, vals in domains.items()},
        )
        for name, domains in per_method.items()
    }
    return ComparisonResult(dataset_name, reports)
