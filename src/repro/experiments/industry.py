"""Tables VIII and IX: the industry-scale experiment.

The paper applies MAMDR to the existing production model ("RAW") on
Taobao-online (69,102 domains) and compares against MMOE, CGC, PLE, a
separately-trained RAW, and RAW+DN.  We run the same seven methods on
``taobao_online_sim`` — a Zipf-sized many-domain analogue — and report the
average AUC over all domains (Table VIII) plus per-domain AUC for the ten
largest domains (Table IX).
"""

from __future__ import annotations

from ..data import benchmarks
from ..utils.tables import format_table
from .runner import MethodSpec, run_comparison_averaged

__all__ = [
    "INDUSTRY_METHODS",
    "run_industry",
    "render_table8",
    "render_table9",
]

INDUSTRY_METHODS = (
    MethodSpec("RAW", model="raw"),
    MethodSpec("MMOE", model="mmoe"),
    MethodSpec("CGC", model="cgc"),
    MethodSpec("PLE", model="ple"),
    MethodSpec("RAW+Separate", model="raw", framework="separate"),
    MethodSpec("RAW+DN", model="raw", framework="dn"),
    MethodSpec("RAW+MAMDR", model="raw", framework="mamdr"),
)


def run_industry(n_domains=40, total_samples=20_000, seeds=(0,), config=None,
                 verbose=False):
    """Run the industry comparison; both tables read from the result."""
    dataset = benchmarks.taobao_online_sim(
        n_domains=n_domains, total_samples=total_samples, seed=seeds[0]
    )
    result = run_comparison_averaged(
        INDUSTRY_METHODS,
        lambda seed: benchmarks.taobao_online_sim(
            n_domains=n_domains, total_samples=total_samples, seed=seed
        ),
        seeds, config=config, verbose=verbose,
    )
    return dataset, result


def render_table8(result):
    """Average AUC over all domains (Table VIII layout)."""
    rows = [[name, auc] for name, auc in result.mean_auc.items()]
    return format_table(["Method", "AUC"], rows,
                        title="Table VIII analogue: industry average AUC")


def render_table9(dataset, result, top=10):
    """Per-domain AUC on the ``top`` largest domains (Table IX layout)."""
    largest = sorted(dataset.domains, key=lambda d: -d.num_samples)[:top]
    headers = ["Method"] + [f"Top {i + 1}" for i in range(len(largest))]
    rows = []
    for method, report in result.reports.items():
        rows.append([method] + [report.per_domain[d.name] for d in largest])
    return format_table(
        headers, rows,
        title=f"Table IX analogue: top {top} largest industry domains",
    )
