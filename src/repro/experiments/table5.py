"""Table V: multi-domain recommendation methods vs MLP+MAMDR.

Reproduces the paper's main comparison — five single-domain CTR models and
four multi-task/multi-domain models, all trained with alternate training,
against a plain MLP optimized with MAMDR — on the five MDR benchmark
datasets, reporting average AUC and average RANK per dataset.
"""

from __future__ import annotations

from ..data import benchmarks
from ..utils.tables import format_table
from .runner import MethodSpec, run_comparison_averaged

__all__ = ["TABLE5_METHODS", "TABLE5_DATASETS", "run_table5", "render_table5"]

TABLE5_METHODS = (
    MethodSpec("MLP", model="mlp"),
    MethodSpec("WDL", model="wdl"),
    MethodSpec("NeurFM", model="neurfm"),
    MethodSpec("AutoInt", model="autoint"),
    MethodSpec("DeepFM", model="deepfm"),
    MethodSpec("Shared-bottom", model="shared_bottom"),
    MethodSpec("MMOE", model="mmoe"),
    MethodSpec("PLE", model="ple"),
    MethodSpec("Star", model="star"),
    MethodSpec("MLP+MAMDR", model="mlp", framework="mamdr"),
)

TABLE5_DATASETS = (
    "amazon6_sim",
    "amazon13_sim",
    "taobao10_sim",
    "taobao20_sim",
    "taobao30_sim",
)


def run_table5(scale=1.0, seeds=(0,), config=None, datasets=TABLE5_DATASETS,
               methods=TABLE5_METHODS, verbose=False):
    """Run the main comparison; returns ``{dataset: ComparisonResult}``.

    ``seeds`` controls averaging: data and initialization are regenerated
    per seed and per-domain AUCs averaged.
    """
    results = {}
    for name in datasets:
        if verbose:
            print(f"[table5] {name}")
        results[name] = run_comparison_averaged(
            methods,
            lambda seed, name=name: benchmarks.dataset_by_name(
                name, scale=scale, seed=seed
            ),
            seeds, config=config, verbose=verbose,
        )
    return results


def render_table5(results):
    """Render results in the paper's layout: AUC and RANK per dataset."""
    datasets = list(results)
    headers = ["Method"]
    for name in datasets:
        short = name.replace("_sim", "")
        headers += [f"{short} AUC", f"{short} RANK"]
    method_names = list(next(iter(results.values())).reports)
    rows = []
    for method in method_names:
        row = [method]
        for name in datasets:
            result = results[name]
            row.append(result.mean_auc[method])
            row.append(f"{result.rank[method]:.1f}")
        rows.append(row)
    return format_table(headers, rows,
                        title="Table V analogue: methods vs MLP+MAMDR")
