"""Shared utilities: seeding, table formatting, and hot-path profiling."""

from . import profiling
from .seeding import spawn_rng, stable_seed
from .tables import format_table

__all__ = ["spawn_rng", "stable_seed", "format_table", "profiling"]
