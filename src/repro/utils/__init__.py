"""Shared utilities: seeding and table formatting."""

from .seeding import spawn_rng, stable_seed
from .tables import format_table

__all__ = ["spawn_rng", "stable_seed", "format_table"]
