"""Plain-text table rendering for the benchmark harness.

The benchmark targets print the same rows the paper's tables report; this
keeps the formatting logic in one place.
"""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(headers, rows, title=None, float_fmt="{:.4f}"):
    """Render a list-of-rows table as aligned monospaced text.

    ``rows`` may contain floats (formatted with ``float_fmt``), ints, or
    strings.
    """
    def render(cell):
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    text_rows = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[col]) for row in text_rows)) if text_rows else len(header)
        for col, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
