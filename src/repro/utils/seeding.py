"""Deterministic RNG management.

Every stochastic component in the library (data generation, weight
initialization, dropout, domain shuffling, negative sampling) draws from an
explicitly passed ``numpy.random.Generator``.  These helpers derive
independent child generators from string keys so that, e.g., "the RNG used
to shuffle domains in DN" is stable regardless of how many batches were
drawn before it.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stable_seed", "spawn_rng"]


def stable_seed(*keys):
    """Derive a 64-bit seed from arbitrary string/int keys (stable across
    processes and Python versions, unlike ``hash``)."""
    digest = hashlib.sha256("/".join(str(k) for k in keys).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_rng(seed, *keys):
    """Create a ``numpy.random.Generator`` from a base seed plus namespacing
    keys."""
    return np.random.default_rng(stable_seed(seed, *keys))
