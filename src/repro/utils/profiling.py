"""Per-op wall-time and allocation profiling for the training hot path.

The instrumented ops (embedding forward/backward, fused kernels, optimizer
steps, training steps) call :func:`tick`/:func:`tock`, which are free when
no profile is active: ``tick`` returns ``None`` after a single list check,
and ``tock`` returns immediately on ``None``.

Usage::

    from repro.utils import profiling

    with profiling.profile() as prof:
        framework.fit(model, dataset, config)
    print(prof.render())

A :class:`Profile` is itself a context manager, so callers that need to
hold onto it (e.g. ``experiments.runner.run_method(..., profiler=prof)``)
can create it first and enter it around the expensive region.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass

__all__ = [
    "OpStats",
    "Profile",
    "profile",
    "is_active",
    "tick",
    "tock",
    "record",
    "count",
    "observe",
    "percentile",
    "tape_breakdown",
    "render_tape_breakdown",
    "step_speedup",
]

# Stack of active profiles; every instrumented op reports to all of them so
# profiles can nest (e.g. a whole-run profile around a per-epoch one).
_STACK = []


@dataclass
class OpStats:
    """Aggregated counters for one named operation."""

    calls: int = 0
    seconds: float = 0.0
    bytes_allocated: int = 0

    @property
    def mean_seconds(self):
        return self.seconds / self.calls if self.calls else 0.0


class Profile:
    """A collection of per-op counters gathered while the profile is active."""

    def __init__(self):
        self.ops = {}
        # Raw per-event sample series (e.g. serving request latencies):
        # unlike ``ops`` these keep every observation so tail percentiles
        # (p95/p99) can be computed, not just totals and means.
        self.series = {}

    def __enter__(self):
        _STACK.append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        _STACK.remove(self)
        return False

    def add(self, name, seconds, nbytes=0):
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpStats()
        stats.calls += 1
        stats.seconds += seconds
        stats.bytes_allocated += nbytes

    def add_count(self, name, n=1, nbytes=0):
        """Record ``n`` occurrences of a counted (untimed) event."""
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpStats()
        stats.calls += n
        stats.bytes_allocated += nbytes

    def observe(self, name, value):
        """Append one raw sample to the ``name`` series."""
        self.series.setdefault(name, []).append(float(value))

    def series_summary(self, quantiles=(0.5, 0.95, 0.99)):
        """Per-series count/mean/percentiles for every observed series."""
        summary = {}
        for name, samples in self.series.items():
            entry = {
                "count": len(samples),
                "mean": sum(samples) / len(samples),
            }
            for q in quantiles:
                entry[f"p{round(q * 100):d}"] = percentile(samples, q)
            summary[name] = entry
        return summary

    def total_seconds(self):
        return sum(stats.seconds for stats in self.ops.values())

    def as_dict(self):
        """JSON-friendly summary, sorted by total time descending."""
        return {
            name: {
                "calls": stats.calls,
                "seconds": stats.seconds,
                "mean_seconds": stats.mean_seconds,
                "bytes_allocated": stats.bytes_allocated,
            }
            for name, stats in sorted(
                self.ops.items(), key=lambda kv: -kv[1].seconds
            )
        }

    def render(self, title="Profile"):
        """Human-readable table of the collected counters."""
        from .tables import format_table

        rows = [
            [
                name,
                str(stats.calls),
                f"{stats.seconds * 1e3:.2f}",
                f"{stats.mean_seconds * 1e6:.1f}",
                f"{stats.bytes_allocated / 1e6:.2f}",
            ]
            for name, stats in sorted(
                self.ops.items(), key=lambda kv: -kv[1].seconds
            )
        ]
        return format_table(
            ["Op", "Calls", "Total ms", "Mean µs", "Alloc MB"], rows, title=title
        )


@contextlib.contextmanager
def profile():
    """Activate a fresh :class:`Profile` for the enclosed block."""
    prof = Profile()
    with prof:
        yield prof


def is_active():
    """Whether any profile is currently collecting."""
    return bool(_STACK)


def tick():
    """Start a timing; returns ``None`` (free) when profiling is off."""
    return time.perf_counter() if _STACK else None


def tock(name, start, nbytes=0):
    """Finish a timing started by :func:`tick` and record it."""
    if start is None:
        return
    elapsed = time.perf_counter() - start
    for prof in _STACK:
        prof.add(name, elapsed, nbytes)


def record(name, seconds, nbytes=0):
    """Record an externally measured duration under ``name``."""
    for prof in _STACK:
        prof.add(name, seconds, nbytes)


def count(name, n=1, nbytes=0):
    """Count an event (no timing) — e.g. graph diagnostics such as
    ``sparse.densify``; free (one list check) when no profile is active."""
    if not _STACK:
        return
    for prof in _STACK:
        prof.add_count(name, n, nbytes)


def observe(name, value):
    """Record one raw sample (e.g. a request latency) into active profiles.

    Samples accumulate in :attr:`Profile.series` so tail statistics survive
    aggregation; free (one list check) when no profile is active.
    """
    if not _STACK:
        return
    for prof in _STACK:
        prof.observe(name, value)


# ----------------------------------------------------------------------
# Compiled-vs-eager aggregation
# ----------------------------------------------------------------------
# The tape replay times every kernel under ``tape.fwd.<kind>`` /
# ``tape.bwd.<kind>`` (plus ``optim.step``), so a profiled compiled run
# reports where time goes *without* re-enabling eager Python dispatch.
# The helpers below fold those flat counters into per-kind rows and
# compare a compiled profile against an eager one.

_TAPE_FWD = "tape.fwd."
_TAPE_BWD = "tape.bwd."


def tape_breakdown(prof):
    """Per-kind replay timing aggregated from a profile's tape counters.

    Returns ``{kind: {"fwd_calls", "bwd_calls", "fwd_seconds",
    "bwd_seconds", "seconds", "share"}}`` where ``share`` is the kind's
    fraction of all tape time (0.0 when no tape counters were recorded).
    """
    rows = {}
    for name, stats in prof.ops.items():
        if name.startswith(_TAPE_FWD):
            kind, side = name[len(_TAPE_FWD):], "fwd"
        elif name.startswith(_TAPE_BWD):
            kind, side = name[len(_TAPE_BWD):], "bwd"
        else:
            continue
        row = rows.setdefault(kind, {
            "fwd_calls": 0, "bwd_calls": 0,
            "fwd_seconds": 0.0, "bwd_seconds": 0.0,
        })
        row[f"{side}_calls"] += stats.calls
        row[f"{side}_seconds"] += stats.seconds
    total = sum(r["fwd_seconds"] + r["bwd_seconds"] for r in rows.values())
    for row in rows.values():
        row["seconds"] = row["fwd_seconds"] + row["bwd_seconds"]
        row["share"] = row["seconds"] / total if total else 0.0
    return dict(sorted(rows.items(), key=lambda kv: -kv[1]["seconds"]))


def render_tape_breakdown(prof, title="Tape replay breakdown"):
    """Human-readable per-kind table of a compiled run's replay time."""
    from .tables import format_table

    rows = [
        [
            kind,
            str(row["fwd_calls"]),
            f"{row['fwd_seconds'] * 1e3:.2f}",
            f"{row['bwd_seconds'] * 1e3:.2f}",
            f"{row['share'] * 100:.1f}%",
        ]
        for kind, row in tape_breakdown(prof).items()
    ]
    return format_table(
        ["Kind", "Fwd calls", "Fwd ms", "Bwd ms", "Share"], rows, title=title
    )


def step_speedup(eager_prof, compiled_prof, name="train.step"):
    """Compare mean ``name`` timings of an eager and a compiled profile.

    Both profiles must have timed ``name`` (the training loops do);
    returns mean seconds per step for each side, the speedup ratio and
    the compiled side's per-kind replay breakdown.
    """
    eager = eager_prof.ops.get(name)
    compiled = compiled_prof.ops.get(name)
    if eager is None or compiled is None or not eager.calls or not compiled.calls:
        raise KeyError(f"both profiles must record {name!r} timings")
    eager_mean = eager.mean_seconds
    compiled_mean = compiled.mean_seconds
    return {
        "op": name,
        "eager_mean_seconds": eager_mean,
        "compiled_mean_seconds": compiled_mean,
        "speedup": eager_mean / compiled_mean if compiled_mean else float("inf"),
        "breakdown": tape_breakdown(compiled_prof),
    }


def percentile(samples, q, method="linear"):
    """Percentile of a sample list (``q`` in [0, 1]).

    The default interpolates linearly between the two order statistics
    bracketing rank ``q * (n - 1)`` (numpy's ``linear`` convention), so
    tail estimates like p99 move smoothly as samples accumulate instead
    of jumping between observed values at small ``n``.

    ``method="nearest"`` keeps the historical nearest-rank behavior —
    the result is always one of the observed samples — for consumers
    that need an actual witness value rather than a smooth estimate.
    """
    if not samples:
        raise ValueError("cannot take a percentile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    ordered = sorted(samples)
    n = len(ordered)
    if method == "nearest":
        rank = min(n - 1, max(0, int(round(q * n + 0.5)) - 1))
        return ordered[rank]
    if method != "linear":
        raise ValueError(f"unknown percentile method {method!r}")
    position = q * (n - 1)
    lower = int(position)
    upper = min(lower + 1, n - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction
