"""Per-domain evaluation of trained model banks."""

from __future__ import annotations

from ..data.batching import full_batch
from .auc import auc_score, mean_domain_auc

__all__ = ["evaluate_bank", "EvaluationReport"]


class EvaluationReport:
    """Per-domain AUCs for one method on one dataset."""

    def __init__(self, method, dataset_name, per_domain):
        self.method = method
        self.dataset_name = dataset_name
        self.per_domain = dict(per_domain)

    @property
    def mean_auc(self):
        return mean_domain_auc(self.per_domain)

    def __repr__(self):
        return (
            f"EvaluationReport({self.method!r} on {self.dataset_name!r}, "
            f"mean AUC={self.mean_auc:.4f})"
        )


def evaluate_bank(bank, dataset, split="test", method="model"):
    """Score a :class:`~repro.frameworks.base.DomainModelBank` on a dataset.

    Returns an :class:`EvaluationReport` with one AUC per domain, the paper's
    evaluation protocol (AUC per domain, then averaged).
    """
    per_domain = {}
    for domain in dataset:
        table = getattr(domain, split)
        batch = full_batch(table, domain.index)
        scores = bank.scores(batch)
        per_domain[domain.name] = auc_score(table.labels, scores)
    return EvaluationReport(method, dataset.name, per_domain)
