"""The paper's average-RANK metric.

Table V reports, for each method, the average over domains of the method's
rank among all compared methods on that domain (1 = best AUC).  Ties get
midranks, consistent with the AUC computation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["average_rank"]


def average_rank(per_method_domain_auc):
    """Compute each method's average rank across domains.

    Parameters
    ----------
    per_method_domain_auc:
        ``{method_name: {domain_name: auc}}``; all methods must cover the
        same domains.

    Returns
    -------
    ``{method_name: float}`` — lower is better.
    """
    methods = list(per_method_domain_auc)
    if not methods:
        raise ValueError("no methods provided")
    domains = list(per_method_domain_auc[methods[0]])
    for method in methods:
        if set(per_method_domain_auc[method]) != set(domains):
            raise ValueError(f"method {method!r} covers different domains")

    totals = {method: 0.0 for method in methods}
    for domain in domains:
        aucs = np.array([per_method_domain_auc[m][domain] for m in methods])
        ranks = _descending_midranks(aucs)
        for method, rank in zip(methods, ranks):
            totals[method] += rank

    return {method: totals[method] / len(domains) for method in methods}


def _descending_midranks(values):
    """Rank 1 = largest value; ties share the mean of their rank range."""
    order = np.argsort(-values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks
