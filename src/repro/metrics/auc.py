"""Area under the ROC curve — the paper's evaluation metric for CTR.

Computed via the rank-statistic (Mann-Whitney U) formulation with midrank
tie handling, verified against a direct O(n^2) definition and scipy in the
test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["auc_score", "mean_domain_auc"]


def auc_score(labels, scores):
    """AUC of ``scores`` against binary ``labels``.

    Raises ``ValueError`` when only one class is present (AUC undefined).
    Ties receive midranks, matching the standard definition.
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    positives = labels > 0.5
    n_pos = int(positives.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC requires both positive and negative samples")
    ranks = _midranks(scores)
    pos_rank_sum = ranks[positives].sum()
    u_statistic = pos_rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def _midranks(values):
    """1-based ranks with ties assigned the mean of their rank range."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def mean_domain_auc(per_domain_auc):
    """Average AUC across domains — the headline metric of Tables V-X."""
    values = list(per_domain_auc.values()) if isinstance(per_domain_auc, dict) else list(per_domain_auc)
    if not values:
        raise ValueError("no per-domain AUCs provided")
    return float(np.mean(values))
