"""``repro.metrics`` — AUC, the average-RANK metric, and evaluation reports."""

from .auc import auc_score, mean_domain_auc
from .gauc import gauc_score
from .ranking import average_rank
from .report import EvaluationReport, evaluate_bank

__all__ = [
    "auc_score",
    "gauc_score",
    "mean_domain_auc",
    "average_rank",
    "EvaluationReport",
    "evaluate_bank",
]
