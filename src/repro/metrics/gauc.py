"""Group AUC (GAUC) — the per-user refinement of AUC used widely in
industrial CTR evaluation.

GAUC computes an AUC per user (over that user's impressions) and averages
with impression-count weights; users whose impressions are single-class are
skipped, matching the standard definition.  It complements the paper's
per-domain AUC with a per-user view on the same predictions.
"""

from __future__ import annotations

import numpy as np

from .auc import auc_score

__all__ = ["gauc_score"]


def gauc_score(users, labels, scores, min_impressions=2):
    """Impression-weighted mean per-user AUC.

    Parameters
    ----------
    users, labels, scores:
        Aligned arrays over impressions.
    min_impressions:
        Users with fewer impressions are skipped (AUC meaningless).

    Raises ``ValueError`` when no user has a computable AUC.
    """
    users = np.asarray(users)
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if not (len(users) == len(labels) == len(scores)):
        raise ValueError("users, labels and scores must be aligned")

    order = np.argsort(users, kind="mergesort")
    sorted_users = users[order]
    boundaries = np.flatnonzero(np.diff(sorted_users)) + 1
    groups = np.split(order, boundaries)

    total_weight = 0.0
    total = 0.0
    for group in groups:
        if len(group) < min_impressions:
            continue
        group_labels = labels[group]
        if group_labels.min() > 0.5 or group_labels.max() <= 0.5:
            continue  # single-class user
        weight = len(group)
        total += weight * auc_score(group_labels, scores[group])
        total_weight += weight
    if total_weight == 0.0:
        raise ValueError("no user group with both classes and enough impressions")
    return total / total_weight
