"""Empirical verification of the DN theory (Section IV-C).

The Taylor analysis shows that, in expectation over shuffled domain orders,
one DN epoch descends ``Σ_i g_i`` *and* ascends the pairwise gradient
inner-products ``Σ_{i<j} <g_i, g_j>`` (the InnerGrad term, Eqs. 18-21).
These probes measure both quantities directly so experiments can check the
theory on real training runs:

* :func:`alignment_objective` — the paper's 𝒪_C (Eq. 9) at the current
  parameters;
* :func:`alignment_trajectory` — 𝒪_C and mean loss tracked across training
  epochs for any framework-style update loop.
"""

from __future__ import annotations

import numpy as np

from ..core.selection import model_split_auc
from ..core.trainer import compute_loss_gradient
from ..data.batching import full_batch
from .conflict import pairwise_inner_products, per_domain_gradients

__all__ = ["alignment_objective", "mean_domain_loss", "alignment_trajectory"]


def alignment_objective(model, dataset, rng, batch_size=512):
    """𝒪_C = Σ_{i≠j} <g_i, g_j> at the current parameters (Eq. 9)."""
    gradients = per_domain_gradients(model, dataset, rng, batch_size)
    inner = pairwise_inner_products(gradients)
    off_diagonal = ~np.eye(inner.shape[0], dtype=bool)
    return float(inner[off_diagonal].sum())


def mean_domain_loss(model, dataset, split="train"):
    """Mean full-batch loss over domains (the 𝒪_M descent target)."""
    total = 0.0
    for domain in dataset:
        batch = full_batch(getattr(domain, split), domain.index)
        loss, _ = compute_loss_gradient(model, batch)
        total += loss
    return total / dataset.n_domains


def alignment_trajectory(model, dataset, epoch_fn, epochs, rng,
                         batch_size=512):
    """Track loss / alignment / val AUC across training.

    ``epoch_fn(epoch_index)`` performs one training epoch, mutating
    ``model`` in place.  Returns a list of per-epoch records (the epoch-0
    record describes the initialization).
    """
    records = []

    def snapshot(epoch):
        records.append({
            "epoch": epoch,
            "mean_loss": mean_domain_loss(model, dataset),
            "alignment": alignment_objective(model, dataset, rng, batch_size),
            "val_auc": model_split_auc(model, dataset),
        })

    snapshot(0)
    for epoch in range(1, epochs + 1):
        epoch_fn(epoch)
        snapshot(epoch)
    return records
