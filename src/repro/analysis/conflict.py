"""Gradient-conflict probes (the phenomenon of Figure 3, quantified).

Domain conflict is defined in Section III-B: gradients from two domains
conflict when their inner product is negative.  These probes measure the
pairwise inner products / cosines of per-domain gradients at the current
parameters, letting experiments verify that (a) the synthetic datasets do
produce conflicting domains and (b) DN training reduces the conflict rate
relative to alternate training.
"""

from __future__ import annotations

import numpy as np

from ..core.trainer import compute_loss_gradient
from ..data.batching import sample_batch

__all__ = [
    "per_domain_gradients",
    "pairwise_inner_products",
    "pairwise_cosines",
    "conflict_rate",
    "conflict_report",
]


def per_domain_gradients(model, dataset, rng, batch_size=512, split="train"):
    """One flattened loss gradient per domain at the current parameters."""
    named = dict(model.named_parameters())
    flats = []
    for domain in dataset:
        table = getattr(domain, split)
        batch = sample_batch(table, domain.index, batch_size, rng)
        _, grads = compute_loss_gradient(model, batch)
        flat = np.concatenate([
            grads.get(name, np.zeros_like(param.data)).ravel()
            for name, param in named.items()
        ])
        flats.append(flat)
    return np.stack(flats)


def pairwise_inner_products(gradients):
    """Gram matrix of per-domain gradients."""
    return gradients @ gradients.T


def pairwise_cosines(gradients, eps=1e-12):
    """Cosine-similarity matrix of per-domain gradients."""
    norms = np.linalg.norm(gradients, axis=1, keepdims=True)
    normed = gradients / np.maximum(norms, eps)
    return normed @ normed.T


def conflict_rate(matrix):
    """Fraction of off-diagonal pairs with negative inner product."""
    n = matrix.shape[0]
    if n < 2:
        raise ValueError("need at least 2 domains to measure conflict")
    off_diagonal = ~np.eye(n, dtype=bool)
    return float((matrix[off_diagonal] < 0.0).mean())


def conflict_report(model, dataset, rng, batch_size=512, split="train"):
    """Summary statistics of inter-domain gradient geometry."""
    gradients = per_domain_gradients(model, dataset, rng, batch_size, split)
    inner = pairwise_inner_products(gradients)
    cosine = pairwise_cosines(gradients)
    n = inner.shape[0]
    off_diagonal = ~np.eye(n, dtype=bool)
    return {
        "conflict_rate": conflict_rate(inner),
        "mean_inner_product": float(inner[off_diagonal].mean()),
        "mean_cosine": float(cosine[off_diagonal].mean()),
        "n_domains": n,
    }
