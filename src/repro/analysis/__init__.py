"""``repro.analysis`` — gradient-conflict probes for Figure 3's phenomenon."""

from .innergrad import alignment_objective, alignment_trajectory, mean_domain_loss
from .conflict import (
    conflict_rate,
    conflict_report,
    pairwise_cosines,
    pairwise_inner_products,
    per_domain_gradients,
)

__all__ = [
    "per_domain_gradients",
    "pairwise_inner_products",
    "pairwise_cosines",
    "conflict_rate",
    "conflict_report",
    "alignment_objective",
    "alignment_trajectory",
    "mean_domain_loss",
]
