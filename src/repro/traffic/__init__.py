"""``repro.traffic`` — production-traffic harness for the serving tier.

PR 3 built the serving path and PR 5 the drifted stream it retrains on;
this package asks what happens when *production traffic* hits that path:

* :mod:`repro.traffic.tracegen` — seeded, replayable traffic traces:
  Zipf domain mix, diurnal rate curves, Poisson/bursty arrivals, plus an
  adapter replaying the drifted :mod:`repro.online.stream` as a trace;
* :mod:`repro.traffic.pool` — an N-process predictor pool attached
  read-only to one shared-memory snapshot arena (COW structure intact),
  with generation-tagged hot reload under load;
* :mod:`repro.traffic.admission` — per-domain SLOs, bounded queues and
  load-shedding policies with conservation-checked accounting;
* :mod:`repro.traffic.loadbench` — the ``traffic-bench`` harness behind
  ``python -m repro.cli traffic-bench``: saturation knee, overload SLO
  behavior, and pool/single-process bit-parity.
"""

from .admission import AdmissionConfig, AdmissionController, DomainSLO
from .loadbench import (
    ServiceTimeModel,
    calibrate_service_model,
    check_pool_parity,
    find_knee,
    measure_pool_capacity,
    render_traffic_bench,
    run_traffic_bench,
    simulate_replay,
    sweep_saturation,
    write_traffic_record,
)
from .pool import PoolError, PredictorPool, fork_available
from .tracegen import Trace, TraceConfig, generate_trace, trace_from_stream

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "DomainSLO",
    "ServiceTimeModel",
    "calibrate_service_model",
    "check_pool_parity",
    "find_knee",
    "measure_pool_capacity",
    "render_traffic_bench",
    "run_traffic_bench",
    "simulate_replay",
    "sweep_saturation",
    "write_traffic_record",
    "PoolError",
    "PredictorPool",
    "fork_available",
    "Trace",
    "TraceConfig",
    "generate_trace",
    "trace_from_stream",
]
