"""The traffic-bench harness: saturation knee, overload SLOs, pool parity.

Three questions a serving tier must answer before production traffic hits
it, each with its own measurement discipline:

1. **Where is the knee?**  Offered load is swept over the *same* request
   sequence (:meth:`~repro.traffic.tracegen.Trace.at_rate` re-paces the
   timestamps, nothing else) and each point reports achieved QPS,
   p50/p95/p99 of accepted requests, and shed fraction.  The knee is the
   largest offered rate the tier absorbs with <1% shedding while
   delivering ≥95% of it.  Latency is measured from the request's
   *intended arrival time* on the trace clock — the open-loop,
   coordinated-omission-correct definition: when the system falls behind,
   the backlog is charged to the requests that suffered it, instead of
   being silently absorbed by a stalled load generator.

2. **What happens past the knee?**  At 2x the knee the admission
   controller must convert overload into *shedding*, not latency: the
   bench pins that accepted-request p99 stays within the configured SLO
   and that the shed decisions are deterministic (the whole overload run
   replays bit-identically from the trace seed — the controller is
   RNG-free and the replay clock is virtual).

3. **Is the pool still the model?**  Multi-process responses must be
   bit-identical to the single-process :class:`~repro.serving.service
   .Predictor` — including across a hot reload published *mid-trace*,
   where each response is checked against the reference predictor of the
   generation it was actually scored under.

The sweep and overload phases run on a **virtual replay**: an
event-driven simulation over ``n_workers`` servers whose per-batch
service time is an affine model ``a + b * batch_size`` calibrated from
real ``predict_batch`` timings.  On the 1-CPU containers this repo
benches in, N real processes time-slice one core and a wall-clock sweep
would measure the scheduler, not the architecture; the virtual clock
keeps the sweep honest *and* seeded-deterministic.  The real pool is
still exercised — capacity per worker count and the parity/hot-reload
phases run against live forked workers — and the record labels which
numbers came from which mode.
"""

from __future__ import annotations

import json
import pathlib
import time
import zlib
from dataclasses import dataclass

import numpy as np

from ..models import build_model
from ..serving.bench import make_serving_dataset, train_space
from ..serving.service import Predictor
from ..serving.snapshots import SnapshotStore
from ..utils import profiling
from ..utils.tables import format_table
from .admission import AdmissionConfig, AdmissionController, DomainSLO
from .pool import PredictorPool, fork_available
from .tracegen import TraceConfig, generate_trace

__all__ = [
    "ServiceTimeModel",
    "calibrate_service_model",
    "simulate_replay",
    "sweep_saturation",
    "find_knee",
    "measure_pool_capacity",
    "check_pool_parity",
    "run_traffic_bench",
    "render_traffic_bench",
    "write_traffic_record",
]

DEFAULT_BENCH_PATH = "BENCH_serving.json"


# ----------------------------------------------------------------------
# Service-time model (drives the virtual replay)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceTimeModel:
    """Affine per-batch service time: ``base + per_row * batch_size``.

    The affine shape is what micro-batching exploits (PR 3's serve-bench:
    per-request cost falls as batches amortize the fixed prepare/forward
    overhead); two calibration points pin it exactly.
    """

    base_seconds: float
    per_row_seconds: float

    def __post_init__(self):
        if self.base_seconds <= 0 or self.per_row_seconds < 0:
            raise ValueError("service model coefficients must be positive")

    def service_seconds(self, batch_size):
        return self.base_seconds + self.per_row_seconds * batch_size

    def capacity_qps(self, n_workers, batch_size):
        """Steady-state throughput bound at a fixed dispatch batch size."""
        return n_workers * batch_size / self.service_seconds(batch_size)


def calibrate_service_model(predictor, users, items, domain, small=1,
                            large=32, repeats=5):
    """Fit :class:`ServiceTimeModel` from real ``predict_batch`` timings.

    Takes the *minimum* over repeats at each of two batch sizes (minimum,
    not mean: scheduler noise only ever adds time) and solves the 2x2
    affine system.
    """
    users = np.asarray(users, dtype=np.int64)
    items = np.asarray(items, dtype=np.int64)
    if len(users) < large:
        raise ValueError(f"need at least {large} calibration rows")

    def best_of(batch_size):
        elapsed = []
        for _ in range(repeats):
            start = time.perf_counter()
            predictor.predict_batch(
                users[:batch_size], items[:batch_size], domain
            )
            elapsed.append(time.perf_counter() - start)
        return min(elapsed)

    predictor.predict_batch(users[:large], items[:large], domain)  # warm up
    t_small = best_of(small)
    t_large = best_of(large)
    per_row = max(0.0, (t_large - t_small) / (large - small))
    base = max(1e-9, t_small - per_row * small)
    return ServiceTimeModel(base_seconds=base, per_row_seconds=per_row)


# ----------------------------------------------------------------------
# Virtual open-loop replay
# ----------------------------------------------------------------------
def simulate_replay(trace, service_model, n_workers=2, max_batch=32,
                    admission=None):
    """Event-driven open-loop replay of ``trace`` over ``n_workers`` servers.

    Arrivals are offered at their trace timestamps; whenever a worker is
    free and requests are queued, the admission controller dispatches one
    per-domain batch (oldest head first, deadline-shedding on the way).
    Latency of an accepted request = batch finish time minus the
    request's *intended arrival* — queueing delay is charged in full.

    Deterministic by construction: the trace is a pure function of its
    seed and both the controller and this loop are RNG-free, so the
    returned ``decision_crc32`` (a digest of every accept/dispatch/shed
    decision in order) is replayable bit-for-bit.
    """
    controller = AdmissionController(admission)
    workers = [0.0] * n_workers
    latencies = []
    digest = zlib.crc32(b"traffic-replay")
    # Plain floats end-to-end: numpy scalars would otherwise leak into
    # worker clocks and percentiles and break JSON serialization.
    times = [float(t) for t in trace.times]

    def dispatch_until(limit):
        nonlocal digest
        while controller.queued():
            worker = min(range(n_workers), key=workers.__getitem__)
            head = controller.head_arrival()
            now = max(workers[worker], head)
            if limit is not None and now >= limit:
                return
            taken = controller.take(max_batch, now)
            if taken is None:
                continue  # deadline shedding drained the queues
            domain, batch = taken
            finish = now + service_model.service_seconds(len(batch))
            workers[worker] = finish
            digest = zlib.crc32(
                f"d:{domain}:{len(batch)}:{batch[0]}".encode(), digest
            )
            for index in batch:
                latencies.append(float(finish - times[index]))

    for index in range(len(times)):
        dispatch_until(times[index])
        admitted = controller.offer(index, trace.domains[index], times[index])
        digest = zlib.crc32(
            f"o:{index}:{int(admitted)}".encode(), digest
        )
    dispatch_until(None)

    stats = controller.stats()
    makespan = max([trace.horizon] + workers)
    latencies_ms = [seconds * 1e3 for seconds in latencies]

    def quantile(q):
        return profiling.percentile(latencies_ms, q) if latencies_ms else None
    return {
        "mode": "virtual",
        "n_workers": n_workers,
        "max_batch": max_batch,
        "offered_qps": trace.offered_qps,
        "achieved_qps": stats["accepted"] / makespan if makespan > 0 else 0.0,
        "offered": stats["offered"],
        "accepted": stats["accepted"],
        "shed": stats["shed"],
        "shed_fraction": (
            stats["shed"] / stats["offered"] if stats["offered"] else 0.0
        ),
        "shed_by_reason": stats["shed_by_reason"],
        "per_domain": stats["per_domain"],
        "conserved": stats["conserved"],
        "p50_ms": quantile(0.50),
        "p95_ms": quantile(0.95),
        "p99_ms": quantile(0.99),
        "decision_crc32": digest,
    }


def sweep_saturation(trace, service_model, n_workers=2, max_batch=32,
                     admission=None, factors=(0.25, 0.5, 0.75, 0.9, 1.0,
                                              1.15, 1.35, 1.6)):
    """Replay the same request sequence at several offered rates.

    The sweep axis is anchored at the service model's steady-state
    capacity bound so the knee always sits inside the swept range.
    Returns the curve (ascending offered rate) with the knee annotated.
    """
    capacity = service_model.capacity_qps(n_workers, max_batch)
    curve = []
    for factor in sorted(factors):
        offered = capacity * factor
        point = simulate_replay(
            trace.at_rate(offered), service_model,
            n_workers=n_workers, max_batch=max_batch, admission=admission,
        )
        point["load_factor"] = factor
        curve.append(point)
    return {
        "capacity_bound_qps": capacity,
        "knee_qps": find_knee(curve),
        "curve": curve,
    }


def find_knee(curve, max_shed=0.01, latency_cap_ms=None):
    """The largest offered rate absorbed without material shedding.

    With bounded queues, overload *must* surface as shed fraction — the
    controller converts queue growth into drops — so the knee is where
    the shed fraction crosses ``max_shed``: the last sweep point at or
    under it, refined by interpolating the crossing toward the first
    point beyond.  ``latency_cap_ms`` optionally also disqualifies
    points whose accepted-request p99 exceeds the cap (for configs whose
    queues are deep enough to hide early saturation in latency).
    Goodput ratios are deliberately not used: on the short traces CI can
    afford, the drain tail inflates the makespan at *every* load level.
    """
    good = None
    first_bad = None
    for point in curve:
        ok = point["shed_fraction"] <= max_shed and (
            latency_cap_ms is None
            or point["p99_ms"] is None
            or point["p99_ms"] <= latency_cap_ms
        )
        if ok and first_bad is None:
            good = point
        elif not ok and good is not None and first_bad is None:
            first_bad = point
    if good is None:
        return None
    knee = good["offered_qps"]
    if first_bad is not None:
        rise = first_bad["shed_fraction"] - good["shed_fraction"]
        if rise > 0:
            span = first_bad["offered_qps"] - good["offered_qps"]
            knee += span * min(
                1.0, (max_shed - good["shed_fraction"]) / rise
            )
    return knee


# ----------------------------------------------------------------------
# Real-pool phases
# ----------------------------------------------------------------------
def _batched(trace, max_batch):
    """Per-domain batches in arrival order (closed-loop dispatch plan)."""
    pending = {}
    order = []
    batches = []
    for position in range(len(trace)):
        domain = int(trace.domains[position])
        if domain not in pending:
            pending[domain] = []
            order.append(domain)
        pending[domain].append(position)
        if len(pending[domain]) >= max_batch:
            batches.append((domain, pending.pop(domain)))
            order.remove(domain)
    for domain in order:
        batches.append((domain, pending[domain]))
    return batches


def measure_pool_capacity(pool, trace, max_batch=32, max_inflight=None):
    """Closed-loop throughput of a live pool over ``trace``'s requests.

    Closed loop — dispatch as fast as the pool absorbs work, bounded by
    ``max_inflight`` batches — measures *capacity*, deliberately ignoring
    the trace timestamps (those belong to the open-loop phases).
    """
    batches = _batched(trace, max_batch)
    if max_inflight is None:
        max_inflight = 2 * pool.n_workers
    done = 0
    start = time.perf_counter()
    for batch_id, (domain, positions) in enumerate(batches):
        while pool.inflight >= max_inflight:
            done += sum(
                len(batches[m[2]][1]) for m in pool.drain(expected=1)
            )
        pool.submit(
            batch_id, domain,
            trace.users[positions], trace.items[positions],
        )
    done += sum(len(batches[m[2]][1]) for m in pool.drain())
    elapsed = time.perf_counter() - start
    return {
        "mode": "real",
        "n_workers": pool.n_workers,
        "requests": done,
        "batches": len(batches),
        "elapsed_seconds": elapsed,
        "qps": done / elapsed if elapsed > 0 else 0.0,
    }


def check_pool_parity(pool, model, snapshots, trace, max_batch=32,
                      predictor_kwargs=None):
    """Bit-parity of pooled scoring across a hot reload under load.

    ``snapshots`` are published to the pool as successive generations;
    the trace's batches are split evenly across them, with each reload
    after the *n*-th chunk issued ``wait=False`` — in-band, while that
    chunk's batches are still queued at the workers.  Every response is
    then compared bitwise against a fresh single-process
    :class:`Predictor` pinned to the generation the response reports.
    """
    kwargs = dict(predictor_kwargs or {})
    batches = _batched(trace, max_batch)
    chunk = -(-len(batches) // len(snapshots))

    class _Pinned:
        def __init__(self, snapshot):
            self._snapshot = snapshot

        def current(self):
            return self._snapshot

    references = {}
    results = []
    for stage, snapshot in enumerate(snapshots):
        generation = pool.generation + 1
        references[generation] = Predictor(model, _Pinned(snapshot), **kwargs)
        # First publish waits (workers must attach before scoring);
        # later ones ride the queues behind in-flight batches.
        results.extend(pool.publish(snapshot, wait=stage == 0))
        for batch_id in range(stage * chunk, min((stage + 1) * chunk,
                                                 len(batches))):
            domain, positions = batches[batch_id]
            pool.submit(
                batch_id, domain,
                trace.users[positions], trace.items[positions],
            )
    results.extend(pool.drain())

    generations_seen = set()
    mismatches = 0
    for _, _, batch_id, generation, version, scores in results:
        generations_seen.add(generation)
        domain, positions = batches[batch_id]
        reference = references[generation]
        # The reference predictors share one model; a predictor's
        # loaded-state memo cannot see the others clobbering it, so force
        # a full reload before every reference score.
        reference.invalidate_caches()
        expected = reference.predict_batch(
            trace.users[positions], trace.items[positions], domain
        )
        if version != reference._store.current().version:
            mismatches += 1
        elif not np.array_equal(scores, np.asarray(expected)):
            mismatches += 1
    return {
        "ok": mismatches == 0 and generations_seen == set(references),
        "batches": len(results),
        "mismatches": mismatches,
        "generations": sorted(generations_seen),
    }


# ----------------------------------------------------------------------
# The bench
# ----------------------------------------------------------------------
def run_traffic_bench(worker_counts=(1, 2), n_requests=640, mean_qps=2000.0,
                      max_batch=32, seed=0, epochs=1, n_domains=4,
                      overload_factor=2.0, verbose=False, session=None):
    """Train, publish, sweep, overload, verify; returns the record dict.

    ``session`` (a :class:`repro.train.SessionConfig`) may override model
    architecture, seed and training hyper-parameters, as with serve-bench.
    """
    from ..core import TrainConfig

    model_name, model_kwargs = "mlp", {}
    if session is not None:
        seed = session.seed
        model_name = session.model
        model_kwargs = dict(session.model_kwargs)
    dataset = make_serving_dataset(n_domains=n_domains, seed=seed + 1)
    model = build_model(
        model_name, dataset,
        seed=seed if session is None else session.effective_model_seed,
        **model_kwargs,
    )
    config = session.train if session is not None else TrainConfig(
        epochs=epochs, batch_size=64, inner_steps=2, dr_steps=1, sample_k=1,
    )
    space = train_space(model, dataset, config, seed=seed)
    # A genuinely different second parameter space for the hot-reload
    # phase: different training seed, so generation attribution is
    # provable (identical spaces would make any generation "correct").
    space_reloaded = train_space(model, dataset, config, seed=seed + 101)

    store = SnapshotStore(keep=4)
    snapshot_a = store.publish(space)
    snapshot_b = store.publish(space_reloaded)

    duration = n_requests / mean_qps
    trace = generate_trace(TraceConfig(
        name="traffic-bench",
        n_domains=dataset.n_domains,
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        duration=duration,
        mean_qps=mean_qps,
        arrival="bursty",
        diurnal_amplitude=0.3,
        diurnal_period=duration,
        slot_seconds=duration / 64.0,
        seed=seed,
    ))

    # Calibrate the service-time model from the real single-process path.
    reference = Predictor(model, store)
    domain_hot = int(trace.domains[0]) if len(trace) else 0
    service_model = calibrate_service_model(
        reference, trace.users, trace.items, domain_hot,
    )

    # Phase 1: real-pool closed-loop capacity per worker count.
    capacity = {}
    parity = {"ok": None, "skipped": "fork unavailable"}
    if fork_available():
        for count in worker_counts:
            with PredictorPool(model, n_workers=count) as pool:
                pool.publish(store.current())
                capacity[f"workers={count}"] = measure_pool_capacity(
                    pool, trace, max_batch=max_batch,
                )
        # Phase 2: bit-parity across a hot reload under load.
        parity_workers = max(worker_counts)
        with PredictorPool(model, n_workers=parity_workers) as pool:
            parity = check_pool_parity(
                pool, model, [snapshot_a, snapshot_b], trace,
                max_batch=max_batch,
            )
            parity["n_workers"] = parity_workers

    # Phase 3: virtual saturation sweep (seeded-deterministic).
    sweep_workers = max(worker_counts)
    # The SLO scales with the measured service time (a wall-clock floor
    # would leave deadlines so lax that a short trace's transient
    # overload is fully absorbed by queueing and nothing ever sheds).
    # p99 >= 2.5x the max-batch service time guarantees the deadline
    # (0.6 * p99) plus one batch's service fits inside the SLO.
    slo_p99_ms = max(
        1.0, 4.0 * service_model.service_seconds(max_batch) * 1e3
    )
    slo = DomainSLO(p99_ms=slo_p99_ms, max_queue=4 * max_batch)
    admission = AdmissionConfig(policy="fair", default_slo=slo)
    saturation = sweep_saturation(
        trace, service_model, n_workers=sweep_workers,
        max_batch=max_batch, admission=admission,
    )

    # Phase 4: overload at 2x the knee — shed deterministically, keep
    # the accepted-request p99 inside the SLO.
    knee = saturation["knee_qps"]
    overload = None
    if knee is not None:
        overload_trace = trace.at_rate(knee * overload_factor)
        first = simulate_replay(
            overload_trace, service_model, n_workers=sweep_workers,
            max_batch=max_batch, admission=admission,
        )
        second = simulate_replay(
            overload_trace, service_model, n_workers=sweep_workers,
            max_batch=max_batch, admission=admission,
        )
        overload = dict(first)
        overload["slo_p99_ms"] = slo_p99_ms
        overload["deterministic"] = (
            first["decision_crc32"] == second["decision_crc32"]
        )
        overload["within_slo"] = bool(
            first["p99_ms"] is not None and first["p99_ms"] <= slo_p99_ms
        )
        overload["policy"] = admission.policy

    record = {
        "dataset": dataset.name,
        "n_domains": dataset.n_domains,
        "n_requests": len(trace),
        "mean_qps": mean_qps,
        "max_batch": max_batch,
        "seed": seed,
        "service_model": {
            "base_us": service_model.base_seconds * 1e6,
            "per_row_us": service_model.per_row_seconds * 1e6,
        },
        "capacity": capacity,
        "parity": parity,
        "saturation": saturation,
        "overload": overload,
    }
    if verbose:
        print(render_traffic_bench(record))
    return record


def render_traffic_bench(record):
    """Human-readable tables for one traffic-bench record."""
    out = []
    if record["capacity"]:
        rows = [
            [key, f"{entry['qps']:.1f}", str(entry["requests"]),
             f"{entry['elapsed_seconds'] * 1e3:.1f}"]
            for key, entry in record["capacity"].items()
        ]
        out.append(format_table(
            ["Pool", "QPS", "Requests", "Elapsed ms"], rows,
            title=f"traffic-bench capacity on {record['dataset']} "
                  "(closed loop, real processes)",
        ))
    saturation = record["saturation"]
    rows = [
        [
            f"{point['load_factor']:.2f}",
            f"{point['offered_qps']:.0f}",
            f"{point['achieved_qps']:.0f}",
            "-" if point["p99_ms"] is None else f"{point['p99_ms']:.2f}",
            f"{100 * point['shed_fraction']:.1f}%",
        ]
        for point in saturation["curve"]
    ]
    knee = saturation["knee_qps"]
    out.append(format_table(
        ["Load", "Offered QPS", "Achieved QPS", "p99 ms", "Shed"], rows,
        title="saturation sweep (virtual replay, "
              f"knee={'-' if knee is None else f'{knee:.0f}'} qps)",
    ))
    overload = record["overload"]
    if overload is not None:
        out.append(
            f"overload @{overload['offered_qps']:.0f} qps: "
            f"accepted p99 {overload['p99_ms']:.2f} ms "
            f"(SLO {overload['slo_p99_ms']:.0f} ms, "
            f"within={overload['within_slo']}), "
            f"shed {100 * overload['shed_fraction']:.1f}% "
            f"deterministic={overload['deterministic']}"
        )
    parity = record["parity"]
    out.append(
        f"pool parity: ok={parity['ok']} "
        f"(generations {parity.get('generations', [])})"
    )
    return "\n".join(out)


def write_traffic_record(record, path=DEFAULT_BENCH_PATH):
    """Merge ``record`` into ``benchmarks.traffic_bench`` at ``path``."""
    path = pathlib.Path(path)
    payload = {"benchmarks": {}}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {"benchmarks": {}}
    bench = payload.setdefault("benchmarks", {})
    bench["traffic_bench"] = record
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
