"""SLO-aware admission control: bounded queues and load shedding.

An overloaded predictor with an unbounded queue serves *nobody* within
SLO — queueing delay grows without bound and every response is late.
Admission control converts overload into a controlled trade: requests
beyond capacity are **shed** immediately (cheap, visible, accounted) so
the requests that are accepted still meet their latency target.

:class:`AdmissionController` owns per-domain FIFO queues bounded by
:class:`DomainSLO` limits, plus an optional shared budget across domains.
Three shedding policies cover the classic operating points:

``drop_tail``
    Each domain's queue has a hard bound; an arrival finding its queue
    (or the shared budget) full is shed.  Simplest and per-domain fair in
    isolation, but a hot domain can monopolize a shared budget.
``fair``
    On budget pressure the *longest* queue pays: the arrival is accepted
    by evicting the newest request of the longest queue (max–min
    fairness pressure), unless the arrival's own domain is the longest —
    then the arrival itself is shed.  Head domains cannot starve tail
    domains.
``priority``
    Domains carry tiers (lower = more important).  On budget pressure an
    arrival evicts the newest request of the worst strictly-lower-tier
    nonempty queue; same-or-better tiers are never preempted.

Deadline shedding is orthogonal: at dispatch time, requests whose queue
age already exceeds the domain's ``deadline_ms`` are shed rather than
scored — scoring them would spend capacity on a response the caller has
already written off, which is exactly how overload cascades.

Accounting is conservative by construction and the test suite pins the
invariant: ``offered == accepted + shed + queued`` at every instant
(``accepted`` = handed to a scorer; after a drain, ``queued == 0``).
The controller is deliberately RNG-free — given the same sequence of
``offer``/``take`` calls it makes identical decisions, which is what
makes overload runs replayable end-to-end from a trace seed.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

__all__ = ["DomainSLO", "AdmissionConfig", "AdmissionController"]

_POLICIES = ("drop_tail", "fair", "priority")
_SHED_REASONS = ("queue_full", "budget", "evicted", "deadline")


@dataclass(frozen=True)
class DomainSLO:
    """Per-domain service-level objective and queue bound.

    ``p99_ms`` is the latency target for *accepted* requests; the queue
    bound and dispatch deadline are what enforce it: a request can wait
    at most ``deadline_ms`` (default: 60% of the target, leaving headroom
    for service time) before it is shed instead of served late.
    """

    p99_ms: float = 50.0
    max_queue: int = 64
    tier: int = 1
    deadline_ms: float | None = None

    def __post_init__(self):
        if self.p99_ms <= 0:
            raise ValueError("p99_ms must be positive")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when set")

    @property
    def deadline_seconds(self):
        deadline = (
            self.deadline_ms if self.deadline_ms is not None
            else 0.6 * self.p99_ms
        )
        return deadline * 1e-3


class AdmissionConfig:
    """Admission policy plus the SLO map driving it."""

    def __init__(self, policy="drop_tail", default_slo=None, domain_slos=None,
                 total_queue=None, shed_deadline=True):
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown policy {policy!r} (choose from {_POLICIES})"
            )
        self.policy = policy
        self.default_slo = default_slo if default_slo is not None else DomainSLO()
        self.domain_slos = dict(domain_slos or {})
        if total_queue is not None and total_queue < 1:
            raise ValueError("total_queue must be >= 1 when set")
        self.total_queue = total_queue
        self.shed_deadline = bool(shed_deadline)

    def slo(self, domain):
        return self.domain_slos.get(domain, self.default_slo)


class _Pending:
    __slots__ = ("index", "domain", "arrival")

    def __init__(self, index, domain, arrival):
        self.index = index
        self.domain = domain
        self.arrival = arrival


class AdmissionController:
    """Bounded per-domain queues with policy-driven load shedding."""

    def __init__(self, config=None):
        self.config = config if config is not None else AdmissionConfig()
        self._queues = OrderedDict()   # domain -> deque[_Pending]
        self.offered = 0
        self.accepted = 0              # dispatched to a scorer
        self.shed = 0
        self.shed_by_reason = {reason: 0 for reason in _SHED_REASONS}
        self.per_domain = {}           # domain -> {"offered","accepted","shed"}

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def offer(self, index, domain, now):
        """Admit request ``index`` for ``domain`` or shed it.

        Returns ``True`` when the request entered a queue.  ``now`` is
        whatever clock the caller replays on (wall or virtual); the
        controller only ever compares durations against it.
        """
        domain = int(domain)
        self.offered += 1
        counters = self._domain_counters(domain)
        counters["offered"] += 1
        queue = self._queues.setdefault(domain, deque())
        slo = self.config.slo(domain)
        if len(queue) >= slo.max_queue:
            self._shed_arrival(domain, "queue_full")
            return False
        if self._over_budget():
            if not self._make_room(domain):
                self._shed_arrival(domain, "budget")
                return False
        queue.append(_Pending(index, domain, now))
        return True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def take(self, max_batch, now):
        """Pop up to ``max_batch`` requests of one domain for scoring.

        The domain with the oldest head request goes first (global FIFO
        at batch granularity, per-domain batches because every row of a
        batch must score under the same Θ_i).  Deadline-expired requests
        are shed on the way out.  Returns ``(domain, [indices])`` or
        ``None`` when nothing is ready.
        """
        if self.config.shed_deadline:
            self._shed_expired(now)
        oldest_domain = None
        oldest_arrival = None
        for domain, queue in self._queues.items():
            if not queue:
                continue
            if oldest_arrival is None or queue[0].arrival < oldest_arrival:
                oldest_arrival = queue[0].arrival
                oldest_domain = domain
        if oldest_domain is None:
            return None
        queue = self._queues[oldest_domain]
        batch = []
        while queue and len(batch) < max_batch:
            batch.append(queue.popleft().index)
        self.accepted += len(batch)
        self._domain_counters(oldest_domain)["accepted"] += len(batch)
        return oldest_domain, batch

    def queued(self):
        """Requests currently admitted but not yet dispatched."""
        return sum(len(queue) for queue in self._queues.values())

    def oldest_wait(self, now):
        """Age of the oldest queued request (0 when empty)."""
        head = self.head_arrival()
        if head is None:
            return 0.0
        return now - head

    def head_arrival(self):
        """Arrival time of the oldest queued request (None when empty).

        The replay simulator uses this to advance its virtual clock: an
        idle worker's next possible dispatch instant is
        ``max(worker_free, head_arrival())``.
        """
        arrivals = [q[0].arrival for q in self._queues.values() if q]
        return min(arrivals) if arrivals else None

    # ------------------------------------------------------------------
    # Policy internals
    # ------------------------------------------------------------------
    def _over_budget(self):
        budget = self.config.total_queue
        return budget is not None and self.queued() >= budget

    def _make_room(self, arriving_domain):
        """Try to evict one queued request in favor of the arrival."""
        policy = self.config.policy
        if policy == "drop_tail":
            return False
        if policy == "fair":
            lengths = {
                domain: len(queue)
                for domain, queue in self._queues.items() if queue
            }
            if not lengths:
                return False
            longest = max(lengths, key=lambda d: (lengths[d], d))
            arriving_len = lengths.get(arriving_domain, 0)
            # +1 counts the arrival itself: evicting from an equally
            # long queue would just shuffle the pain, not balance it.
            if lengths[longest] <= arriving_len + 1:
                return False
            self._evict_newest(longest)
            return True
        assert policy == "priority"
        arriving_tier = self.config.slo(arriving_domain).tier
        victim, victim_tier = None, arriving_tier
        for domain, queue in self._queues.items():
            if not queue:
                continue
            tier = self.config.slo(domain).tier
            # Strictly worse tier (higher number) than any found so far.
            if tier > victim_tier:
                victim, victim_tier = domain, tier
        if victim is None:
            return False
        self._evict_newest(victim)
        return True

    def _evict_newest(self, domain):
        self._queues[domain].pop()
        self._record_shed(domain, "evicted")

    def _shed_arrival(self, domain, reason):
        self._record_shed(domain, reason)

    def _shed_expired(self, now):
        for domain, queue in self._queues.items():
            deadline = self.config.slo(domain).deadline_seconds
            while queue and now - queue[0].arrival > deadline:
                queue.popleft()
                self._record_shed(domain, "deadline")

    def _record_shed(self, domain, reason):
        self.shed += 1
        self.shed_by_reason[reason] += 1
        self._domain_counters(domain)["shed"] += 1

    def _domain_counters(self, domain):
        counters = self.per_domain.get(domain)
        if counters is None:
            counters = self.per_domain[domain] = {
                "offered": 0, "accepted": 0, "shed": 0,
            }
        return counters

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stats(self):
        """Counters plus the conservation identity the tests pin."""
        queued = self.queued()
        return {
            "policy": self.config.policy,
            "offered": self.offered,
            "accepted": self.accepted,
            "shed": self.shed,
            "queued": queued,
            "shed_by_reason": dict(self.shed_by_reason),
            "per_domain": {
                domain: dict(counters)
                for domain, counters in sorted(self.per_domain.items())
            },
            "conserved": self.offered == self.accepted + self.shed + queued,
        }
