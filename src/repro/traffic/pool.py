"""Multi-process predictor pool over one shared-memory snapshot.

One Python process tops out around the serve-bench's single-process QPS;
"heavy traffic from millions of users" needs N scoring processes.  The
pool forks ``n_workers`` children, each running the *unchanged*
:class:`~repro.serving.service.Predictor` — the same row path, the same
caches — against a :class:`~repro.serving.snapshots.SharedSnapshotArena`:
every published generation is materialized **once** into a shared-memory
segment (θ_S stored once, zero-delta domains aliasing it, exactly the COW
structure of the in-process store) and mapped zero-copy, read-only by
every worker.  Because the bytes and the code path are identical, pooled
responses are bit-identical to the single-process serving path — the
parity property PR 3 established survives the process boundary.

Hot reload under load: :meth:`PredictorPool.publish` materializes the
next generation's segment, then broadcasts a reload message through each
worker's task queue.  The flip is therefore *in-band*: batches enqueued
before the reload score under the old generation, batches after it under
the new one, and every response carries its ``(generation, version)`` tag
so callers can verify against the right reference.  Old segments are
unlinked only after every worker acknowledged the flip.

Transport is deliberately boring: one task pipe per worker (reloads need
a broadcast), one shared result queue (its feeder thread keeps workers
from blocking on a full pipe), numpy batches pickled across.  Per-batch
IPC cost is amortized by micro-batching upstream — the load bench
dispatches admission-controlled per-domain batches, not single rows.
"""

from __future__ import annotations

import os
import queue as queue_module
import traceback
from multiprocessing import get_context

import numpy as np

from ..serving.service import Predictor
from ..serving.snapshots import SharedSnapshotArena
from ..utils import profiling

__all__ = ["PoolError", "PredictorPool", "fork_available"]


def fork_available():
    """Whether the platform supports the fork start method the pool needs."""
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


class PoolError(RuntimeError):
    """A pool worker failed; carries the remote traceback text."""


class _WorkerStore:
    """SnapshotStore facade over the worker's attached arena.

    ``Predictor`` only ever calls ``current()``; ``flip`` swaps the
    attached generation between batches (the worker loop is
    single-threaded, so a batch never straddles generations).
    """

    def __init__(self):
        self._arena = None
        self._retired = []

    def current(self):
        if self._arena is None:
            raise LookupError("no snapshot attached yet")
        return self._arena.snapshot

    @property
    def generation(self):
        return self._arena.generation if self._arena is not None else None

    def flip(self, manifest):
        previous, self._arena = self._arena, SharedSnapshotArena.attach(manifest)
        if previous is not None:
            self._retired.append(previous)
        # Retire older mappings whose views have died (the predictor's
        # caches were invalidated before the flip, so normally all of
        # them close on the first try).
        self._retired = [
            arena for arena in self._retired if not arena.close()
        ]

    def detach(self):
        for arena in self._retired:
            arena.close()
        if self._arena is not None:
            self._arena.close()


def _worker_main(worker_id, tasks, results, model, predictor_kwargs):
    """Forked child: attach, score, flip generations, report errors."""
    store = _WorkerStore()
    predictor = Predictor(model, store, **predictor_kwargs)
    try:
        while True:
            message = tasks.recv()
            kind = message[0]
            if kind == "stop":
                results.put(("stopped", worker_id))
                break
            if kind == "reload":
                manifest = message[1]
                predictor.invalidate_caches()
                store.flip(manifest)
                results.put(("reloaded", worker_id, manifest["generation"]))
            elif kind == "score":
                _, batch_id, domain, users, items = message
                generation = store.generation
                version = store.current().version
                scores = predictor.predict_batch(users, items, domain)
                results.put((
                    "scores", worker_id, batch_id, generation, version,
                    np.asarray(scores, dtype=np.float64),
                ))
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown pool message {kind!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - shutdown races
        pass
    except Exception:
        results.put(("error", worker_id, traceback.format_exc()))
    finally:
        store.detach()
        tasks.close()


class PredictorPool:
    """N forked predictor processes sharing one snapshot arena.

    Usage::

        pool = PredictorPool(model, n_workers=4)
        pool.start()
        pool.publish(store.current())            # generation 1
        pool.submit(batch_id=0, domain=2, users=u, items=i)
        for result in pool.drain(expected=1):
            ...  # ("scores", worker, batch_id, generation, version, scores)
        pool.shutdown()

    ``model`` is inherited by the forked children (copy-on-write); the
    parent's copy is never touched by pool scoring.
    """

    def __init__(self, model, n_workers=2, use_row_cache=True,
                 static_cache_capacity=256, dynamic_cache_capacity=2048,
                 field_map=None):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if not fork_available():
            raise PoolError(
                "PredictorPool requires the fork start method (POSIX); "
                "shared-memory attachment from spawned children would "
                "fight the resource tracker"
            )
        self._model = model
        self.n_workers = int(n_workers)
        self._predictor_kwargs = {
            "use_row_cache": use_row_cache,
            "static_cache_capacity": static_cache_capacity,
            "dynamic_cache_capacity": dynamic_cache_capacity,
            "field_map": field_map,
        }
        self._ctx = get_context("fork")
        self._procs = []
        self._task_pipes = []
        self._results = None
        self._generation = 0
        self._arenas = {}            # generation -> owner-side arena
        self._pending_acks = {}      # generation -> set(worker ids)
        self._next_worker = 0
        self._inflight = 0
        self.started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self.started:
            return self
        # Start the resource tracker in the parent BEFORE forking: children
        # then inherit one shared tracker, so their attach-time shared_memory
        # registrations land in the same cache the owner's unlink clears.
        # A worker that lazily spawns its own tracker would hold a stale
        # entry forever and warn "leaked shared_memory objects" at exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._results = self._ctx.Queue()
        for worker_id in range(self.n_workers):
            parent_end, child_end = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, child_end, self._results, self._model,
                      self._predictor_kwargs),
                daemon=True,
            )
            proc.start()
            child_end.close()
            self._task_pipes.append(parent_end)
            self._procs.append(proc)
        self.started = True
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        return False

    def shutdown(self, timeout=10.0):
        if not self.started:
            return
        for pipe in self._task_pipes:
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()
                proc.join(timeout)
        for pipe in self._task_pipes:
            pipe.close()
        self._results.close()
        self._results.join_thread()
        for arena in self._arenas.values():
            arena.unlink()
        self._arenas.clear()
        self._procs, self._task_pipes = [], []
        self.started = False

    # ------------------------------------------------------------------
    # Publishing (hot reload)
    # ------------------------------------------------------------------
    @property
    def generation(self):
        return self._generation

    def publish(self, snapshot, wait=True):
        """Materialize ``snapshot`` as the next generation and flip workers.

        With ``wait=True`` blocks until every worker acknowledged the
        flip (score results arriving meanwhile are buffered and returned).
        With ``wait=False`` — hot reload *under load* — the reload rides
        each worker's task queue behind whatever batches are already
        queued; acks are collected during normal result draining and the
        superseded segment is unlinked once the last worker flipped.
        Returns the buffered score results (empty list for ``wait=False``).
        """
        if not self.started:
            raise PoolError("pool is not started")
        self._generation += 1
        arena = SharedSnapshotArena.materialize(snapshot, self._generation)
        self._arenas[self._generation] = arena
        self._pending_acks[self._generation] = set(range(self.n_workers))
        for pipe in self._task_pipes:
            pipe.send(("reload", arena.manifest))
        profiling.count("traffic.pool_publish")
        if not wait:
            return []
        buffered = []
        while self._pending_acks.get(self._generation):
            message = self._next_result(timeout=30.0)
            if message[0] == "scores":
                self._inflight -= 1
                buffered.append(message)
            # acks/errors are handled inside _next_result
        return buffered

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def submit(self, batch_id, domain, users, items, worker=None):
        """Dispatch one homogeneous-domain batch; returns the worker id.

        Round-robin by default — deterministic, and with the admission
        controller upstream the batches are already sized for balance.
        """
        if not self.started:
            raise PoolError("pool is not started")
        if self._generation == 0:
            raise PoolError("publish a snapshot before scoring")
        if worker is None:
            worker = self._next_worker
            self._next_worker = (self._next_worker + 1) % self.n_workers
        users = np.ascontiguousarray(users, dtype=np.int64)
        items = np.ascontiguousarray(items, dtype=np.int64)
        self._task_pipes[worker].send(
            ("score", batch_id, int(domain), users, items)
        )
        self._inflight += 1
        return worker

    @property
    def inflight(self):
        """Dispatched score batches whose results have not been drained."""
        return self._inflight

    def poll_results(self):
        """Non-blocking drain: every score result currently available."""
        out = []
        while True:
            try:
                message = self._results.get_nowait()
            except queue_module.Empty:
                return out
            handled = self._handle_control(message)
            if not handled:
                self._inflight -= 1
                out.append(message)

    def drain(self, expected=None, timeout=30.0):
        """Blocking drain of ``expected`` score results (default: all
        in-flight batches)."""
        expected = self._inflight if expected is None else int(expected)
        out = []
        while len(out) < expected:
            message = self._next_result(timeout=timeout)
            if message[0] == "scores":
                self._inflight -= 1
                out.append(message)
        return out

    def score(self, users, items, domain):
        """Synchronous convenience: one batch, one worker, its scores."""
        self.submit(-1, domain, users, items)
        (message,) = self.drain(expected=1)
        return message[5]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_result(self, timeout):
        try:
            message = self._results.get(timeout=timeout)
        except queue_module.Empty:
            raise PoolError(
                f"no pool result within {timeout}s "
                f"({self._inflight} batches in flight)"
            ) from None
        if self._handle_control(message):
            return message
        return message

    def _handle_control(self, message):
        """Process control traffic; True when ``message`` was control."""
        kind = message[0]
        if kind == "scores":
            return False
        if kind == "reloaded":
            _, worker_id, generation = message
            acks = self._pending_acks.get(generation)
            if acks is not None:
                acks.discard(worker_id)
                if not acks:
                    del self._pending_acks[generation]
                    self._retire_generations(keep=generation)
            return True
        if kind == "error":
            raise PoolError(f"worker {message[1]} failed:\n{message[2]}")
        if kind == "stopped":
            return True
        raise PoolError(f"unknown pool result {kind!r}")  # pragma: no cover

    def _retire_generations(self, keep):
        """Unlink every fully superseded segment older than ``keep``.

        A generation may only be destroyed once no worker can still flip
        to it — i.e. once a *newer* generation has been acknowledged by
        every worker (workers score on their attached generation between
        the publish and their flip).
        """
        for generation in sorted(self._arenas):
            if generation >= keep:
                continue
            if any(g <= generation for g in self._pending_acks):
                continue  # pragma: no cover - defensive; acks are ordered
            self._arenas.pop(generation).unlink()
            profiling.count("traffic.pool_segment_retired")

    def worker_pids(self):
        return [proc.pid for proc in self._procs]

    def stats(self):
        return {
            "n_workers": self.n_workers,
            "generation": self._generation,
            "inflight": self._inflight,
            "segments": {
                generation: arena.nbytes
                for generation, arena in sorted(self._arenas.items())
            },
            "pids": self.worker_pids(),
            "parent_pid": os.getpid(),
        }
