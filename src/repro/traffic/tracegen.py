"""Seeded, replayable production-traffic traces.

A :class:`Trace` is what the serving tier actually faces: a totally
ordered sequence of arrival-timestamped ``(t, user, item, domain)``
requests.  The generator models the three properties of Taobao-style
mixed-domain traffic that a uniform synthetic loop cannot (Section IV-E
serves hundreds of domains whose request mix is anything but flat):

* **Zipf domain mix** — request domains follow a Zipf-like law, so a few
  head domains dominate while tail domains trickle (the serving-side
  analogue of Tables II–IV's imbalance); user and item ids are
  heavy-tailed the same way, which is the regime the serve-side static
  cache tier is built for.
* **Diurnal rate curve** — the instantaneous arrival rate follows a
  sinusoidal day curve around the configured mean, so a trace has genuine
  peak and trough load, not one flat rate.
* **Poisson / burst arrival** — within the rate curve, arrivals are an
  inhomogeneous Poisson process; ``arrival="bursty"`` modulates the rate
  with a seeded two-state (quiet/burst) Markov chain, producing the
  short load spikes that admission control exists to absorb.

Everything is derived from ``spawn_rng(seed, name, ...)`` streams, so a
trace is a pure function of its config: replays, sweeps at other offered
rates (:meth:`Trace.at_rate` rescales time, keeping the request sequence
identical), and multi-process benchmarks all see byte-identical traffic.

:func:`trace_from_stream` adapts the drifted click stream of
:mod:`repro.online.stream` into a serving trace: event order, domain mix
and item popularity (including concept/popularity drift across windows)
come from the stream; this module only assigns Poisson arrival times.
That is the covariate-shift realism EDDA's domain-alignment analysis
argues for — the per-domain *mix* drifts, not just the volume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..utils.seeding import spawn_rng

__all__ = ["TraceConfig", "Trace", "generate_trace", "trace_from_stream"]


def _zipf_probs(n, exponent):
    """Zipf-like pmf over ``n`` ranks: p(r) ∝ (r + 1)^-exponent."""
    weights = (np.arange(n) + 1.0) ** -float(exponent)
    return weights / weights.sum()


@dataclass(frozen=True)
class TraceConfig:
    """Full recipe for a replayable traffic trace."""

    name: str = "traffic"
    n_domains: int = 4
    n_users: int = 400
    n_items: int = 200
    duration: float = 1.0            # trace horizon in seconds
    mean_qps: float = 2000.0         # time-averaged offered rate
    domain_skew: float = 1.1         # Zipf exponent over domain ranks
    user_skew: float = 1.05
    item_skew: float = 1.05
    diurnal_amplitude: float = 0.0   # 0 = flat; 0.5 = ±50% around the mean
    diurnal_period: float = 1.0      # seconds per simulated "day"
    arrival: str = "poisson"         # "poisson" | "bursty"
    burst_multiplier: float = 6.0    # burst-state rate vs quiet-state rate
    burst_fraction: float = 0.1      # long-run fraction of time in burst
    burst_mean_length: float = 0.02  # mean burst dwell in seconds
    slot_seconds: float = 0.005      # rate-curve discretization
    seed: int = 0

    def __post_init__(self):
        if self.n_domains < 1:
            raise ValueError("need at least one domain")
        if self.duration <= 0 or self.mean_qps <= 0:
            raise ValueError("duration and mean_qps must be positive")
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.slot_seconds <= 0 or self.slot_seconds > self.duration:
            raise ValueError("slot_seconds must be in (0, duration]")
        if self.arrival == "bursty":
            if not 0.0 < self.burst_fraction < 1.0:
                raise ValueError("burst_fraction must be in (0, 1)")
            if self.burst_multiplier <= 1.0:
                raise ValueError("burst_multiplier must exceed 1")
            if self.burst_mean_length < self.slot_seconds:
                raise ValueError("burst_mean_length must cover >= one slot")


@dataclass(frozen=True)
class Trace:
    """An arrival-timestamped request stream (sorted by ``times``)."""

    name: str
    times: np.ndarray      # float64 seconds, non-decreasing
    users: np.ndarray      # int64
    items: np.ndarray      # int64
    domains: np.ndarray    # int64
    horizon: float         # trace duration in seconds
    n_domains: int
    n_users: int
    n_items: int
    seed: int = 0

    def __len__(self):
        return len(self.times)

    @property
    def offered_qps(self):
        """Realized time-averaged offered load."""
        if self.horizon <= 0:
            return 0.0
        return len(self.times) / self.horizon

    def at_rate(self, mean_qps):
        """The same request sequence, re-paced to a new offered rate.

        Timestamps (and the horizon) scale by ``offered/new``, so a load
        sweep replays *identical* work at each offered point — latency
        differences are attributable to load alone, not to a different
        request mix.
        """
        if mean_qps <= 0:
            raise ValueError("mean_qps must be positive")
        factor = self.offered_qps / float(mean_qps)
        return replace(
            self, times=self.times * factor, horizon=self.horizon * factor
        )

    def head(self, n):
        """The first ``n`` requests (their original timestamps)."""
        n = min(int(n), len(self.times))
        return replace(
            self,
            times=self.times[:n], users=self.users[:n],
            items=self.items[:n], domains=self.domains[:n],
        )

    def per_domain_counts(self):
        """``{domain: request count}`` over the whole trace."""
        counts = np.bincount(self.domains, minlength=self.n_domains)
        return {int(d): int(c) for d, c in enumerate(counts)}

    def interarrival_seconds(self):
        return np.diff(self.times)


def _slot_rates(config):
    """Per-slot arrival rates (requests/second), normalized to the mean.

    The diurnal curve and the burst chain multiply into one rate profile;
    both are normalized so the *realized* time-average matches
    ``mean_qps`` — "offered load" stays an honest axis on the bench plots.
    """
    n_slots = max(1, int(np.ceil(config.duration / config.slot_seconds)))
    mids = (np.arange(n_slots) + 0.5) * config.slot_seconds
    shape = 1.0 + config.diurnal_amplitude * np.sin(
        2.0 * np.pi * mids / config.diurnal_period
    )
    if config.arrival == "bursty":
        rng = spawn_rng(config.seed, config.name, "bursts")
        # Two-state Markov chain sampled per slot; dwell times are
        # geometric with the configured mean burst length and a quiet
        # length chosen so the long-run burst occupancy matches
        # burst_fraction.
        p_exit_burst = config.slot_seconds / config.burst_mean_length
        quiet_mean = config.burst_mean_length * (
            (1.0 - config.burst_fraction) / config.burst_fraction
        )
        p_enter_burst = config.slot_seconds / quiet_mean
        state = rng.random() < config.burst_fraction
        modulation = np.empty(n_slots)
        for slot in range(n_slots):
            modulation[slot] = config.burst_multiplier if state else 1.0
            flip = p_exit_burst if state else p_enter_burst
            if rng.random() < min(1.0, flip):
                state = not state
        shape = shape * modulation
    shape = shape / shape.mean()
    return shape * config.mean_qps


def generate_trace(config):
    """Materialize the trace a :class:`TraceConfig` describes."""
    rates = _slot_rates(config)
    rng = spawn_rng(config.seed, config.name, "arrivals")
    counts = rng.poisson(rates * config.slot_seconds)
    total = int(counts.sum())
    starts = np.arange(len(rates)) * config.slot_seconds
    times = np.repeat(starts, counts) + np.concatenate(
        [np.sort(rng.random(int(c))) * config.slot_seconds for c in counts]
    ) if total else np.empty(0)
    times = np.minimum(times, config.duration)

    mix = spawn_rng(config.seed, config.name, "mix")
    domains = mix.choice(
        config.n_domains, size=total, p=_zipf_probs(
            config.n_domains, config.domain_skew
        ),
    ).astype(np.int64)
    users = mix.choice(
        config.n_users, size=total, p=_zipf_probs(
            config.n_users, config.user_skew
        ),
    ).astype(np.int64)
    items = mix.choice(
        config.n_items, size=total, p=_zipf_probs(
            config.n_items, config.item_skew
        ),
    ).astype(np.int64)
    return Trace(
        name=config.name,
        times=np.asarray(times, dtype=np.float64),
        users=users, items=items, domains=domains,
        horizon=float(config.duration),
        n_domains=config.n_domains,
        n_users=config.n_users,
        n_items=config.n_items,
        seed=config.seed,
    )


def trace_from_stream(stream, mean_qps, windows=None, seed=0):
    """Replay a drifted :class:`~repro.online.stream.EventStream` as a trace.

    Event *content* (order, users, items, domains — including the Zipf
    rate skew and the concept/popularity drift across micro-epochs) comes
    verbatim from the stream; only arrival *times* are assigned here, as
    a Poisson process at ``mean_qps`` (seeded exponential gaps).  The
    returned trace therefore puts the serving tier under the exact
    traffic distribution the continual-learning pipeline trained against.

    ``stream`` may be a live :class:`~repro.online.stream.EventStream` or
    a recorded :class:`~repro.online.stream.StreamArchive` — both expose
    ``config`` and ``window(i)``, and the arrival RNG is seeded from the
    config, so a trace built from an archive is byte-identical to one
    built from the live stream it recorded.  When the archive holds only
    a subset of windows, the default replays exactly those.
    """
    if mean_qps <= 0:
        raise ValueError("mean_qps must be positive")
    config = stream.config
    if windows is None:
        indices = getattr(stream, "window_indices", None)
        if indices is None:
            indices = range(config.n_windows)
    else:
        indices = windows
    users, items, domains = [], [], []
    for index in indices:
        window = stream.window(index)
        users.append(window.users)
        items.append(window.items)
        domains.append(window.domains)
    users = np.concatenate(users).astype(np.int64)
    items = np.concatenate(items).astype(np.int64)
    domains = np.concatenate(domains).astype(np.int64)
    rng = spawn_rng(seed, config.name, "trace-arrivals")
    gaps = rng.exponential(1.0 / float(mean_qps), size=len(users))
    times = np.cumsum(gaps)
    return Trace(
        name=f"{config.name}_replay",
        times=np.asarray(times, dtype=np.float64),
        users=users, items=items, domains=domains,
        horizon=float(times[-1]) if len(times) else 0.0,
        n_domains=config.n_domains,
        n_users=config.n_users,
        n_items=config.n_items,
        seed=seed,
    )
