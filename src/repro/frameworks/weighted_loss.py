"""Weighted Loss (Kendall et al., CVPR 2018) adapted to MDR.

Each domain's loss is weighted by a learned homoscedastic-uncertainty
term: ``L = Σ_d exp(−s_d) · L_d + s_d`` with trainable log-variances
``s_d``.  As the paper discusses (Section V-G), this balances losses but
cannot remove gradient conflict, and tends to over-weight easy domains.
"""

from __future__ import annotations

import numpy as np

from ..core.selection import BestTracker, model_split_auc
from ..data.batching import sample_batch
from ..nn import Parameter
from ..nn.optim import make_optimizer
from ..utils.seeding import spawn_rng
from .base import LearningFramework, SingleModelBank

__all__ = ["WeightedLoss"]


class WeightedLoss(LearningFramework):
    """Uncertainty-weighted joint training across domains."""

    name = "Weighted Loss"

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "weighted-loss", dataset.name)
        log_vars = Parameter(np.zeros(dataset.n_domains))
        optimizer = make_optimizer(
            config.inner_optimizer,
            list(model.parameters()) + [log_vars],
            config.inner_lr,
        )

        tracker = BestTracker()
        steps_per_epoch = config.joint_steps_per_epoch(dataset)
        for _ in range(config.epochs):
            for _ in range(steps_per_epoch):
                total = None
                for domain in dataset:
                    batch = sample_batch(
                        domain.train, domain.index, config.batch_size, rng
                    )
                    weight = (-log_vars[domain.index]).exp()
                    term = model.loss(batch) * weight + log_vars[domain.index]
                    total = term if total is None else total + term
                model.zero_grad()
                log_vars.grad = None
                total.backward()
                optimizer.step()
            tracker.update(model_split_auc(model, dataset), model.state_dict())

        model.load_state_dict(tracker.best)
        return SingleModelBank(model)
