"""First-order MAML (Finn et al., ICML 2017) adapted to MDR.

Each domain is a task.  Its training data is split into a *support* and a
*query* half; the inner loop adapts a copy of the parameters on the support
set and the meta-gradient is the query-set gradient at the adapted
parameters (the first-order approximation).  At deployment each domain
adapts on its support set, as MAML prescribes.

The paper finds MAML the weakest framework on Taobao-10 precisely because
the support/query split "cannot fully utilize the training sets" — a
property this implementation shares by design.
"""

from __future__ import annotations

import numpy as np

from ..core.selection import BestTracker, finetune_with_selection, model_split_auc
from ..core.trainer import compute_loss_gradient, train_steps
from ..data.batching import sample_batch
from ..nn.optim import SGD, make_optimizer

from ..utils.seeding import spawn_rng
from .base import LearningFramework, StateBank

__all__ = ["MAML", "support_query_split"]


def support_query_split(table, rng, support_frac=0.5):
    """Split a table into disjoint support and query halves."""
    n = len(table)
    if n < 2:
        raise ValueError("need at least 2 rows for a support/query split")
    order = rng.permutation(n)
    n_support = max(1, min(n - 1, int(round(n * support_frac))))
    return table.subset(order[:n_support]), table.subset(order[n_support:])


class MAML(LearningFramework):
    """First-order MAML over domains-as-tasks."""

    name = "MAML"

    def __init__(self, adapt_steps=3, support_frac=0.5):
        self.adapt_steps = adapt_steps
        self.support_frac = support_frac

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "maml", dataset.name)
        splits = {
            domain.index: support_query_split(domain.train, rng, self.support_frac)
            for domain in dataset
        }
        meta_state = model.state_dict()
        named = dict(model.named_parameters())
        meta_optimizer = make_optimizer(
            config.inner_optimizer, model.parameters(), config.inner_lr
        )

        tracker = BestTracker()
        steps_per_epoch = config.joint_steps_per_epoch(dataset)
        meta_steps = config.epochs * steps_per_epoch
        for step in range(meta_steps):
            meta_grad = None
            for domain in dataset:
                support, query = splits[domain.index]
                model.load_state_dict(meta_state)
                inner_opt = SGD(model.parameters(), config.inner_lr)
                train_steps(model, support, domain.index, inner_opt, rng,
                            config.batch_size, self.adapt_steps)
                query_batch = sample_batch(
                    query, domain.index, config.batch_size, rng
                )
                _, grads = compute_loss_gradient(model, query_batch)
                full = {
                    name: grads.get(name, np.zeros_like(value))
                    for name, value in meta_state.items()
                }
                meta_grad = full if meta_grad is None else {
                    name: meta_grad[name] + full[name] for name in meta_grad
                }
            # First-order meta update: apply the averaged query gradient at
            # the pre-adaptation parameters through the meta optimizer.
            model.load_state_dict(meta_state)
            model.zero_grad()
            for name, param in named.items():
                param.grad = meta_grad[name] / dataset.n_domains
            meta_optimizer.step()
            meta_state = model.state_dict()
            if (step + 1) % max(steps_per_epoch, 1) == 0:
                tracker.update(model_split_auc(model, dataset), meta_state)

        meta_state = tracker.best if tracker.has_best else meta_state

        # Deployment: adapt per domain on its support set, with per-domain
        # validation selection.
        domain_states = {}
        for domain in dataset:
            support, _ = splits[domain.index]
            model.load_state_dict(meta_state)
            inner_opt = SGD(model.parameters(), config.inner_lr)
            domain_states[domain.index] = finetune_with_selection(
                model, domain, inner_opt, rng,
                config.batch_size, config.finetune_steps, table=support,
            )

        return StateBank(model, domain_states, default_state=meta_state)
