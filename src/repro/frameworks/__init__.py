"""``repro.frameworks`` — model-agnostic learning frameworks.

The baselines of Table X (Alternate, Alternate+Finetune, Weighted Loss,
PCGrad, MAML, Reptile, MLDG) plus the deployment bank abstractions.  The
paper's own frameworks (DN, DR, MAMDR) live in :mod:`repro.core` and are
re-exported by :func:`framework_by_name` for experiment code.
"""

from __future__ import annotations

from .alternate import Alternate, AlternateFinetune, Separate
from .base import DomainModelBank, LearningFramework, SingleModelBank, StateBank
from .maml import MAML, support_query_split
from .mldg import MLDG
from .pcgrad import PCGrad, project_conflicts
from .reptile import Reptile
from .weighted_loss import WeightedLoss

__all__ = [
    "DomainModelBank",
    "SingleModelBank",
    "StateBank",
    "LearningFramework",
    "Alternate",
    "AlternateFinetune",
    "Separate",
    "WeightedLoss",
    "PCGrad",
    "project_conflicts",
    "MAML",
    "support_query_split",
    "Reptile",
    "MLDG",
    "framework_by_name",
    "available_frameworks",
]


def _core():
    # Imported lazily to avoid a circular import (core depends on
    # frameworks.base for the bank classes).
    from ..core import MAMDR, DomainNegotiation, DomainRegularization

    return MAMDR, DomainNegotiation, DomainRegularization


def _builders():
    MAMDR, DomainNegotiation, DomainRegularization = _core()
    return {
        "alternate": Alternate,
        "alternate_finetune": AlternateFinetune,
        "separate": Separate,
        "weighted_loss": WeightedLoss,
        "pcgrad": PCGrad,
        "maml": MAML,
        "reptile": Reptile,
        "mldg": MLDG,
        "dn": DomainNegotiation,
        "dr": DomainRegularization,
        "mamdr": MAMDR,
    }


def framework_by_name(name, **kwargs):
    """Instantiate a learning framework by registry name."""
    builders = _builders()
    try:
        cls = builders[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown framework {name!r}; expected one of {sorted(builders)}"
        ) from None
    return cls(**kwargs)


def available_frameworks():
    """Names accepted by :func:`framework_by_name`."""
    return sorted(_builders())
