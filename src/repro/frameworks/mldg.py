"""MLDG (Li et al., AAAI 2018): meta-learning for domain generalization.

Each meta-step splits the domains into meta-train and meta-test sets,
takes a virtual gradient step on the meta-train loss, and adds the
meta-test gradient evaluated *after* that virtual step (first-order
approximation of the MLDG objective ``L_train(θ) + β L_test(θ − α∇L_train)``).
"""

from __future__ import annotations

import numpy as np

from ..core.selection import BestTracker, model_split_auc
from ..core.trainer import compute_loss_gradient
from ..data.batching import sample_batch
from ..nn.optim import make_optimizer
from ..nn.state import state_add
from ..utils.seeding import spawn_rng
from .base import LearningFramework, SingleModelBank

__all__ = ["MLDG"]


class MLDG(LearningFramework):
    """Meta-Learning Domain Generalization, first-order variant."""

    name = "MLDG"

    def __init__(self, meta_test_weight=1.0, n_meta_test=1):
        self.meta_test_weight = meta_test_weight
        self.n_meta_test = n_meta_test

    def fit(self, model, dataset, config, seed=0):
        if dataset.n_domains < 2:
            raise ValueError("MLDG needs at least 2 domains")
        rng = spawn_rng(seed, "mldg", dataset.name)
        optimizer = make_optimizer(
            config.inner_optimizer, model.parameters(), config.inner_lr
        )
        named = dict(model.named_parameters())

        tracker = BestTracker()
        steps_per_epoch = config.joint_steps_per_epoch(dataset)
        for _ in range(config.epochs):
            for _ in range(steps_per_epoch):
                indices = rng.permutation(dataset.n_domains)
                meta_test = indices[:self.n_meta_test]
                meta_train = indices[self.n_meta_test:]

                train_grad = self._mean_gradient(model, dataset, meta_train,
                                                 config, rng)
                # Virtual step θ' = θ − α ∇L_train(θ).
                origin = model.state_dict()
                model.load_state_dict(
                    state_add(origin, train_grad, scale=-config.inner_lr)
                )
                test_grad = self._mean_gradient(model, dataset, meta_test,
                                                config, rng)
                model.load_state_dict(origin)

                model.zero_grad()
                for name, param in named.items():
                    param.grad = (
                        train_grad[name]
                        + self.meta_test_weight * test_grad[name]
                    )
                optimizer.step()
            tracker.update(model_split_auc(model, dataset), model.state_dict())

        model.load_state_dict(tracker.best)
        return SingleModelBank(model)

    def _mean_gradient(self, model, dataset, domain_indices, config, rng):
        total = None
        for index in domain_indices:
            domain = dataset.domain(int(index))
            batch = sample_batch(domain.train, domain.index, config.batch_size, rng)
            _, grads = compute_loss_gradient(model, batch)
            full = {
                name: grads.get(name, np.zeros_like(param.data))
                for name, param in model.named_parameters()
            }
            total = full if total is None else {
                name: total[name] + full[name] for name in total
            }
        count = max(len(list(domain_indices)), 1)
        return {name: value / count for name, value in total.items()}
