"""Traditional learning frameworks: Alternate, Alternate+Finetune, Separate.

* **Alternate** trains one model on all domains one-by-one (Figure 5(b));
  the paper's default baseline training scheme.
* **Alternate + Finetune** then finetunes a copy per domain, the classical
  way of obtaining domain-specific models.
* **Separate** trains an independent model per domain from scratch
  (Figure 1(b); "RAW+Separate" in Table VIII) — it overfits sparse domains.

All frameworks keep the snapshot with the best mean validation AUC
(per-domain validation AUC for per-domain states).
"""

from __future__ import annotations

from ..core.selection import (
    BestTracker,
    domain_split_auc,
    finetune_with_selection,
    model_split_auc,
)
from ..core.trainer import make_inner_optimizer, train_steps
from ..nn.state import clone_state
from ..utils.seeding import spawn_rng
from .base import LearningFramework, SingleModelBank, StateBank

__all__ = ["Alternate", "AlternateFinetune", "Separate"]


class Alternate(LearningFramework):
    """One model, domains visited one-by-one every epoch."""

    name = "Alternate"

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "alternate", dataset.name)
        optimizer = make_inner_optimizer(model, config)
        tracker = BestTracker()
        for _ in range(config.epochs):
            order = list(range(dataset.n_domains))
            rng.shuffle(order)
            for domain_index in order:
                domain = dataset.domain(domain_index)
                train_steps(model, domain.train, domain_index, optimizer, rng,
                            config.batch_size, config.inner_steps)
            tracker.update(model_split_auc(model, dataset), model.state_dict())
        model.load_state_dict(tracker.best)
        return SingleModelBank(model)


class AlternateFinetune(LearningFramework):
    """Alternate training followed by per-domain finetuning."""

    name = "Alternate+Finetune"

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "alt-finetune", dataset.name)
        Alternate().fit(model, dataset, config, seed=seed)
        base_state = model.state_dict()

        domain_states = {}
        for domain in dataset:
            model.load_state_dict(base_state)
            optimizer = make_inner_optimizer(model, config)
            domain_states[domain.index] = finetune_with_selection(
                model, domain, optimizer, rng,
                config.batch_size, config.finetune_steps,
            )

        return StateBank(model, domain_states, default_state=base_state)


class Separate(LearningFramework):
    """An independent model per domain (no sharing at all)."""

    name = "Separate"

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "separate", dataset.name)
        init_state = clone_state(model.state_dict())

        domain_states = {}
        for domain in dataset:
            model.load_state_dict(init_state)
            optimizer = make_inner_optimizer(model, config)
            tracker = BestTracker()
            tracker.update(domain_split_auc(model, domain), model.state_dict())
            for _ in range(config.epochs):
                train_steps(model, domain.train, domain.index, optimizer, rng,
                            config.batch_size, config.inner_steps)
                tracker.update(domain_split_auc(model, domain), model.state_dict())
            domain_states[domain.index] = tracker.best

        return StateBank(model, domain_states, default_state=init_state)
