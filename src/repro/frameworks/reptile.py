"""Reptile (Nichol et al., 2018) over domains-as-tasks.

Repeatedly: sample a domain, run a few inner SGD-style steps on it, and
move the meta-parameters toward the adapted parameters.  As Section IV-C
notes, Reptile maximizes gradient inner-products *within* a task; DN's key
departure is running the inner trajectory *across* domains, which is what
mitigates inter-domain conflict.
"""

from __future__ import annotations

from ..core.selection import BestTracker, model_split_auc
from ..core.trainer import make_inner_optimizer, train_steps
from ..nn.state import state_interpolate
from ..utils.seeding import spawn_rng
from .base import LearningFramework, SingleModelBank

__all__ = ["Reptile"]


class Reptile(LearningFramework):
    """First-order meta-learning with per-task inner trajectories."""

    name = "Reptile"

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "reptile", dataset.name)
        meta_state = model.state_dict()
        tracker = BestTracker()

        rounds_per_epoch = dataset.n_domains
        for _ in range(config.epochs):
            for _ in range(rounds_per_epoch):
                domain = dataset.domain(int(rng.integers(dataset.n_domains)))
                model.load_state_dict(meta_state)
                optimizer = make_inner_optimizer(model, config)
                train_steps(model, domain.train, domain.index, optimizer, rng,
                            config.batch_size, config.inner_steps)
                meta_state = state_interpolate(
                    meta_state, model.state_dict(), config.outer_lr
                )
            model.load_state_dict(meta_state)
            tracker.update(model_split_auc(model, dataset), meta_state)

        model.load_state_dict(tracker.best)
        return SingleModelBank(model)
