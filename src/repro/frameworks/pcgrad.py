"""PCGrad (Yu et al., NeurIPS 2020) applied to multi-domain training.

When two domains' gradients conflict (negative inner product), each is
projected onto the normal plane of the other before averaging.  This
removes the destructive component but costs ``O(n^2)`` pairwise projections
per step — the scalability ceiling the paper contrasts DN against.
"""

from __future__ import annotations

import numpy as np

from ..core.selection import BestTracker, model_split_auc
from ..core.trainer import compute_loss_gradient
from ..data.batching import sample_batch
from ..nn.optim import make_optimizer
from ..utils.seeding import spawn_rng
from .base import LearningFramework, SingleModelBank

__all__ = ["PCGrad", "project_conflicts"]


def project_conflicts(gradients, rng):
    """Apply PCGrad projection to a list of per-domain gradient states.

    For every gradient ``g_i`` and every other ``g_j`` (in random order),
    if ``<g_i, g_j> < 0`` replace ``g_i ← g_i − (<g_i,g_j>/||g_j||²) g_j``.
    Returns the summed projected gradient as a single state dict.
    """
    if not gradients:
        raise ValueError("no gradients to project")
    keys = list(gradients[0])
    flats = [np.concatenate([g[k].ravel() for k in keys]) for g in gradients]
    projected = [flat.copy() for flat in flats]

    for i in range(len(projected)):
        order = rng.permutation(len(flats))
        for j in order:
            if j == i:
                continue
            dot = float(projected[i] @ flats[j])
            if dot < 0.0:
                norm_sq = float(flats[j] @ flats[j])
                if norm_sq > 0.0:
                    projected[i] = projected[i] - (dot / norm_sq) * flats[j]

    combined_flat = np.sum(projected, axis=0)
    combined = {}
    offset = 0
    for key in keys:
        shape = gradients[0][key].shape
        size = gradients[0][key].size
        combined[key] = combined_flat[offset:offset + size].reshape(shape)
        offset += size
    return combined


class PCGrad(LearningFramework):
    """Projected-conflict gradient descent across domains."""

    name = "PCGrad"

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "pcgrad", dataset.name)
        optimizer = make_optimizer(
            config.inner_optimizer, model.parameters(), config.inner_lr
        )
        named = dict(model.named_parameters())

        tracker = BestTracker()
        steps_per_epoch = config.joint_steps_per_epoch(dataset)
        for _ in range(config.epochs):
            for _ in range(steps_per_epoch):
                per_domain = []
                for domain in dataset:
                    batch = sample_batch(
                        domain.train, domain.index, config.batch_size, rng
                    )
                    _, grads = compute_loss_gradient(model, batch)
                    # Parameters untouched by this domain contribute zeros.
                    full = {
                        name: grads.get(name, np.zeros_like(param.data))
                        for name, param in named.items()
                    }
                    per_domain.append(full)
                combined = project_conflicts(per_domain, rng)
                model.zero_grad()
                for name, param in named.items():
                    param.grad = combined[name]
                optimizer.step()
            tracker.update(model_split_auc(model, dataset), model.state_dict())

        model.load_state_dict(tracker.best)
        return SingleModelBank(model)
