"""Learning-framework abstractions.

A *learning framework* (in the paper's sense — Table X) is a model-agnostic
training procedure: it receives an arbitrary CTR model plus a multi-domain
dataset and produces a deployable predictor for every domain.  Deployment
artifacts are represented as a :class:`DomainModelBank`:

* frameworks that train one set of weights (Alternate, PCGrad, Reptile, ...)
  return a :class:`SingleModelBank`;
* frameworks that end with per-domain parameters (finetuning, MAMDR's
  ``Θ_i = θ_S + θ_i``) return a :class:`StateBank` that swaps the right
  state in before scoring.
"""

from __future__ import annotations

from ..nn.state import clone_state

__all__ = [
    "DomainModelBank",
    "SingleModelBank",
    "StateBank",
    "LearningFramework",
]


class DomainModelBank:
    """A deployable set of per-domain predictors."""

    def scores(self, batch):
        """Click scores for a homogeneous-domain batch (numpy array)."""
        raise NotImplementedError


class SingleModelBank(DomainModelBank):
    """All domains served by the same weights."""

    def __init__(self, model):
        self.model = model

    def scores(self, batch):
        return self.model.predict(batch)


class StateBank(DomainModelBank):
    """One parameter state per domain, applied to a shared model skeleton.

    This mirrors the paper's serving architecture: a single model structure
    with the global feature storage, plus per-domain parameters swapped in
    (Figure 2).  States for unseen domains fall back to ``default_state``.
    """

    def __init__(self, model, domain_states, default_state=None):
        self.model = model
        # Domains sharing a state object (a clustered space's tail, or the
        # no-DR "same state everywhere" bank) share one clone — the bank
        # costs one copy per *distinct* state, not per domain.
        memo = {}
        self.domain_states = {}
        for domain, state in domain_states.items():
            cloned = memo.get(id(state))
            if cloned is None:
                cloned = clone_state(state)
                memo[id(state)] = cloned
            self.domain_states[domain] = cloned
        self.default_state = (
            clone_state(default_state) if default_state is not None else None
        )

    def state_for(self, domain):
        state = self.domain_states.get(domain, self.default_state)
        if state is None:
            raise KeyError(f"no parameters stored for domain {domain}")
        return state

    def scores(self, batch):
        self.model.load_state_dict(self.state_for(batch.domain))
        return self.model.predict(batch)


class LearningFramework:
    """Base class: ``fit`` trains a model on a dataset and returns a bank."""

    #: human-readable name used in benchmark tables
    name = "framework"

    def fit(self, model, dataset, config, seed=0):
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"
