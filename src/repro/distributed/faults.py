"""Deterministic fault injection for the simulated PS-Worker runtime.

The production system of Section IV-E must survive worker preemption,
lost messages and stale pushes.  A :class:`FaultPlan` describes, as pure
data, which of those failures a simulated run should experience; the
transport layer (:mod:`repro.distributed.transport`) consults the plan on
every message.  All randomness is drawn from generators spawned off the
plan's own seed via :func:`repro.utils.seeding.spawn_rng`, never from the
training RNG stream — so a faulty run perturbs *delivery*, not the math,
and a plan with all rates at zero leaves training byte-identical to a run
with no plan at all.

Fault taxonomy (one decision per message):

``DELIVER``
    Normal delivery.
``DROP``
    The request is lost before reaching the server; the server never sees
    it.  The client observes an error and retries.
``TIMEOUT``
    The server processes the request but the *reply* is lost.  The client
    cannot distinguish this from a drop — which is exactly why pushes
    carry request ids and the server deduplicates them.
``DUPLICATE``
    The request is delivered twice (an at-least-once network re-send).
    The second delivery of a push must be a no-op on the server.

Independently of the per-message draw, a plan can schedule hard *worker
crashes* (``crash_after``: the worker dies when it sends its N-th message,
mid-epoch) and *slow workers* (a fixed virtual delay added to every
message), which is what drives heartbeat-based eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType

from ..utils.seeding import spawn_rng

__all__ = [
    "DELIVER",
    "DROP",
    "TIMEOUT",
    "DUPLICATE",
    "FaultPlan",
    "WorkerCrashed",
]

# Message-level fault actions (plain strings so they serialize trivially).
DELIVER = "deliver"
DROP = "drop"
TIMEOUT = "timeout"
DUPLICATE = "duplicate"


class WorkerCrashed(RuntimeError):
    """A simulated worker process died (preemption) mid-epoch."""

    def __init__(self, worker_id, message_index):
        super().__init__(
            f"worker {worker_id!r} crashed on its message #{message_index}"
        )
        self.worker_id = worker_id
        self.message_index = message_index


def _frozen_mapping(mapping):
    return MappingProxyType({int(k): v for k, v in dict(mapping or {}).items()})


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of injected faults.

    Parameters
    ----------
    seed:
        Base seed for every fault decision.  Two runs with the same plan
        experience the same faults at the same points.
    drop_rate / timeout_rate / duplicate_rate:
        Per-message probabilities of the corresponding action.  Their sum
        must stay ≤ 1; the remainder is normal delivery.
    slow_workers:
        ``{worker_id: virtual_seconds}`` added to every message the worker
        sends (drives heartbeat-timeout eviction of stragglers).
    crash_after:
        ``{worker_id: n}`` — the worker raises :class:`WorkerCrashed` when
        it is about to send its ``n``-th message (1-based), i.e. somewhere
        mid-epoch.  Crashed workers never come back (preemption).
    """

    seed: int = 0
    drop_rate: float = 0.0
    timeout_rate: float = 0.0
    duplicate_rate: float = 0.0
    slow_workers: dict = field(default_factory=dict)
    crash_after: dict = field(default_factory=dict)

    def __post_init__(self):
        for name in ("drop_rate", "timeout_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        total = self.drop_rate + self.timeout_rate + self.duplicate_rate
        if total > 1.0:
            raise ValueError(
                f"fault rates sum to {total} > 1; they are exclusive outcomes"
            )
        # Normalize mapping keys (JSON configs arrive with string keys) and
        # freeze them so the plan stays value-like despite the dict fields.
        object.__setattr__(
            self, "slow_workers",
            _frozen_mapping({
                k: float(v) for k, v in dict(self.slow_workers or {}).items()
            }),
        )
        object.__setattr__(
            self, "crash_after",
            _frozen_mapping({
                k: int(v) for k, v in dict(self.crash_after or {}).items()
            }),
        )

    @classmethod
    def none(cls):
        """A plan that injects nothing (identical behavior, small overhead)."""
        return cls()

    # ------------------------------------------------------------------
    # Decision points, all deterministic in (seed, worker_id, message #)
    # ------------------------------------------------------------------
    def channel_rng(self, worker_id):
        """The per-channel generator all message-level draws come from."""
        return spawn_rng(self.seed, "faults", "channel", worker_id)

    def retry_rng(self, worker_id):
        """The per-client generator retry-backoff jitter comes from."""
        return spawn_rng(self.seed, "faults", "retry", worker_id)

    def decide(self, rng):
        """Draw one fault action for the next message."""
        if not (self.drop_rate or self.timeout_rate or self.duplicate_rate):
            return DELIVER
        u = rng.random()
        if u < self.drop_rate:
            return DROP
        if u < self.drop_rate + self.timeout_rate:
            return TIMEOUT
        if u < self.drop_rate + self.timeout_rate + self.duplicate_rate:
            return DUPLICATE
        return DELIVER

    def delay_for(self, worker_id):
        """Virtual per-message delay for a slow worker (0.0 otherwise)."""
        return self.slow_workers.get(worker_id, 0.0)

    def crashes_at(self, worker_id, message_index):
        """Whether the worker dies when sending message ``message_index``."""
        threshold = self.crash_after.get(worker_id)
        return threshold is not None and message_index >= threshold

    def as_dict(self):
        """JSON-ready representation (inverse of ``FaultPlan(**d)``)."""
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "timeout_rate": self.timeout_rate,
            "duplicate_rate": self.duplicate_rate,
            "slow_workers": dict(self.slow_workers),
            "crash_after": dict(self.crash_after),
        }
