"""Worker role of the PS-Worker architecture (Figure 6).

Each worker owns a shard of domains, its own model replica and inner-loop
optimizer.  Per epoch it (2) pulls dense parameters from the PS, (3) runs
the MAMDR/DN inner loop on its shard — fetching embedding rows through the
static/dynamic cache on demand — and (4) pushes the outer-loop delta
``Θ~ − Θ`` back to the PS.

All PS traffic flows through a :class:`~repro.distributed.transport.
PSClient` over a message channel, so it can be delayed, dropped, retried
and deduplicated by the fault-injection harness.  Workers additionally
send heartbeats (one at epoch start, one after every domain) that drive
the cluster's eviction monitor.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..data.batching import iter_minibatches
from ..nn.compile import active_executor, compile_context
from ..nn.layers import Embedding
from ..nn.optim import make_optimizer
from .cache import EmbeddingCache
from .ps import ParameterServer
from .transport import DirectChannel, PSClient

__all__ = ["Worker", "embedding_parameter_names", "embedding_field_map"]


def embedding_parameter_names(model):
    """Dotted names of all embedding-table weights in a model."""
    names = []
    for module_name, module in model.named_modules():
        if isinstance(module, Embedding):
            prefix = module_name + "." if module_name else ""
            names.append(prefix + "weight")
    return names


def embedding_field_map(model):
    """Map embedding weight names to the batch field that indexes them.

    The convention is structural: embedding modules whose name mentions
    ``user`` are indexed by ``batch.users``, ``item`` by ``batch.items``.
    """
    mapping = {}
    for name in embedding_parameter_names(model):
        if "user" in name:
            mapping[name] = "users"
        elif "item" in name:
            mapping[name] = "items"
        else:
            raise ValueError(
                f"cannot infer batch field for embedding {name!r}; "
                "pass an explicit field map"
            )
    return mapping


class Worker:
    """One simulated worker machine.

    ``ps`` is normally a :class:`~repro.distributed.transport.PSClient`;
    passing a raw :class:`~repro.distributed.ps.ParameterServer` is a
    deprecated shim that wraps it in an in-process channel.
    """

    def __init__(self, worker_id, model, domain_indices, ps, config,
                 field_map=None):
        if isinstance(ps, ParameterServer):
            warnings.warn(
                "constructing a Worker with a raw ParameterServer is "
                "deprecated; pass a transport.PSClient (or use "
                "repro.train.Session) so PS traffic goes through a "
                "failable channel",
                DeprecationWarning, stacklevel=2,
            )
            ps = PSClient(DirectChannel(ps), worker_id)
        self.worker_id = worker_id
        self.model = model
        self.domain_indices = list(domain_indices)
        self.client = ps
        self.config = config
        #: epochs this worker completed (pull→train→push round trips).
        self.epochs_run = 0
        #: scheduler-level liveness (cleared when the simulated process dies).
        self.alive = True
        #: set by the cluster's heartbeat monitor when it evicts this worker.
        self.evicted = False
        self.field_map = (
            field_map if field_map is not None else embedding_field_map(model)
        )
        unknown = set(self.field_map) - set(self._embedding_names())
        if unknown:
            raise KeyError(
                f"field map references non-embedding tables: {sorted(unknown)}"
            )
        self.caches = {
            name: EmbeddingCache(self.client, name) for name in self.field_map
        }
        self.optimizer = make_optimizer(
            config.inner_optimizer, model.parameters(), config.inner_lr
        )
        self._named = dict(model.named_parameters())

    def _embedding_names(self):
        return embedding_parameter_names(self.model)

    def run_epoch(self, dataset, rng):
        """One inner loop over this worker's shard; pushes the delta.

        Raises :class:`~repro.distributed.faults.WorkerCrashed` when the
        fault plan kills this worker mid-epoch, and
        :class:`~repro.distributed.transport.DeliveryFailed` when the PS
        stays unreachable through every retry — the cluster treats both as
        a dead worker.
        """
        self.client.heartbeat()
        static_dense = self.client.pull_dense()
        for name, value in static_dense.items():
            param = self._named[name]
            # The worker is the PS deployment's optimizer-equivalent; it
            # rebinds buffers between graphs, never mid-graph.
            # lint: allow[data-mutation]
            param.data = value.copy()
            param.bump_version()

        order = list(self.domain_indices)
        rng.shuffle(order)
        with compile_context(getattr(self.config, "compile_steps", None)):
            for domain_index in order:
                domain = dataset.domain(domain_index)
                for batch in iter_minibatches(
                    domain.train, domain_index, self.config.batch_size,
                    rng=rng, max_batches=self.config.inner_steps,
                ):
                    self._train_batch(batch)
                self.client.heartbeat()

        dense_delta = {
            name: self._named[name].data - static_dense[name]
            for name in static_dense
        }
        embedding_deltas = {
            name: cache.deltas() for name, cache in self.caches.items()
        }
        self.client.push_delta(dense_delta, embedding_deltas)
        for cache in self.caches.values():
            cache.clear()
        self.epochs_run += 1

    def _train_batch(self, batch):
        touched = self._materialize_rows(batch)
        executor = active_executor(self.model)
        if executor is not None:
            loss_value = executor.step(batch, self.optimizer)
        else:
            # lint: allow[eager-inner-loop] — this IS the eager fallback.
            loss = self.model.loss(batch)
            self.model.zero_grad()
            loss.backward()
            self.optimizer.step()
            loss_value = loss.item()
        self._writeback_rows(touched)
        return loss_value


    def _materialize_rows(self, batch):
        """Fetch the embedding rows this batch touches into the model."""
        touched = {}
        for name, field in self.field_map.items():
            ids = np.unique(getattr(batch, field))
            rows = self.caches[name].fetch(ids)
            param = self._named[name]
            # Row materialization from the embedding cache happens before
            # the batch's graph is built.
            # lint: allow[data-mutation]
            param.data[ids] = rows
            param.bump_version()
            touched[name] = ids
        return touched

    def _writeback_rows(self, touched):
        """Record updated rows into the dynamic cache."""
        for name, ids in touched.items():
            self.caches[name].update(ids, self._named[name].data[ids])

    def cache_stats(self):
        return {
            name: {"hits": cache.hits, "misses": cache.misses,
                   "hit_rate": cache.hit_rate}
            for name, cache in self.caches.items()
        }

    def transport_stats(self):
        """The client's delivery counters (retries, dedups, rejections)."""
        return dict(self.client.counters)
