"""Multi-core domain parallelism over the PS-Worker transport API.

MAMDR's inner loops are embarrassingly parallel across domains: one DN
round visits every domain independently between outer syncs, and each
DR round touches only one target's delta.  This module fans that work
out across **real worker processes** (``fork`` start method, so replicas
and the dataset are inherited copy-on-write — nothing is pickled on the
way in) while keeping every PS interaction on the PR-4 transport surface:

* :class:`PipeChannel` is a :class:`~repro.distributed.transport.Channel`
  whose ``call`` crosses a ``multiprocessing`` pipe; the driver process
  answers with the real :class:`~repro.distributed.ps.ParameterServer`
  message handler, so the wire protocol is byte-for-byte the one the
  in-process simulation uses.
* :func:`parallel_dn_epoch` runs one bulk-synchronous DN round: every
  worker pulls the same PS snapshot, replays the compiled step tape over
  its domain shard locally, and pushes its outer delta (Eq. 3) back for
  the barrier apply — the same semantics as ``SimulatedCluster``'s
  ``sync`` mode, now on separate cores.
* :func:`parallel_dr_rounds` maps DR targets over the pool; each
  target's RNG derives from ``(seed, "pdr", target)`` alone, so results
  are byte-identical for every worker count (the n_workers=1 fast path
  runs in-process and is the reference).

With ``n_workers=1`` (or when ``fork`` is unavailable) both entry points
degrade to the exact sequential code paths — no processes, no pipes.
"""

from __future__ import annotations

import os
import traceback
from multiprocessing import connection, get_context

from ..core.negotiation import domain_negotiation_epoch
from ..core.regularization import domain_regularization_round
from ..utils import profiling
from ..utils.seeding import spawn_rng
from .cluster import shard_domains
from .ps import ParameterServer
from .transport import Channel, PSClient
from .worker import Worker, embedding_field_map, embedding_parameter_names

__all__ = [
    "PipeChannel",
    "RemoteWorkerError",
    "resolve_worker_count",
    "parallel_dn_epoch",
    "parallel_dr_rounds",
]


class RemoteWorkerError(RuntimeError):
    """A forked worker died; carries the remote traceback text."""


def resolve_worker_count(n_workers=None):
    """Resolve a worker count: ``None``/0 → one per available core."""
    if n_workers is None or n_workers == 0:
        n_workers = os.cpu_count() or 1
    if n_workers < 0:
        raise ValueError("n_workers must be None or >= 0")
    return n_workers


def _fork_available():
    try:
        return "fork" in __import__("multiprocessing").get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


# ----------------------------------------------------------------------
# Transport over a pipe
# ----------------------------------------------------------------------
class PipeChannel(Channel):
    """Channel whose request/response round trip crosses a process pipe.

    The worker end sends ``("call", request)`` and blocks on the reply;
    the driver end answers with the PS handler's
    :class:`~repro.distributed.transport.Response` (or ``("err", text)``
    when the handler raised, re-raised here as :class:`RemoteWorkerError`).
    """

    def __init__(self, conn):
        self._conn = conn

    def call(self, request):
        self._conn.send(("call", request))
        kind, payload = self._conn.recv()
        if kind == "err":
            raise RemoteWorkerError(payload)
        return payload


def _serve_until_done(ps, conns):
    """Answer transport messages from all workers until each signals done.

    Returns ``{worker_slot: payload}`` of the workers' ``done`` payloads.
    Raises :class:`RemoteWorkerError` when any worker reports a failure
    (after draining the rest, so no child is left blocked on a send).
    """
    by_conn = {conn: slot for slot, conn in conns.items()}
    open_conns = set(by_conn)
    results, failures = {}, []
    while open_conns:
        for conn in connection.wait(list(open_conns)):
            try:
                message = conn.recv()
            except EOFError:
                open_conns.discard(conn)
                failures.append(
                    f"worker {by_conn[conn]} exited without reporting"
                )
                continue
            kind, payload = message
            if kind == "call":
                try:
                    conn.send(("ok", ps.handle(payload)))
                except Exception:
                    conn.send(("err", traceback.format_exc()))
            elif kind == "done":
                results[by_conn[conn]] = payload
                open_conns.discard(conn)
            else:
                assert kind == "fail"
                failures.append(payload)
                open_conns.discard(conn)
    if failures:
        raise RemoteWorkerError("\n".join(failures))
    return results


# ----------------------------------------------------------------------
# Parallel DN
# ----------------------------------------------------------------------
def _dn_worker_main(conn, worker_id, model, dataset, shard, config, seed):
    """Forked child: run one worker epoch against the piped PS."""
    try:
        client = PSClient(PipeChannel(conn), worker_id)
        worker = Worker(worker_id, model, shard, client, config,
                        field_map=embedding_field_map(model))
        worker.run_epoch(dataset, spawn_rng(seed, "pdn", worker_id))
        conn.send(("done", None))
    except Exception:
        conn.send(("fail", traceback.format_exc()))
    finally:
        conn.close()


def parallel_dn_epoch(model, dataset, shared_state, config, rng,
                      n_workers=None):
    """One DN round with domains fanned across forked worker processes.

    ``n_workers=1`` (or no ``fork`` support) is the in-process fast path:
    it runs :func:`~repro.core.negotiation.domain_negotiation_epoch`
    exactly — the sequential Algorithm 1 trajectory.  With more workers
    this is the deployment's *data-parallel* DN round (bulk-synchronous,
    identical to ``SimulatedCluster`` ``sync`` mode): workers pull the
    same snapshot Θ, train their shard's inner trajectory locally —
    replaying the compiled step tape when ``config.compile_steps`` (or
    the ambient :func:`repro.nn.compiled_execution` flag) is on — and
    the PS applies every ``Θ~_w − Θ`` with the β barrier step.

    Returns the new shared state; like the sequential epoch, ``model`` is
    scratch space (callers needing Θ must reload it).
    """
    n_workers = resolve_worker_count(n_workers)
    n_workers = min(n_workers, dataset.n_domains)
    if n_workers <= 1 or not _fork_available():
        return domain_negotiation_epoch(model, dataset, shared_state, config,
                                        rng)

    # Children inherit the model at Θ copy-on-write; embedding tables stay
    # authoritative on the PS and are fetched row-wise through the cache.
    model.load_state_dict(shared_state)
    ps = ParameterServer(
        shared_state,
        embedding_names=embedding_parameter_names(model),
        outer_lr=config.outer_lr,
    )
    shards = [s for s in shard_domains(dataset, n_workers) if s]
    seed = int(rng.integers(0, 2**63))

    ctx = get_context("fork")
    conns, procs = {}, []
    ps.begin_sync_round()
    try:
        for worker_id, shard in enumerate(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_dn_worker_main,
                args=(child_conn, worker_id, model, dataset, shard, config,
                      seed),
            )
            proc.start()
            child_conn.close()
            conns[worker_id] = parent_conn
            procs.append(proc)
        _serve_until_done(ps, conns)
    finally:
        for conn in conns.values():
            conn.close()
        for proc in procs:
            proc.join()
    ps.end_sync_round()
    profiling.count("parallel.dn_round")
    return ps.full_state()


# ----------------------------------------------------------------------
# Parallel DR
# ----------------------------------------------------------------------
def _reseed_module_rngs(model, seed, target):
    """Re-key every module RNG stream (dropout) to ``(seed, target)``.

    Module generators otherwise advance with each training forward, so a
    target's stream position would depend on which targets ran before it
    in the same process — the one piece of state that would break
    worker-count invariance.
    """
    for name, module in model.named_modules():
        rng = getattr(module, "_rng", None)
        if rng is not None and hasattr(rng, "bit_generator"):
            fresh = spawn_rng(seed, "pdr", target, "module", name or ".")
            rng.bit_generator.state = fresh.bit_generator.state


def _dr_targets(model, dataset, space, config, seed, targets):
    """DR rounds for ``targets``; per-target RNG keys make the schedule
    independent of which process runs which target."""
    out = {}
    for target in targets:
        _reseed_module_rngs(model, seed, target)
        rng = spawn_rng(seed, "pdr", target)
        out[target] = domain_regularization_round(
            model, dataset, space, target, config, rng
        )
    return out


def _dr_worker_main(conn, model, dataset, space, config, seed, targets):
    try:
        deltas = _dr_targets(model, dataset, space, config, seed, targets)
        conn.send(("done", deltas))
    except Exception:
        conn.send(("fail", traceback.format_exc()))
    finally:
        conn.close()


def parallel_dr_rounds(model, dataset, space, config, seed, targets=None,
                       n_workers=None):
    """DR rounds for every target domain, mapped over forked workers.

    Returns ``{target: new delta}``.  Unlike sequential
    ``MAMDR.fit`` — which threads one RNG through all targets — each
    target's RNG here derives from ``(seed, "pdr", target)`` alone, so
    the result is byte-identical for *any* worker count, including the
    ``n_workers=1`` in-process reference path.  The caller owns applying
    the deltas (``space.set_delta``).
    """
    if targets is None:
        targets = list(range(dataset.n_domains))
    targets = list(targets)
    n_workers = min(resolve_worker_count(n_workers), max(1, len(targets)))
    if n_workers <= 1 or not _fork_available() or len(targets) <= 1:
        return _dr_targets(model, dataset, space, config, seed, targets)

    shards = [targets[i::n_workers] for i in range(n_workers)]
    shards = [s for s in shards if s]
    ctx = get_context("fork")
    conns, procs = {}, []
    try:
        for slot, shard in enumerate(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_dr_worker_main,
                args=(child_conn, model, dataset, space, config, seed, shard),
            )
            proc.start()
            child_conn.close()
            conns[slot] = parent_conn
            procs.append(proc)
        # No PS traffic in DR (deltas live driver-side); the serve loop
        # only collects each shard's result payload.
        results = _serve_until_done(None, conns)
    finally:
        for conn in conns.values():
            conn.close()
        for proc in procs:
            proc.join()
    deltas = {}
    for shard_deltas in results.values():
        deltas.update(shard_deltas)
    profiling.count("parallel.dr_round")
    return deltas
