"""Message-level transport between workers and the parameter server.

Every PS↔worker interaction goes through a :class:`Channel` carrying typed
request/response messages — the explicit failure surface the Section IV-E
deployment has and the old in-process simulation lacked.  The stack:

* **Messages** — frozen dataclasses (:class:`PullDenseRequest`,
  :class:`PullRowsRequest`, :class:`PushRequest`,
  :class:`HeartbeatRequest`) answered by a single :class:`Response`
  stamped with the PS version.  Pushes carry a ``request_id`` and the
  ``base_version`` the worker trained from, which is what makes dedup and
  bounded-staleness rejection possible server-side.
* **Channels** — :class:`DirectChannel` calls the server handler
  in-process (the no-fault fast path, byte-identical to calling the PS
  directly); :class:`FaultyChannel` wraps another channel and injects the
  faults a :class:`~repro.distributed.faults.FaultPlan` schedules.
* **Recovery** — :func:`call_with_retry` retries failed deliveries with
  exponential backoff plus seeded jitter against a :class:`VirtualClock`
  (simulated time, so tests are instant), and :class:`PSClient` exposes
  the familiar ``pull_dense`` / ``pull_embedding_rows`` / ``push_delta``
  surface on top, reusing one request id across retries of the same
  logical push so the server can deduplicate at-least-once deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils import profiling
from .faults import DELIVER, DROP, DUPLICATE, TIMEOUT, WorkerCrashed

__all__ = [
    "PullDenseRequest",
    "PullRowsRequest",
    "PushRequest",
    "HeartbeatRequest",
    "Response",
    "TransportError",
    "MessageDropped",
    "ReplyLost",
    "DeliveryFailed",
    "VirtualClock",
    "Channel",
    "DirectChannel",
    "FaultyChannel",
    "RetryPolicy",
    "call_with_retry",
    "PSClient",
]


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PullDenseRequest:
    """Ask for all non-embedding parameters."""

    worker_id: object
    request_id: str


@dataclass(frozen=True)
class PullRowsRequest:
    """Ask for specific rows of one embedding table."""

    worker_id: object
    request_id: str
    table: str
    ids: object  # ndarray/sequence of row ids


@dataclass(frozen=True)
class PushRequest:
    """Push an outer-loop delta (Eq. 3).

    ``request_id`` is reused verbatim when the client retries the same
    logical push, so the server can apply it exactly once.
    ``base_version`` is the PS version the worker pulled before training;
    the server rejects pushes staler than its ``max_staleness``.
    """

    worker_id: object
    request_id: str
    base_version: int
    dense_delta: dict
    embedding_deltas: dict


@dataclass(frozen=True)
class HeartbeatRequest:
    """Liveness beacon; ``tick`` is the sender's virtual-clock reading."""

    worker_id: object
    request_id: str
    tick: float


@dataclass(frozen=True)
class Response:
    """Server answer to any request, stamped with the PS version."""

    version: int
    payload: object = None
    accepted: bool = True
    duplicate: bool = False
    reason: str = ""


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
class TransportError(RuntimeError):
    """Base class for failed deliveries (retryable)."""


class MessageDropped(TransportError):
    """The request never reached the server."""


class ReplyLost(TransportError):
    """The server processed the request, but the reply was lost.

    Indistinguishable from :class:`MessageDropped` at the client — the
    reason pushes must be idempotent.
    """


class DeliveryFailed(TransportError):
    """Retries exhausted without a successful round trip."""


# ----------------------------------------------------------------------
# Clock and channels
# ----------------------------------------------------------------------
class VirtualClock:
    """Deterministic simulated time shared by a cluster's channels."""

    def __init__(self, start=0.0):
        self.now = float(start)

    def advance(self, seconds):
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.now += seconds


class Channel:
    """A failable request/response pipe to the parameter server."""

    def call(self, request):
        """Deliver ``request`` and return the server's :class:`Response`.

        Raises a :class:`TransportError` subclass on failed delivery, or
        :class:`~repro.distributed.faults.WorkerCrashed` when the sending
        worker is scheduled to die on this message.
        """
        raise NotImplementedError


class DirectChannel(Channel):
    """In-process delivery straight to the server's message handler."""

    def __init__(self, server):
        self._server = server

    def call(self, request):
        return self._server.handle(request)


class FaultyChannel(Channel):
    """Wraps a channel and injects the faults a plan schedules.

    All draws come from the plan's own seeded generator for this worker,
    so fault timing is reproducible and independent of training RNG.
    """

    def __init__(self, inner, plan, worker_id, clock=None):
        self._inner = inner
        self._plan = plan
        self._worker_id = worker_id
        self._clock = clock if clock is not None else VirtualClock()
        self._rng = plan.channel_rng(worker_id)
        self.messages_sent = 0

    def call(self, request):
        self.messages_sent += 1
        if self._plan.crashes_at(self._worker_id, self.messages_sent):
            raise WorkerCrashed(self._worker_id, self.messages_sent)
        delay = self._plan.delay_for(self._worker_id)
        if delay:
            self._clock.advance(delay)
        action = self._plan.decide(self._rng)
        if action == DROP:
            profiling.count("transport.drop")
            raise MessageDropped(
                f"request {request.request_id} from worker "
                f"{self._worker_id!r} dropped"
            )
        if action == TIMEOUT:
            # The server *does* process the request; only the reply dies.
            self._inner.call(request)
            profiling.count("transport.timeout")
            raise ReplyLost(
                f"reply to {request.request_id} for worker "
                f"{self._worker_id!r} lost"
            )
        if action == DUPLICATE:
            profiling.count("transport.duplicate")
            self._inner.call(request)
            return self._inner.call(request)
        assert action == DELIVER
        return self._inner.call(request)


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter over a virtual clock."""

    max_attempts: int = 6
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")

    def backoff(self, attempt, rng=None):
        """Virtual seconds to wait after failed attempt ``attempt`` (0-based)."""
        delay = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


def call_with_retry(channel, request, policy, rng=None, clock=None,
                    on_retry=None):
    """Deliver ``request`` through ``channel``, retrying transport faults.

    The *same* request object (hence the same ``request_id``) is re-sent on
    every attempt — with server-side dedup this yields exactly-once
    application on top of at-least-once delivery.  Worker crashes are not
    retried: the process is gone.
    """
    last_error = None
    for attempt in range(policy.max_attempts):
        if attempt:
            profiling.count("transport.retry")
            if on_retry is not None:
                on_retry()
            if clock is not None:
                clock.advance(policy.backoff(attempt - 1, rng))
        try:
            return channel.call(request)
        except (MessageDropped, ReplyLost) as error:
            last_error = error
    raise DeliveryFailed(
        f"request {request.request_id} failed after "
        f"{policy.max_attempts} attempts: {last_error}"
    ) from last_error


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class PSClient:
    """The worker-side stub: familiar PS methods over a channel.

    Exposes the same ``pull_dense`` / ``pull_embedding_rows`` /
    ``push_delta`` surface as :class:`~repro.distributed.ps.ParameterServer`
    (so the embedding cache and worker code are oblivious to the wire), but
    every call is a typed message that can fail and be retried.
    """

    def __init__(self, channel, worker_id, retry=None, rng=None, clock=None,
                 incarnation=0):
        self._channel = channel
        self.worker_id = worker_id
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = rng
        self._clock = clock
        self._incarnation = incarnation
        self._sequence = 0
        #: PS version observed at the last dense pull — the reference point
        #: (Θ of Eq. 3) this worker's next push is measured against.
        self.base_version = 0
        self.counters = {"calls": 0, "retried": 0, "stale_rejected": 0,
                         "deduped": 0, "heartbeats_lost": 0}

    def _next_request_id(self):
        self._sequence += 1
        return f"{self.worker_id}/{self._incarnation}/{self._sequence}"

    def _count_retry(self):
        self.counters["retried"] += 1

    def _call(self, request):
        self.counters["calls"] += 1
        return call_with_retry(
            self._channel, request, self.retry, rng=self._rng,
            clock=self._clock, on_retry=self._count_retry,
        )

    # -- PS-compatible surface ----------------------------------------
    def pull_dense(self):
        response = self._call(
            PullDenseRequest(self.worker_id, self._next_request_id())
        )
        self.base_version = response.version
        return response.payload

    def pull_embedding_rows(self, name, ids):
        response = self._call(
            PullRowsRequest(self.worker_id, self._next_request_id(), name, ids)
        )
        return response.payload

    def push_delta(self, dense_delta, embedding_deltas):
        """Push the outer-loop delta; returns the server's :class:`Response`.

        A rejected (stale) push is *not* an exception: the worker's delta
        is simply lost and it re-pulls fresh state next epoch, exactly like
        the production PS.  Callers inspect ``response.accepted``.
        """
        request = PushRequest(
            self.worker_id, self._next_request_id(), self.base_version,
            dense_delta, embedding_deltas,
        )
        response = self._call(request)
        if response.duplicate:
            self.counters["deduped"] += 1
        if not response.accepted:
            self.counters["stale_rejected"] += 1
            profiling.count("ps.push_stale")
        return response

    def heartbeat(self):
        """Send a liveness beacon; lost beats are survivable and swallowed."""
        tick = self._clock.now if self._clock is not None else 0.0
        request = HeartbeatRequest(self.worker_id, self._next_request_id(), tick)
        try:
            return self._call(request)
        except DeliveryFailed:
            self.counters["heartbeats_lost"] += 1
            return None
