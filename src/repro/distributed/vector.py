"""Single-core lane-parallel DN/DR rounds via vectorized tape replay.

:mod:`repro.distributed.parallel` fans MAMDR's bulk-synchronous rounds
across forked worker *processes*; this module exploits the same
independence on **one core**.  Every worker in a sync DN round pulls the
identical snapshot Θ and trains its shard without seeing the others until
the barrier, and every DR target's helper pass starts from its own
``θ_S + θ_i`` — so instead of ``n`` processes, the ``n`` trajectories run
as one lane-batched replay of the compiled step tape
(:class:`repro.nn.vectorized.VectorTape`), dispatching each kernel once
for the whole fleet.

Bitwise contract: :func:`vector_dn_round` reproduces the sequential
in-process reference :func:`sync_dn_round_reference` — the same workers,
PS protocol and push order, run lane-by-lane — bit-for-bit, and
:func:`vector_dr_rounds` likewise reproduces
:func:`repro.distributed.parallel._dr_targets`.  Anything the vector
engine cannot guarantee (embedding tables, domain-conditioned graphs,
ragged lane schedules, exotic optimizers) raises
:class:`~repro.nn.vectorized.VectorBail` internally and silently falls
back to that reference, counting ``vector.bail`` in the active profile.

RNG discipline mirrors the process pool exactly: DN lane ``w`` consumes
``spawn_rng(seed, "pdn", w)`` for shuffles/batching and inherits the
entry dropout streams (what a forked child would see); DR lane ``t``
consumes ``spawn_rng(seed, "pdr", t)`` and module streams keyed by
``(seed, "pdr", t, "module", name)`` — identical to
:func:`repro.distributed.parallel._reseed_module_rngs`.
"""

from __future__ import annotations

import copy

import numpy as np

from ..data.batching import iter_minibatches
from ..nn.compile import executor_for
from ..nn.optim import make_optimizer
from ..nn.state import clone_state, state_add
from ..nn.vectorized import VectorBail, vector_tape_for
from ..utils import profiling
from ..utils.seeding import spawn_rng
from .cluster import shard_domains
from .parallel import _dr_targets
from .ps import ParameterServer
from .transport import DirectChannel, PSClient
from .worker import Worker, embedding_field_map, embedding_parameter_names

__all__ = [
    "vector_dn_round",
    "sync_dn_round_reference",
    "vector_dr_rounds",
]

_SUPPORTED_OPTIMIZERS = ("adam", "sgd")

#: lanes replayed per VectorTape pass.  Lanes are mutually independent
#: until the sync barrier, so a 128-worker round can run as four 32-lane
#: replays with bitwise-identical results — and a (32, P) arena (plus
#: grads, moments and temps) stays cache-resident where a (128, P) one
#: streams from last-level cache on every kernel.
_LANE_BLOCK = 32


# ----------------------------------------------------------------------
# Module-RNG bookkeeping
# ----------------------------------------------------------------------

def _snapshot_module_rngs(model):
    """``[(module name, generator, entry state)]`` for every dropout RNG."""
    snaps = []
    for name, module in model.named_modules():
        rng = getattr(module, "_rng", None)
        if rng is not None and hasattr(rng, "bit_generator"):
            snaps.append((name, rng, copy.deepcopy(rng.bit_generator.state)))
    return snaps


def _restore_module_rngs(snaps):
    for _, rng, state in snaps:
        rng.bit_generator.state = copy.deepcopy(state)


def _tape_rng_module_names(model, tape):
    """Module name of each of ``tape._rngs`` (draw-order identity match)."""
    by_id = {}
    for name, module in model.named_modules():
        rng = getattr(module, "_rng", None)
        if rng is not None:
            by_id[id(rng)] = name
    names = []
    for rng in tape._rngs:
        name = by_id.get(id(rng))
        if name is None:
            raise VectorBail("tape rng does not belong to a model module")
        names.append(name)
    return names


# ----------------------------------------------------------------------
# Tape acquisition
# ----------------------------------------------------------------------

def _step_tape(model, batch, config):
    """The compiled tape for one step, leaving the model untouched.

    Tracing runs a *real* training step, so parameters and dropout
    streams are snapshotted and restored around it; the throwaway
    optimizer dies here.
    """
    snaps = _snapshot_module_rngs(model)
    state = model.state_dict()
    optimizer = make_optimizer(
        config.inner_optimizer, model.parameters(), config.inner_lr
    )
    try:
        tape = executor_for(model).tape_for(batch, optimizer)
    finally:
        model.load_state_dict(state)
        _restore_module_rngs(snaps)
    if tape is None:
        raise VectorBail("step is not compilable")
    return tape


def _batch_shapes(batch):
    return (batch.users.shape, batch.items.shape, batch.labels.shape)


def _check_uniform(schedules, steps):
    """All lanes must run the same number of identically-shaped steps."""
    if steps == 0 or any(len(s) != steps for s in schedules):
        raise VectorBail("lane schedules have different lengths")
    shapes = _batch_shapes(schedules[0][0])
    for schedule in schedules:
        for batch in schedule:
            if _batch_shapes(batch) != shapes:
                raise VectorBail("lane batches differ in shape")


def _check_vectorizable(model, config):
    if embedding_parameter_names(model):
        raise VectorBail("embedding tables need the row-wise PS protocol")
    if getattr(model, "multi_domain", True):
        raise VectorBail("domain-conditioned graphs differ across lanes")
    if config.inner_optimizer.lower() not in _SUPPORTED_OPTIMIZERS:
        raise VectorBail(
            f"no batched inner optimizer for {config.inner_optimizer!r}"
        )


# ----------------------------------------------------------------------
# DN
# ----------------------------------------------------------------------

def vector_dn_round(model, dataset, shared_state, config, rng, n_workers=None):
    """One bulk-synchronous DN round, all workers replayed as lanes.

    Semantically identical to :func:`~repro.distributed.parallel.
    parallel_dn_epoch` in ``sync`` mode (and bitwise identical to
    :func:`sync_dn_round_reference` with the same arguments): ``n``
    workers pull Θ, train their shard's inner trajectory, and the PS
    applies every ``Θ~_w − Θ`` with the β barrier step.  ``n_workers``
    defaults to one lane per domain — the maximally vectorized fleet.
    Falls back to the sequential reference when the model/tape cannot be
    lane-vectorized.  Returns the new shared state; ``model`` is scratch.
    """
    n_lanes = _resolve_lanes(dataset, n_workers)
    seed = int(rng.integers(0, 2**63))
    try:
        return _vector_dn(model, dataset, shared_state, config, seed, n_lanes)
    except VectorBail:
        profiling.count("vector.bail")
        return _reference_dn(model, dataset, shared_state, config, seed,
                             n_lanes)


def sync_dn_round_reference(model, dataset, shared_state, config, rng,
                            n_workers=None):
    """The sequential in-process twin of :func:`vector_dn_round`.

    Runs the identical workers lane-by-lane over a
    :class:`DirectChannel`; this is the bitwise parity oracle the vector
    engine is tested against, and the fallback it degrades to.
    """
    n_lanes = _resolve_lanes(dataset, n_workers)
    seed = int(rng.integers(0, 2**63))
    return _reference_dn(model, dataset, shared_state, config, seed, n_lanes)


def _resolve_lanes(dataset, n_workers):
    if n_workers is None or n_workers == 0:
        return dataset.n_domains
    if n_workers < 0:
        raise ValueError("n_workers must be None or >= 0")
    return min(n_workers, dataset.n_domains)


def _reference_dn(model, dataset, shared_state, config, seed, n_lanes):
    snaps = _snapshot_module_rngs(model)
    ps = ParameterServer(
        shared_state,
        embedding_names=embedding_parameter_names(model),
        outer_lr=config.outer_lr,
    )
    shards = [s for s in shard_domains(dataset, n_lanes) if s]
    field_map = embedding_field_map(model)
    ps.begin_sync_round()
    for worker_id, shard in enumerate(shards):
        # Each lane starts exactly where a forked child would: model at Θ,
        # dropout streams at their entry states.
        model.load_state_dict(shared_state)
        _restore_module_rngs(snaps)
        worker = Worker(
            worker_id, model, shard, PSClient(DirectChannel(ps), worker_id),
            config, field_map=field_map,
        )
        worker.run_epoch(dataset, spawn_rng(seed, "pdn", worker_id))
    ps.end_sync_round()
    _restore_module_rngs(snaps)
    return ps.full_state()


def _dn_schedules(dataset, config, seed, shards):
    """Materialize each worker's exact batch sequence up front.

    Valid because the worker RNG is consumed *only* by the shard shuffle
    and the per-domain batch permutations — training itself draws from
    the separate module streams — so listing the generators in epoch
    order replicates the interleaved consumption bit-for-bit.
    """
    schedules = []
    for worker_id, shard in enumerate(shards):
        wrng = spawn_rng(seed, "pdn", worker_id)
        order = list(shard)
        wrng.shuffle(order)
        batches = []
        for domain_index in order:
            domain = dataset.domain(domain_index)
            batches.extend(iter_minibatches(
                domain.train, domain_index, config.batch_size,
                rng=wrng, max_batches=config.inner_steps,
            ))
        schedules.append(batches)
    return schedules


def _vector_dn(model, dataset, shared_state, config, seed, n_lanes):
    _check_vectorizable(model, config)
    shards = [s for s in shard_domains(dataset, n_lanes) if s]
    if len(shards) <= 1:
        raise VectorBail("a single lane vectorizes nothing")
    schedules = _dn_schedules(dataset, config, seed, shards)
    _check_uniform(schedules, len(schedules[0]))

    snaps = _snapshot_module_rngs(model)
    model.load_state_dict(shared_state)
    tape = _step_tape(model, schedules[0][0], config)
    n_workers = len(shards)
    block = min(n_workers, _LANE_BLOCK)
    vt = vector_tape_for(tape, model, block)
    if set(shared_state) != set(vt.param_names):
        raise VectorBail("shared state keys do not match the tape leaves")
    _tape_rng_module_names(model, tape)  # every tape rng must be a module's

    # Real PS, real clients, canonical worker push order — the wire
    # traffic is exactly the reference's, only the training in between is
    # batched.
    ps = ParameterServer(shared_state, embedding_names=(),
                         outer_lr=config.outer_lr)
    ps.begin_sync_round()
    clients = [
        PSClient(DirectChannel(ps), worker_id)
        for worker_id in range(n_workers)
    ]
    pulls = []
    for client in clients:
        client.heartbeat()
        pulls.append(client.pull_dense())

    # Forked children inherit the entry dropout streams; so does each lane.
    # The state dicts are only read by the seeding, so sharing one per
    # stream across all lanes is safe.
    states_by_id = {id(rng): state for _, rng, state in snaps}
    n_steps = len(schedules[0])
    base_flat = None
    pushed_rows = []  # keep every block's delta views alive until the barrier
    for start in range(0, n_workers, block):
        workers = range(start, min(start + block, n_workers))
        vt = vector_tape_for(tape, model, len(workers))
        for lane, worker_id in enumerate(workers):
            vt.load_state(lane, pulls[worker_id])
        vt.set_lane_rng_states([
            [states_by_id[id(tape_rng)]] * len(workers)
            for tape_rng in tape._rngs
        ])
        # Fresh per block: every worker's inner optimizer starts clean.
        optimizer = vt.make_optimizer(config.inner_optimizer, config.inner_lr)
        for step in range(n_steps):
            vt.replay(
                [schedules[worker_id][step] for worker_id in workers],
                optimizer,
            )
        # Θ~_w − Θ for the block in one dispatch; each worker's base is a
        # copy of the same frozen snapshot, so pulls[0] stands in for all.
        if base_flat is None:
            base_flat = vt.flatten_state(pulls[0])
        rows = vt.delta_rows(base_flat)
        pushed_rows.append(rows)
        for lane, worker_id in enumerate(workers):
            clients[worker_id].push_delta(vt.row_state(rows[lane]), {})
    ps.end_sync_round()
    del pushed_rows
    _restore_module_rngs(snaps)
    profiling.count("vector.dn_round")
    return ps.full_state()


# ----------------------------------------------------------------------
# DR
# ----------------------------------------------------------------------

def vector_dr_rounds(model, dataset, space, config, seed, targets=None):
    """One DR round per target, all targets replayed as lanes.

    Bitwise identical to :func:`repro.distributed.parallel.
    parallel_dr_rounds` (any worker count): each target's RNG derives
    from ``(seed, "pdr", target)`` alone.  Returns ``{target: new
    delta}``; the caller owns applying them (``space.set_delta``).
    Falls back to the sequential per-target reference on
    :class:`VectorBail`.
    """
    if targets is None:
        targets = list(range(dataset.n_domains))
    targets = list(targets)
    try:
        return _vector_dr(model, dataset, space, config, seed, targets)
    except VectorBail:
        profiling.count("vector.bail")
        return _dr_targets(model, dataset, space, config, seed, targets)


def _dr_schedules(dataset, config, seed, targets, split="train"):
    """Per-target helper choices and per-helper batch step lists.

    Returns ``(helpers_per_lane, phases)`` where ``phases[h][lane]`` is
    the exact batch sequence lane ``lane`` runs against its ``h``-th
    helper (Eq. 6 steps on the helper, then Eq. 7 steps on the target —
    one optimizer, so one lockstep list).  Consumption order of each
    lane's RNG matches ``domain_regularization_round`` exactly:
    helper sampling first, then each phase's permutation in turn.
    """
    from ..core.regularization import sample_helper_domains

    helpers_per_lane, step_lists = [], []
    for target in targets:
        rng = spawn_rng(seed, "pdr", target)
        helpers = sample_helper_domains(
            rng, dataset.n_domains, target, config.sample_k
        )
        target_table = getattr(dataset.domain(target), split)
        per_helper = []
        for helper in helpers:
            helper_table = getattr(dataset.domain(helper), split)
            steps = list(iter_minibatches(
                helper_table, helper, config.batch_size,
                rng=rng, max_batches=config.dr_steps,
            ))
            steps.extend(iter_minibatches(
                target_table, target, config.batch_size,
                rng=rng, max_batches=config.dr_steps,
            ))
            per_helper.append(steps)
        helpers_per_lane.append(helpers)
        step_lists.append(per_helper)

    n_helpers = len(helpers_per_lane[0])
    if any(len(h) != n_helpers for h in helpers_per_lane):
        raise VectorBail("targets sample different helper counts")
    phases = []
    for h in range(n_helpers):
        lanes = [step_lists[lane][h] for lane in range(len(targets))]
        _check_uniform(lanes, len(lanes[0]))
        phases.append(lanes)
    if phases:
        first = _batch_shapes(phases[0][0][0])
        for lanes in phases[1:]:
            if _batch_shapes(lanes[0][0]) != first:
                raise VectorBail("helper phases differ in batch shape")
    return helpers_per_lane, phases


def _vector_dr(model, dataset, space, config, seed, targets):
    if len(targets) <= 1:
        raise VectorBail("a single target vectorizes nothing")
    _check_vectorizable(model, config)
    helpers_per_lane, phases = _dr_schedules(dataset, config, seed, targets)
    deltas = {target: clone_state(space.delta(target)) for target in targets}
    if not phases:
        return deltas  # k == 0: a DR round is a no-op on the deltas

    snaps = _snapshot_module_rngs(model)
    model.load_state_dict(state_add(space.shared, deltas[targets[0]]))
    tape = _step_tape(model, phases[0][0][0], config)
    n_targets = len(targets)
    block = min(n_targets, _LANE_BLOCK)
    vt = vector_tape_for(tape, model, block)
    if set(space.shared) != set(vt.param_names):
        raise VectorBail("shared state keys do not match the tape leaves")
    rng_names = _tape_rng_module_names(model, tape)

    # All inter-helper state algebra runs arena-wide on flat rows — the
    # same per-element expressions as the per-parameter state ops (load
    # ``θ_S + θ_i``, candidate ``Θ~ − θ_S``, Eq. 8 interpolation), in a
    # handful of dispatches instead of n_lanes × n_params.
    shared_flat = vt.flatten_state(space.shared)
    delta_arena = np.stack(
        [vt.flatten_state(deltas[target]) for target in targets]
    )
    candidate = np.empty((block, delta_arena.shape[1]))
    for start in range(0, n_targets, block):
        rows = delta_arena[start:start + block]
        block_targets = targets[start:start + len(rows)]
        vt = vector_tape_for(tape, model, len(rows))
        cand = candidate[:len(rows)]
        # Lane t's dropout streams are keyed exactly like the process
        # pool's _reseed_module_rngs: (seed, "pdr", target, "module",
        # name); they persist across all of the target's helper passes.
        vt.set_lane_rng_states([
            [
                spawn_rng(seed, "pdr", target, "module", name or ".")
                .bit_generator.state
                for target in block_targets
            ]
            for name in rng_names
        ])
        for lanes in phases:
            vt.load_rows(shared_flat, rows)
            # Fresh optimizer per helper pass, as make_inner_optimizer does.
            optimizer = vt.make_optimizer(
                config.inner_optimizer, config.inner_lr
            )
            for step in range(len(lanes[0])):
                vt.replay(
                    [lanes[start + lane][step] for lane in range(len(rows))],
                    optimizer,
                )
            # θ_i ← θ_i + γ (θ_i~ − θ_i), state_interpolate_'s exact ufuncs.
            vt.delta_rows(shared_flat, out=cand)
            np.subtract(cand, rows, out=cand)
            np.multiply(cand, config.dr_lr, out=cand)
            np.add(rows, cand, out=rows)

    for lane, target in enumerate(targets):
        for name, value in vt.row_state(delta_arena[lane]).items():
            np.copyto(deltas[target][name], value)
    model.load_state_dict(space.shared)
    _restore_module_rngs(snaps)
    profiling.count("vector.dr_round")
    return deltas
