"""Periodic PS checkpointing and exact resume (fault tolerance, IV-E).

A checkpoint captures everything the driver needs to restart a training
run bit-for-bit after a crash: the authoritative PS state and version,
the server-side optimizer's accumulated slots, the driver RNG's exact
bit-generator state, the best-snapshot tracker and the epoch counter.
It is persisted through :mod:`repro.nn.serialization`, so every archive
carries the checksummed integrity header — a truncated or bit-flipped
checkpoint fails loudly at load instead of resuming from garbage.

Layout (one ``.npz`` archive):

* ``state/<param>`` — PS authoritative arrays;
* ``best/<param>`` + ``ckpt/best_score`` — the tracker's best snapshot;
* ``opt/<slot>/<param_index>`` — server optimizer slot arrays;
* ``wkr/<worker_id>/<slot>/<param_index>`` — worker inner-optimizer slots
  (the inner Adam's moments carry across epochs, so exact resume must
  restore them);
* ``ckpt/{epoch, version, rng, meta}`` — scalars and JSON blobs; the
  meta blob also carries every model-held RNG stream (e.g. dropout
  masks), per worker and for the driver replica, because those streams
  advance with training and a fresh replica would re-deal them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..nn.serialization import SerializationError, load_state, save_state
from ..utils.seeding import spawn_rng

__all__ = [
    "ClusterCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "module_rng_states",
    "restore_module_rngs",
]

_STATE = "state/"
_BEST = "best/"
_OPT = "opt/"
_WKR = "wkr/"


def _pack_slots(payload, prefix, slots):
    for slot, entries in slots.items():
        if isinstance(entries, dict):
            for index, value in entries.items():
                payload[f"{prefix}{slot}/{index}"] = np.asarray(value)
        else:
            payload[f"{prefix}{slot}/__scalar__"] = np.asarray(entries)


def _store_slot(slots, rest, value):
    slot, _, index = rest.partition("/")
    if index == "__scalar__":
        slots[slot] = value[()]
    else:
        slots.setdefault(slot, {})[int(index)] = value


def module_rng_states(model):
    """Bit-generator states of every RNG stream a model's modules hold.

    Stochastic layers (dropout) carry their own generator that advances
    with every training forward; a resumed replica must continue those
    streams, not restart them.
    """
    states = {}
    for name, module in model.named_modules():
        rng = getattr(module, "_rng", None)
        if rng is not None and hasattr(rng, "bit_generator"):
            states[name or "."] = rng.bit_generator.state
    return states


def restore_module_rngs(model, states):
    """Re-position a model's module RNG streams from :func:`module_rng_states`."""
    if not states:
        return
    for name, module in model.named_modules():
        rng = getattr(module, "_rng", None)
        key = name or "."
        if rng is not None and hasattr(rng, "bit_generator") and key in states:
            rng.bit_generator.state = states[key]


@dataclass
class ClusterCheckpoint:
    """In-memory image of a persisted cluster checkpoint."""

    state: dict
    version: int
    epoch: int
    rng_state: dict | None = None
    best_score: float | None = None
    best_state: dict | None = None
    optimizer_slots: dict = field(default_factory=dict)
    worker_slots: dict = field(default_factory=dict)
    worker_rngs: dict = field(default_factory=dict)
    driver_rngs: dict = field(default_factory=dict)

    def make_rng(self):
        """A generator positioned exactly where the run's RNG was."""
        if self.rng_state is None:
            raise SerializationError("checkpoint carries no RNG state")
        rng = spawn_rng(0, "checkpoint", "restore")
        rng.bit_generator.state = self.rng_state
        return rng


def save_checkpoint(path, ps, epoch, rng=None, tracker=None, workers=None,
                    driver_model=None):
    """Persist the cluster's recoverable state to ``path`` (.npz).

    ``ps`` is the :class:`~repro.distributed.ps.ParameterServer`; ``rng``
    the driver generator threading through the epochs; ``tracker`` the
    :class:`~repro.core.selection.BestTracker` holding the best snapshot;
    ``workers`` the live :class:`~repro.distributed.worker.Worker` list,
    whose inner-optimizer slots and model RNG streams are captured per
    worker id; ``driver_model`` the driver's evaluation replica.
    """
    payload = {}
    for name, value in ps.full_state().items():
        payload[_STATE + name] = value
    _pack_slots(payload, _OPT, ps.optimizer_slots())
    for worker in workers or ():
        _pack_slots(payload, f"{_WKR}{worker.worker_id}/",
                    worker.optimizer.state_slots())
    meta = {
        "epoch": int(epoch),
        "version": int(ps.version),
        "rng": None if rng is None else rng.bit_generator.state,
        "best_score": None if tracker is None or tracker.best is None
        else float(tracker.best_score),
        "worker_rngs": {
            str(worker.worker_id): module_rng_states(worker.model)
            for worker in workers or ()
        },
        "driver_rngs": None if driver_model is None
        else module_rng_states(driver_model),
    }
    if tracker is not None and tracker.best is not None:
        if not isinstance(tracker.best, dict):
            raise TypeError("only state-dict trackers can be checkpointed")
        for name, value in tracker.best.items():
            payload[_BEST + name] = value
    payload["ckpt/meta"] = np.array(json.dumps(meta))
    save_state(path, payload)
    return path


def load_checkpoint(path):
    """Load a :class:`ClusterCheckpoint` saved by :func:`save_checkpoint`.

    Raises :class:`~repro.nn.serialization.SerializationError` when the
    archive is corrupt (checksum mismatch) or structurally not a
    checkpoint.
    """
    payload = load_state(path, require_checksum=True)
    if "ckpt/meta" not in payload:
        raise SerializationError(f"{path!s} is not a cluster checkpoint")
    meta = json.loads(str(payload.pop("ckpt/meta")[()]))
    state, best, slots, worker_slots = {}, {}, {}, {}
    for key, value in payload.items():
        if key.startswith(_STATE):
            state[key[len(_STATE):]] = value
        elif key.startswith(_BEST):
            best[key[len(_BEST):]] = value
        elif key.startswith(_OPT):
            _store_slot(slots, key[len(_OPT):], value)
        elif key.startswith(_WKR):
            wid, _, rest = key[len(_WKR):].partition("/")
            _store_slot(worker_slots.setdefault(int(wid), {}), rest, value)
        else:
            raise SerializationError(
                f"unrecognized key {key!r} in checkpoint archive"
            )
    return ClusterCheckpoint(
        state=state,
        version=int(meta["version"]),
        epoch=int(meta["epoch"]),
        rng_state=meta.get("rng"),
        best_score=meta.get("best_score"),
        best_state=best or None,
        optimizer_slots=slots,
        worker_slots=worker_slots,
        worker_rngs={
            int(wid): states
            for wid, states in (meta.get("worker_rngs") or {}).items()
        },
        driver_rngs=meta.get("driver_rngs") or {},
    )
