"""The embedding PS-Worker cache (Figure 7).

Each worker keeps, per embedding table, a **static cache** (the value each
row had when first pulled from the PS this epoch — the reference point Θ of
Eq. 3) and a **dynamic cache** (the locally updated value Θ~).  During the
inner loop, a required row is served from the dynamic cache when present;
otherwise the *latest* value is pulled from the PS and recorded in both
caches ("query the latest embedding from the PS on demand" — this is what
bounds staleness).  At the end of the epoch the worker pushes
``dynamic − static`` per touched row and clears both caches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EmbeddingCache"]


class EmbeddingCache:
    """Static + dynamic row cache for one embedding table on one worker."""

    def __init__(self, ps, table_name):
        self._ps = ps
        self.table_name = table_name
        self._static = {}
        self._dynamic = {}
        self.hits = 0
        self.misses = 0

    def fetch(self, ids):
        """Current row values for ``ids`` (dynamic-cache read-through)."""
        ids = np.asarray(ids, dtype=np.int64)
        missing = [int(i) for i in np.unique(ids) if int(i) not in self._dynamic]
        if missing:
            rows = self._ps.pull_embedding_rows(self.table_name, missing)
            for row_id, row in zip(missing, rows):
                self._static[row_id] = row.copy()
                self._dynamic[row_id] = row.copy()
        self.misses += len(missing)
        self.hits += len(ids) - len(missing)
        return np.stack([self._dynamic[int(i)] for i in ids])

    def update(self, ids, rows):
        """Record locally updated rows in the dynamic cache."""
        ids = np.asarray(ids, dtype=np.int64)
        for row_id, row in zip(ids, rows):
            key = int(row_id)
            if key not in self._dynamic:
                raise KeyError(
                    f"row {key} updated before being fetched — the static "
                    "reference would be undefined"
                )
            self._dynamic[key] = np.array(row, dtype=np.float64)

    def deltas(self):
        """``{row_id: dynamic − static}`` for every touched row."""
        return {
            row_id: self._dynamic[row_id] - self._static[row_id]
            for row_id in self._dynamic
        }

    def touched_rows(self):
        return sorted(self._dynamic)

    def clear(self):
        """Empty both caches (end of epoch)."""
        self._static.clear()
        self._dynamic.clear()

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
