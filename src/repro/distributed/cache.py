"""The embedding PS-Worker cache (Figure 7).

Each worker keeps, per embedding table, a **static cache** (the value each
row had when first pulled from the PS this epoch — the reference point Θ of
Eq. 3) and a **dynamic cache** (the locally updated value Θ~).  During the
inner loop, a required row is served from the dynamic cache when present;
otherwise the *latest* value is pulled from the PS and recorded in both
caches ("query the latest embedding from the PS on demand" — this is what
bounds staleness).  At the end of the epoch the worker pushes
``dynamic − static`` per touched row and clears both caches.

Storage is columnar: one sorted unique id vector plus two aligned value
matrices, so ``fetch``/``update`` are a ``np.unique`` + ``searchsorted``
gather/scatter instead of per-row Python dict loops (the same unique-rows
machinery :mod:`repro.nn.sparse` uses for gradient coalescing).
"""

from __future__ import annotations

import numpy as np

__all__ = ["EmbeddingCache"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class EmbeddingCache:
    """Static + dynamic row cache for one embedding table on one worker.

    ``ps`` is any row source exposing ``pull_embedding_rows(name, ids)`` —
    a raw :class:`~repro.distributed.ps.ParameterServer` in unit tests, or
    a :class:`~repro.distributed.transport.PSClient` in the cluster, where
    every miss is a message that can fail and be retried.
    """

    def __init__(self, ps, table_name):
        self._ps = ps
        self.table_name = table_name
        # Sorted unique touched row ids, with value matrices aligned to it.
        self._ids = _EMPTY_IDS
        self._static = None
        self._dynamic = None
        self.hits = 0
        self.misses = 0

    def _positions(self, ids):
        """(positions, present mask) of ``ids`` within the cached id vector."""
        if not self._ids.size:
            return np.zeros(ids.shape, dtype=np.int64), np.zeros(
                ids.shape, dtype=bool
            )
        pos = np.searchsorted(self._ids, ids)
        pos_clipped = np.minimum(pos, self._ids.size - 1)
        return pos_clipped, self._ids[pos_clipped] == ids

    def fetch(self, ids):
        """Current row values for ``ids`` (dynamic-cache read-through)."""
        ids = np.asarray(ids, dtype=np.int64)
        if not ids.size:
            dim = 0 if self._dynamic is None else self._dynamic.shape[1]
            return np.empty((0, dim), dtype=np.float64)
        unique = np.unique(ids)
        _, present = self._positions(unique)
        missing = unique[~present]
        if missing.size:
            rows = np.asarray(
                self._ps.pull_embedding_rows(self.table_name, missing),
                dtype=np.float64,
            )
            merged_ids = np.concatenate((self._ids, missing))
            order = np.argsort(merged_ids, kind="stable")
            self._ids = merged_ids[order]
            if self._static is None:
                self._static = rows.copy()[order]
                self._dynamic = rows.copy()[order]
            else:
                self._static = np.concatenate((self._static, rows))[order]
                self._dynamic = np.concatenate((self._dynamic, rows.copy()))[
                    order
                ]
        self.misses += int(missing.size)
        self.hits += int(ids.size - missing.size)
        take = np.searchsorted(self._ids, ids)
        return self._dynamic[take]

    def update(self, ids, rows):
        """Record locally updated rows in the dynamic cache."""
        ids = np.asarray(ids, dtype=np.int64)
        if not ids.size:
            return
        values = np.asarray(rows, dtype=np.float64)
        pos, present = self._positions(ids)
        if not present.all():
            key = int(ids[np.flatnonzero(~present)[0]])
            raise KeyError(
                f"row {key} updated before being fetched — the static "
                "reference would be undefined"
            )
        # Duplicate ids within one update keep last-wins semantics: fancy
        # scatter assignment writes duplicates in order.
        self._dynamic[pos] = values

    def deltas(self):
        """``{row_id: dynamic − static}`` for every touched row."""
        if self._static is None:
            return {}
        diff = self._dynamic - self._static
        return {int(row_id): diff[k] for k, row_id in enumerate(self._ids)}

    def touched_rows(self):
        return [int(row_id) for row_id in self._ids]

    def clear(self):
        """Empty both caches (end of epoch)."""
        self._ids = _EMPTY_IDS
        self._static = None
        self._dynamic = None

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
