"""Parameter server (Section IV-E).

Stores the authoritative model state.  Dense parameters are pulled/pushed
as whole tensors; embedding parameters are accessed *row-wise* so workers
only synchronize the rows their batches touched — the observation the
paper's embedding PS-Worker cache is built on.

The outer update follows Eq. 3: the server receives a worker's delta
``Θ~ − Θ`` and applies it either by plain interpolation (``Θ += β·Δ``) or
through a dedicated server-side optimizer (the industry deployment uses
Adagrad with a dynamic learning rate).
"""

from __future__ import annotations

import numpy as np

from ..nn.optim import make_optimizer
from ..nn.module import Parameter

__all__ = ["ParameterServer"]


class ParameterServer:
    """In-process simulation of the PS role.

    Parameters
    ----------
    state:
        Initial full model state (``{name: ndarray}``).
    embedding_names:
        Names of parameters to treat as row-wise embedding tables.
    outer_lr:
        β of Eq. 3.
    outer_optimizer:
        ``None`` for plain interpolation, or an optimizer name ("adagrad",
        "adam", "sgd") applied to the negated delta as a gradient.
    """

    def __init__(self, state, embedding_names=(), outer_lr=0.5,
                 outer_optimizer=None):
        self._state = {name: value.copy() for name, value in state.items()}
        self.embedding_names = frozenset(embedding_names)
        unknown = self.embedding_names - set(self._state)
        if unknown:
            raise KeyError(f"embedding names not in state: {sorted(unknown)}")
        self.outer_lr = outer_lr
        self.version = 0
        self.pull_counts = {"dense": 0, "embedding_rows": 0}
        self.push_counts = {"dense": 0, "embedding_rows": 0}
        self._snapshot = None
        self._buffered = []
        self._optimizer = None
        if outer_optimizer is not None:
            self._params = {
                name: Parameter(value) for name, value in self._state.items()
            }
            self._optimizer = make_optimizer(
                outer_optimizer, self._params.values(), outer_lr
            )

    # ------------------------------------------------------------------
    # Pulls
    # ------------------------------------------------------------------
    def pull_dense(self):
        """All non-embedding parameters (copies)."""
        self.pull_counts["dense"] += 1
        source = self._snapshot if self._snapshot is not None else self._state
        return {
            name: value.copy()
            for name, value in source.items()
            if name not in self.embedding_names
        }

    def pull_embedding_rows(self, name, ids):
        """Rows ``ids`` of embedding table ``name`` (copies)."""
        if name not in self.embedding_names:
            raise KeyError(f"{name!r} is not an embedding table")
        ids = np.asarray(ids, dtype=np.int64)
        self.pull_counts["embedding_rows"] += len(ids)
        source = self._snapshot if self._snapshot is not None else self._state
        return source[name][ids].copy()

    def full_state(self):
        """The complete authoritative state (for deployment/evaluation)."""
        return {name: value.copy() for name, value in self._state.items()}

    # ------------------------------------------------------------------
    # Pushes
    # ------------------------------------------------------------------
    def begin_sync_round(self):
        """Freeze a snapshot: pulls serve it, pushes buffer until the end.

        This is bulk-synchronous semantics; without it (the default) the
        server is asynchronous — pulls see the latest state immediately.
        """
        if self._snapshot is not None:
            raise RuntimeError("sync round already in progress")
        self._snapshot = {name: value.copy() for name, value in self._state.items()}

    def end_sync_round(self):
        """Apply all buffered deltas and unfreeze."""
        if self._snapshot is None:
            raise RuntimeError("no sync round in progress")
        self._snapshot = None
        buffered, self._buffered = self._buffered, []
        for dense_delta, embedding_deltas in buffered:
            self._apply(dense_delta, embedding_deltas)

    def push_delta(self, dense_delta, embedding_deltas):
        """Apply (or buffer, during a sync round) a worker's delta (Eq. 3).

        ``dense_delta``: ``{name: ndarray}``;
        ``embedding_deltas``: ``{name: {row_id: vector}}``.
        """
        self.push_counts["dense"] += len(dense_delta)
        self.push_counts["embedding_rows"] += sum(
            len(rows) for rows in embedding_deltas.values()
        )
        if self._snapshot is not None:
            self._buffered.append((dense_delta, embedding_deltas))
            return
        self._apply(dense_delta, embedding_deltas)

    def _apply(self, dense_delta, embedding_deltas):
        if self._optimizer is not None:
            self._apply_with_optimizer(dense_delta, embedding_deltas)
        else:
            self._apply_interpolation(dense_delta, embedding_deltas)
        self.version += 1

    def _apply_interpolation(self, dense_delta, embedding_deltas):
        for name, delta in dense_delta.items():
            self._state[name] = self._state[name] + self.outer_lr * delta
        for name, rows in embedding_deltas.items():
            table = self._state[name]
            for row_id, delta in rows.items():
                table[row_id] = table[row_id] + self.outer_lr * delta

    def _apply_with_optimizer(self, dense_delta, embedding_deltas):
        # Treat -delta as the gradient, as the industry deployment does.
        for name, param in self._params.items():
            param.grad = None
        for name, delta in dense_delta.items():
            self._params[name].grad = -delta
        for name, rows in embedding_deltas.items():
            grad = np.zeros_like(self._state[name])
            for row_id, delta in rows.items():
                grad[row_id] = -delta
            self._params[name].grad = grad
        self._optimizer.step()
        for name, param in self._params.items():
            self._state[name] = param.data
