"""Parameter server (Section IV-E).

Stores the authoritative model state.  Dense parameters are pulled/pushed
as whole tensors; embedding parameters are accessed *row-wise* so workers
only synchronize the rows their batches touched — the observation the
paper's embedding PS-Worker cache is built on.

The outer update follows Eq. 3: the server receives a worker's delta
``Θ~ − Θ`` and applies it either by plain interpolation (``Θ += β·Δ``) or
through a dedicated server-side optimizer (the industry deployment uses
Adagrad with a dynamic learning rate).
"""

from __future__ import annotations

import numpy as np

from ..nn.optim import make_optimizer
from ..nn.module import Parameter
from . import transport

__all__ = ["ParameterServer"]


class ParameterServer:
    """In-process simulation of the PS role.

    Parameters
    ----------
    state:
        Initial full model state (``{name: ndarray}``).
    embedding_names:
        Names of parameters to treat as row-wise embedding tables.
    outer_lr:
        β of Eq. 3.
    outer_optimizer:
        ``None`` for plain interpolation, or an optimizer name ("adagrad",
        "adam", "sgd") applied to the negated delta as a gradient.
    max_staleness:
        When not ``None``, pushes whose ``base_version`` is more than this
        many versions behind the current state are rejected (bounded
        staleness, the async deployment's guard against zombie workers).
    """

    def __init__(self, state, embedding_names=(), outer_lr=0.5,
                 outer_optimizer=None, max_staleness=None):
        self._state = {name: value.copy() for name, value in state.items()}
        self.embedding_names = frozenset(embedding_names)
        unknown = self.embedding_names - set(self._state)
        if unknown:
            raise KeyError(f"embedding names not in state: {sorted(unknown)}")
        self.outer_lr = outer_lr
        self.max_staleness = max_staleness
        self.version = 0
        self.pull_counts = {"dense": 0, "embedding_rows": 0}
        self.push_counts = {"dense": 0, "embedding_rows": 0}
        #: push request ids already applied (or buffered) — the dedup set
        #: that makes retried/duplicated pushes exactly-once.
        self._applied_push_ids = set()
        self.dedup_hits = 0
        self.stale_rejections = 0
        #: ``{worker_id: last heartbeat tick}`` for the eviction monitor.
        self.heartbeats = {}
        self._snapshot = None
        self._buffered = []
        self._optimizer = None
        if outer_optimizer is not None:
            self._params = {
                name: Parameter(value) for name, value in self._state.items()
            }
            self._optimizer = make_optimizer(
                outer_optimizer, self._params.values(), outer_lr
            )

    # ------------------------------------------------------------------
    # Transport endpoint
    # ------------------------------------------------------------------
    def handle(self, request):
        """Serve one typed transport message (the server's only endpoint).

        Workers never call the pull/push methods below directly any more;
        they send messages through a :class:`~repro.distributed.transport.
        Channel` that lands here.  Pushes are deduplicated by request id
        (retries and duplicated deliveries apply exactly once) and rejected
        when staler than ``max_staleness`` versions.
        """
        if isinstance(request, transport.PullDenseRequest):
            return transport.Response(
                version=self.version, payload=self.pull_dense()
            )
        if isinstance(request, transport.PullRowsRequest):
            rows = self.pull_embedding_rows(request.table, request.ids)
            return transport.Response(version=self.version, payload=rows)
        if isinstance(request, transport.HeartbeatRequest):
            self.heartbeats[request.worker_id] = request.tick
            return transport.Response(version=self.version)
        if isinstance(request, transport.PushRequest):
            return self._handle_push(request)
        raise TypeError(f"unknown request type {type(request).__name__}")

    def _handle_push(self, request):
        if request.request_id in self._applied_push_ids:
            self.dedup_hits += 1
            return transport.Response(version=self.version, duplicate=True)
        if (
            self.max_staleness is not None
            and self.version - request.base_version > self.max_staleness
        ):
            self.stale_rejections += 1
            return transport.Response(
                version=self.version, accepted=False,
                reason=f"stale push: base version {request.base_version} is "
                       f"{self.version - request.base_version} behind "
                       f"(max_staleness={self.max_staleness})",
            )
        # Mark *before* applying: a sync round buffers the delta, but the
        # retry of a timed-out push must still dedup against the buffer.
        self._applied_push_ids.add(request.request_id)
        self.push_delta(request.dense_delta, request.embedding_deltas)
        return transport.Response(version=self.version)

    # ------------------------------------------------------------------
    # Pulls
    # ------------------------------------------------------------------
    def pull_dense(self):
        """All non-embedding parameters (copies)."""
        self.pull_counts["dense"] += 1
        source = self._snapshot if self._snapshot is not None else self._state
        return {
            name: value.copy()
            for name, value in source.items()
            if name not in self.embedding_names
        }

    def pull_embedding_rows(self, name, ids):
        """Rows ``ids`` of embedding table ``name`` (copies)."""
        if name not in self.embedding_names:
            raise KeyError(f"{name!r} is not an embedding table")
        ids = np.asarray(ids, dtype=np.int64)
        self.pull_counts["embedding_rows"] += len(ids)
        source = self._snapshot if self._snapshot is not None else self._state
        return source[name][ids].copy()

    def full_state(self):
        """The complete authoritative state (for deployment/evaluation)."""
        return {name: value.copy() for name, value in self._state.items()}

    # ------------------------------------------------------------------
    # Pushes
    # ------------------------------------------------------------------
    def begin_sync_round(self):
        """Freeze a snapshot: pulls serve it, pushes buffer until the end.

        This is bulk-synchronous semantics; without it (the default) the
        server is asynchronous — pulls see the latest state immediately.
        """
        if self._snapshot is not None:
            raise RuntimeError("sync round already in progress")
        self._snapshot = {name: value.copy() for name, value in self._state.items()}

    def end_sync_round(self):
        """Apply all buffered deltas and unfreeze."""
        if self._snapshot is None:
            raise RuntimeError("no sync round in progress")
        self._snapshot = None
        buffered, self._buffered = self._buffered, []
        for dense_delta, embedding_deltas in buffered:
            self._apply(dense_delta, embedding_deltas)

    def push_delta(self, dense_delta, embedding_deltas):
        """Apply (or buffer, during a sync round) a worker's delta (Eq. 3).

        ``dense_delta``: ``{name: ndarray}``;
        ``embedding_deltas``: ``{name: {row_id: vector}}``.
        """
        self.push_counts["dense"] += len(dense_delta)
        self.push_counts["embedding_rows"] += sum(
            len(rows) for rows in embedding_deltas.values()
        )
        if self._snapshot is not None:
            self._buffered.append((dense_delta, embedding_deltas))
            return
        self._apply(dense_delta, embedding_deltas)

    def _apply(self, dense_delta, embedding_deltas):
        if self._optimizer is not None:
            self._apply_with_optimizer(dense_delta, embedding_deltas)
        else:
            self._apply_interpolation(dense_delta, embedding_deltas)
        self.version += 1

    def _apply_interpolation(self, dense_delta, embedding_deltas):
        for name, delta in dense_delta.items():
            self._state[name] = self._state[name] + self.outer_lr * delta
        for name, rows in embedding_deltas.items():
            table = self._state[name]
            for row_id, delta in rows.items():
                table[row_id] = table[row_id] + self.outer_lr * delta

    def _apply_with_optimizer(self, dense_delta, embedding_deltas):
        # Treat -delta as the gradient, as the industry deployment does.
        for name, param in self._params.items():
            param.grad = None
        for name, delta in dense_delta.items():
            self._params[name].grad = -delta
        for name, rows in embedding_deltas.items():
            grad = np.zeros_like(self._state[name])
            for row_id, delta in rows.items():
                grad[row_id] = -delta
            self._params[name].grad = grad
        self._optimizer.step()
        for name, param in self._params.items():
            self._state[name] = param.data

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def optimizer_slots(self):
        """Server-side optimizer slot state (``{}`` for interpolation)."""
        if self._optimizer is None:
            return {}
        return self._optimizer.state_slots()

    def restore(self, state, version, optimizer_slots=None):
        """Reset the authoritative state from a checkpoint.

        Rebinds the outer-optimizer parameters (and their accumulated
        slots) so a resumed run continues bit-for-bit where the
        checkpointed one left off.
        """
        if self._snapshot is not None:
            raise RuntimeError("cannot restore mid sync-round")
        unknown = set(state) ^ set(self._state)
        if unknown:
            raise KeyError(
                f"checkpoint state keys do not match: {sorted(unknown)}"
            )
        self._state = {name: value.copy() for name, value in state.items()}
        self.version = int(version)
        if self._optimizer is not None:
            for name, param in self._params.items():
                # Restoring a checkpoint is a state load, like
                # load_state_dict; the graph is rebuilt afterwards.
                # lint: allow[data-mutation]
                param.data = self._state[name].copy()
                param.bump_version()
            if optimizer_slots:
                self._optimizer.load_state_slots(optimizer_slots)
