"""Simulated PS-Worker cluster running distributed MAMDR (Section IV-E).

``SimulatedCluster`` shards domains across workers, runs the DN inner loop
on each worker with the embedding cache, and applies outer-loop deltas on
the parameter server — all in-process and deterministic, so tests can
compare against single-process training.

Scheduling modes:

* ``sync``  — every worker pulls the same PS version, then all deltas are
  applied (classic bulk-synchronous data parallelism);
* ``async`` — workers pull-push one after another within an epoch, so later
  workers see earlier workers' updates (bounded staleness, closer to the
  production deployment).
"""

from __future__ import annotations

from ..core.param_space import DomainParameterSpace
from ..core.regularization import domain_regularization_round
from ..core.selection import BestTracker, PerDomainTracker, model_split_auc
from ..frameworks.base import SingleModelBank, StateBank
from ..utils.seeding import spawn_rng
from .ps import ParameterServer
from .worker import Worker, embedding_field_map, embedding_parameter_names

__all__ = ["SimulatedCluster", "shard_domains"]


def shard_domains(dataset, n_workers):
    """Greedy balanced sharding: heaviest domains to the lightest worker."""
    if n_workers <= 0:
        raise ValueError("need at least one worker")
    shards = [[] for _ in range(n_workers)]
    loads = [0] * n_workers
    by_size = sorted(dataset.domains, key=lambda d: -len(d.train))
    for domain in by_size:
        lightest = loads.index(min(loads))
        shards[lightest].append(domain.index)
        loads[lightest] += len(domain.train)
    return shards


class SimulatedCluster:
    """Distributed MAMDR on a simulated PS-Worker cluster."""

    def __init__(self, n_workers=4, mode="async", outer_optimizer=None):
        if mode not in ("sync", "async"):
            raise ValueError(f"unknown mode {mode!r}")
        self.n_workers = n_workers
        self.mode = mode
        self.outer_optimizer = outer_optimizer
        self.ps = None
        self.workers = []

    def fit(self, model_factory, dataset, config, seed=0, use_dr=False):
        """Train on the cluster; returns a deployable model bank.

        ``model_factory(worker_id) -> model`` builds one replica per worker
        plus the driver's evaluation replica (worker_id ``"driver"``).  With
        ``use_dr=True`` the driver additionally trains per-domain specific
        deltas with DR on top of the PS shared state (full MAMDR).
        """
        rng = spawn_rng(seed, "cluster", dataset.name)
        driver_model = model_factory("driver")
        embedding_names = embedding_parameter_names(driver_model)
        self.ps = ParameterServer(
            driver_model.state_dict(),
            embedding_names=embedding_names,
            outer_lr=config.outer_lr,
            outer_optimizer=self.outer_optimizer,
        )
        shards = shard_domains(dataset, self.n_workers)
        field_map = embedding_field_map(driver_model) if embedding_names else {}
        self.workers = [
            Worker(i, model_factory(i), shard, self.ps, config,
                   field_map=field_map)
            for i, shard in enumerate(shards) if shard
        ]

        tracker = BestTracker()
        for _ in range(config.epochs):
            self._run_round(dataset, rng)
            driver_model.load_state_dict(self.ps.full_state())
            tracker.update(model_split_auc(driver_model, dataset),
                           self.ps.full_state())

        shared = tracker.best
        driver_model.load_state_dict(shared)
        if not use_dr:
            return SingleModelBank(driver_model)

        # Full MAMDR: DR for the specific deltas, run driver-side.
        space = DomainParameterSpace(driver_model, dataset.n_domains)
        space.set_shared(shared)
        dr_tracker = PerDomainTracker(dataset.n_domains)
        for _ in range(config.epochs):
            for domain_index in range(dataset.n_domains):
                delta = domain_regularization_round(
                    driver_model, dataset, space, domain_index, config, rng
                )
                space.set_delta(domain_index, delta)
            dr_tracker.update_from_space(driver_model, dataset, space)
        return StateBank(driver_model, dr_tracker.best_states(),
                         default_state=space.shared)

    def _run_round(self, dataset, rng):
        if self.mode == "async":
            order = list(range(len(self.workers)))
            rng.shuffle(order)
            for index in order:
                self.workers[index].run_epoch(dataset, rng)
        else:
            # Bulk-synchronous: everyone pulls the same snapshot; deltas are
            # buffered on the PS and applied together at the round barrier.
            self.ps.begin_sync_round()
            for worker in self.workers:
                worker.run_epoch(dataset, rng)
            self.ps.end_sync_round()

    def stats(self):
        """Synchronization statistics across PS and workers."""
        if self.ps is None:
            raise RuntimeError("fit() has not been run")
        return {
            "ps_version": self.ps.version,
            "ps_pulls": dict(self.ps.pull_counts),
            "ps_pushes": dict(self.ps.push_counts),
            "workers": {
                worker.worker_id: worker.cache_stats()
                for worker in self.workers
            },
        }
