"""Simulated PS-Worker cluster running distributed MAMDR (Section IV-E).

``SimulatedCluster`` shards domains across workers, runs the DN inner loop
on each worker with the embedding cache, and applies outer-loop deltas on
the parameter server — all in-process and deterministic, so tests can
compare against single-process training.

Scheduling modes:

* ``sync``  — every worker pulls the same PS version, then all deltas are
  applied (classic bulk-synchronous data parallelism);
* ``async`` — workers pull-push one after another within an epoch, so later
  workers see earlier workers' updates (bounded staleness, closer to the
  production deployment).

Fault tolerance (the production story of IV-E):

* every PS↔worker interaction goes through the message transport, so a
  :class:`~repro.distributed.faults.FaultPlan` can drop, duplicate and
  delay messages or kill workers mid-epoch;
* clients retry with exponential backoff + jitter; the PS deduplicates
  pushes by request id and rejects pushes staler than ``max_staleness``;
* a heartbeat monitor evicts workers whose beats stall and greedily
  re-shards their domains onto the survivors;
* with ``checkpoint_path`` set the driver checkpoints the PS (checksummed
  archive) every ``checkpoint_every`` epochs, and :meth:`resume` restarts
  a killed run bit-for-bit from the latest checkpoint.

With no fault plan the transport collapses to in-process calls and the
sync/async trajectories are byte-identical to the pre-transport runtime.
"""

from __future__ import annotations

import warnings

from ..core.param_space import DomainParameterSpace
from ..core.regularization import domain_regularization_round
from ..core.selection import BestTracker, PerDomainTracker, model_split_auc
from ..frameworks.base import SingleModelBank, StateBank
from ..utils import profiling
from ..utils.seeding import spawn_rng
from .checkpoint import load_checkpoint, restore_module_rngs, save_checkpoint
from .faults import WorkerCrashed
from .ps import ParameterServer
from .transport import (
    DeliveryFailed,
    DirectChannel,
    FaultyChannel,
    PSClient,
    VirtualClock,
)
from .worker import Worker, embedding_field_map, embedding_parameter_names

__all__ = ["SimulatedCluster", "shard_domains", "reassign_domains"]


def shard_domains(dataset, n_workers, clusters=None):
    """Greedy balanced sharding: heaviest domains to the lightest worker.

    Deterministic throughout: domains are ordered by (size desc, index
    asc) — the explicit index tie-break keeps equal-size domains stable —
    and load ties go to the lowest-indexed worker.

    With ``clusters`` (a :class:`~repro.core.param_space.ClusterPlan`) the
    unit of placement becomes the *cluster*: all domains sharing a
    cluster-level delta land on the same worker (heaviest cluster first,
    to the lightest worker), so cluster-gated DR never needs a
    cross-worker delta merge.  Within a shard, a cluster's members keep
    the (size desc, index asc) order.
    """
    if n_workers <= 0:
        raise ValueError("need at least one worker")
    shards = [[] for _ in range(n_workers)]
    loads = [0] * n_workers
    by_size = sorted(dataset.domains, key=lambda d: (-len(d.train), d.index))
    if clusters is None:
        units = [((domain.index,), len(domain.train)) for domain in by_size]
    else:
        members = {}
        for domain in by_size:
            cluster = clusters.cluster_of(domain.index)
            members.setdefault(cluster, []).append(domain)
        units = sorted(
            (
                (
                    tuple(d.index for d in group),
                    sum(len(d.train) for d in group),
                )
                for group in members.values()
            ),
            key=lambda unit: (-unit[1], unit[0]),
        )
    for indices, load in units:
        lightest = loads.index(min(loads))
        shards[lightest].extend(indices)
        loads[lightest] += load
    return shards


def reassign_domains(dataset, orphaned, workers):
    """Greedily re-shard ``orphaned`` domain indices onto ``workers``.

    Same deterministic policy as :func:`shard_domains`, but seeded with
    the survivors' *current* loads: heaviest orphan first, to the
    least-loaded worker, ties to the lower domain index / worker id.
    Mutates the workers' ``domain_indices`` in place and returns
    ``{domain_index: worker_id}``.
    """
    if not workers:
        raise RuntimeError("no surviving workers to re-shard onto")
    by_id = {worker.worker_id: worker for worker in workers}
    loads = {
        worker.worker_id: sum(
            len(dataset.domain(i).train) for i in worker.domain_indices
        )
        for worker in workers
    }
    assignments = {}
    for index in sorted(
        orphaned, key=lambda i: (-len(dataset.domain(i).train), i)
    ):
        target = min(loads, key=lambda wid: (loads[wid], wid))
        by_id[target].domain_indices.append(index)
        loads[target] += len(dataset.domain(index).train)
        assignments[index] = target
    return assignments


class SimulatedCluster:
    """Distributed MAMDR on a simulated, fault-injectable PS-Worker cluster.

    Parameters
    ----------
    n_workers, mode, outer_optimizer:
        As before: worker count, ``"sync"``/``"async"`` scheduling, and
        the server-side outer optimizer (``None`` = interpolation).
    fault_plan:
        A :class:`~repro.distributed.faults.FaultPlan`, or ``None`` for a
        fault-free run over the direct in-process channel.
    retry_policy:
        :class:`~repro.distributed.transport.RetryPolicy` for client
        retries (defaults to 6 attempts, exponential backoff + jitter).
    max_staleness:
        Bounded-staleness window for pushes, forwarded to the PS.
    heartbeat_timeout:
        Rounds without a fresh heartbeat before a worker is evicted and
        its domains re-sharded (``None`` disables eviction).
    checkpoint_path / checkpoint_every:
        When set, the driver writes a checksummed checkpoint of the PS,
        driver RNG and best-snapshot tracker every ``checkpoint_every``
        epochs; :meth:`resume` restarts from it.
    """

    def __init__(self, n_workers=4, mode="async", outer_optimizer=None,
                 fault_plan=None, retry_policy=None, max_staleness=None,
                 heartbeat_timeout=2, checkpoint_path=None,
                 checkpoint_every=1):
        if mode not in ("sync", "async"):
            raise ValueError(f"unknown mode {mode!r}")
        self.n_workers = n_workers
        self.mode = mode
        self.outer_optimizer = outer_optimizer
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.max_staleness = max_staleness
        self.heartbeat_timeout = heartbeat_timeout
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.ps = None
        self.workers = []
        self.clock = None
        self.crashes = []
        self.evictions = []
        self._beat_ticks = {}
        self._beat_round = {}
        self._start_round = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, model_factory, dataset, config, seed=0, use_dr=False,
            store=None, clusters=None):
        """Train on the cluster; returns a deployable model bank.

        ``model_factory(worker_id) -> model`` builds one replica per worker
        plus the driver's evaluation replica (worker_id ``"driver"``).  With
        ``use_dr=True`` the driver additionally trains per-domain specific
        deltas with DR on top of the PS shared state (full MAMDR).
        ``store`` selects the driver-side parameter backend (see
        :class:`~repro.core.param_space.DomainParameterSpace`); ``clusters``
        (a ``ClusterPlan``) additionally shards whole clusters so
        delta-sharing domains stay co-located.
        """
        rng = spawn_rng(seed, "cluster", dataset.name)
        return self._execute(model_factory, dataset, config, rng,
                             use_dr=use_dr, start_epoch=0,
                             tracker=BestTracker(), store=store,
                             clusters=clusters)

    def fit(self, model_factory, dataset, config, seed=0, use_dr=False):
        """Deprecated pre-transport entrypoint; thin shim over :meth:`run`."""
        warnings.warn(
            "SimulatedCluster.fit is deprecated; call SimulatedCluster.run, "
            "or drive the cluster through the repro.train.Session facade",
            DeprecationWarning, stacklevel=2,
        )
        return self.run(model_factory, dataset, config, seed=seed,
                        use_dr=use_dr)

    def resume(self, model_factory, dataset, config, use_dr=False,
               checkpoint_path=None):
        """Restart a checkpointed run and train the remaining epochs.

        Restores the PS state/version, the server optimizer's slots, the
        driver RNG position and the best-snapshot tracker, so an
        uninterrupted run and a checkpoint→resume run produce
        byte-identical results.
        """
        path = checkpoint_path or self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint_path to resume from")
        ckpt = load_checkpoint(path)
        rng = ckpt.make_rng()
        tracker = BestTracker()
        if ckpt.best_state is not None:
            tracker.update(ckpt.best_score, ckpt.best_state)
        profiling.count("cluster.resume")
        return self._execute(model_factory, dataset, config, rng,
                             use_dr=use_dr, start_epoch=ckpt.epoch,
                             tracker=tracker, restore=ckpt)

    # ------------------------------------------------------------------
    # Driver loop
    # ------------------------------------------------------------------
    def _execute(self, model_factory, dataset, config, rng, use_dr,
                 start_epoch, tracker, restore=None, store=None,
                 clusters=None):
        driver_model = model_factory("driver")
        embedding_names = embedding_parameter_names(driver_model)
        self.clock = VirtualClock()
        self.crashes = []
        self.evictions = []
        self._beat_ticks = {}
        self._beat_round = {}
        self._start_round = start_epoch
        self.ps = ParameterServer(
            driver_model.state_dict(),
            embedding_names=embedding_names,
            outer_lr=config.outer_lr,
            outer_optimizer=self.outer_optimizer,
            max_staleness=self.max_staleness,
        )
        if restore is not None:
            self.ps.restore(restore.state, restore.version,
                            restore.optimizer_slots)
        shards = shard_domains(dataset, self.n_workers, clusters=clusters)
        field_map = embedding_field_map(driver_model) if embedding_names else {}
        self.workers = [
            Worker(i, model_factory(i), shard,
                   self._make_client(i, start_epoch), config,
                   field_map=field_map)
            for i, shard in enumerate(shards) if shard
        ]
        if restore is not None:
            restore_module_rngs(driver_model, restore.driver_rngs)
            for worker in self.workers:
                slots = restore.worker_slots.get(worker.worker_id)
                if slots:
                    worker.optimizer.load_state_slots(slots)
                restore_module_rngs(
                    worker.model, restore.worker_rngs.get(worker.worker_id)
                )

        for epoch in range(start_epoch, config.epochs):
            self.clock.advance(1.0)
            self._evict_unresponsive(dataset, epoch)
            self._run_round(dataset, rng)
            self._observe_heartbeats(epoch)
            driver_model.load_state_dict(self.ps.full_state())
            tracker.update(model_split_auc(driver_model, dataset),
                           self.ps.full_state())
            if (
                self.checkpoint_path is not None
                and (epoch + 1) % self.checkpoint_every == 0
                and epoch + 1 < config.epochs
            ):
                save_checkpoint(self.checkpoint_path, self.ps, epoch + 1,
                                rng=rng, tracker=tracker,
                                workers=self.workers,
                                driver_model=driver_model)

        shared = tracker.best
        driver_model.load_state_dict(shared)
        if not use_dr:
            return SingleModelBank(driver_model)

        # Full MAMDR: DR for the specific deltas, run driver-side and
        # gated by the store's delta-sharing groups.
        space = DomainParameterSpace(driver_model, dataset.n_domains,
                                     store=store)
        space.set_shared(shared)
        view, groups = space.training_plan(dataset)
        dr_tracker = PerDomainTracker(dataset.n_domains)
        for _ in range(config.epochs):
            for position, group in enumerate(groups):
                delta = domain_regularization_round(
                    driver_model, view, space, position, config, rng,
                    delta=space.group_delta(group),
                )
                space.apply_delta(group, delta)
            dr_tracker.update_from_space(driver_model, dataset, space)
        return StateBank(driver_model, dr_tracker.best_states(),
                         default_state=space.shared)

    def _make_client(self, worker_id, start_epoch):
        channel = DirectChannel(self.ps)
        retry_rng = None
        if self.fault_plan is not None:
            channel = FaultyChannel(channel, self.fault_plan, worker_id,
                                    clock=self.clock)
            retry_rng = self.fault_plan.retry_rng(worker_id)
        return PSClient(channel, worker_id, retry=self.retry_policy,
                        rng=retry_rng, clock=self.clock,
                        incarnation=start_epoch)

    # ------------------------------------------------------------------
    # Scheduling, crashes, eviction
    # ------------------------------------------------------------------
    def _run_round(self, dataset, rng):
        if self.mode == "async":
            order = list(range(len(self.workers)))
            rng.shuffle(order)
            for index in order:
                self._run_worker_epoch(self.workers[index], dataset, rng)
        else:
            # Bulk-synchronous: everyone pulls the same snapshot; deltas are
            # buffered on the PS and applied together at the round barrier.
            self.ps.begin_sync_round()
            for worker in self.workers:
                self._run_worker_epoch(worker, dataset, rng)
            self.ps.end_sync_round()

    def _run_worker_epoch(self, worker, dataset, rng):
        if not worker.alive or worker.evicted:
            return
        try:
            worker.run_epoch(dataset, rng)
        except WorkerCrashed as crash:
            worker.alive = False
            profiling.count("cluster.worker_crash")
            self.crashes.append({
                "worker": worker.worker_id,
                "reason": f"crashed on message #{crash.message_index}",
                "tick": self.clock.now,
            })
        except DeliveryFailed as failure:
            # The PS stayed unreachable through every retry: the worker is
            # effectively partitioned away; treat it like a dead process.
            worker.alive = False
            profiling.count("cluster.worker_unreachable")
            self.crashes.append({
                "worker": worker.worker_id,
                "reason": str(failure),
                "tick": self.clock.now,
            })

    def _observe_heartbeats(self, round_index):
        """Record which workers produced a fresh beat this round."""
        for worker in self.workers:
            tick = self.ps.heartbeats.get(worker.worker_id)
            if tick is not None and tick != self._beat_ticks.get(worker.worker_id):
                self._beat_ticks[worker.worker_id] = tick
                self._beat_round[worker.worker_id] = round_index

    def _evict_unresponsive(self, dataset, round_index):
        """Evict workers whose heartbeats stalled; re-shard their domains.

        The monitor only sees heartbeats — it never peeks at the crash
        exception — so recovery is driven by the same signal the real
        deployment has.
        """
        if self.heartbeat_timeout is None:
            return
        # A healthy worker's last beat is one round old at check time, so a
        # worker is unresponsive once its silence *exceeds* the timeout:
        # with heartbeat_timeout=1, a worker that died in round k is
        # evicted at the start of round k+2.
        doomed = [
            worker for worker in self.workers
            if not worker.evicted
            and round_index - self._beat_round.get(
                worker.worker_id, self._start_round
            ) > self.heartbeat_timeout
        ]
        if not doomed:
            return
        for worker in doomed:
            worker.evicted = True
        survivors = [w for w in self.workers if not w.evicted]
        if not survivors:
            raise RuntimeError(
                "every worker was evicted; restart from the last checkpoint "
                "with SimulatedCluster.resume()"
            )
        for worker in doomed:
            orphaned, worker.domain_indices = worker.domain_indices, []
            assignments = reassign_domains(dataset, orphaned, survivors)
            profiling.count("cluster.eviction")
            self.evictions.append({
                "worker": worker.worker_id,
                "round": round_index,
                "reassigned": assignments,
            })

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self):
        """Synchronization, transport and recovery statistics."""
        if self.ps is None:
            raise RuntimeError("run() has not been called")
        return {
            "ps_version": self.ps.version,
            "ps_pulls": dict(self.ps.pull_counts),
            "ps_pushes": dict(self.ps.push_counts),
            "ps_dedup_hits": self.ps.dedup_hits,
            "ps_stale_rejections": self.ps.stale_rejections,
            "workers": {
                worker.worker_id: worker.cache_stats()
                for worker in self.workers
            },
            "transport": {
                worker.worker_id: worker.transport_stats()
                for worker in self.workers
            },
            "crashes": list(self.crashes),
            "evictions": list(self.evictions),
            "virtual_seconds": self.clock.now if self.clock else 0.0,
        }
