"""``repro.distributed`` — simulated fault-tolerant PS-Worker runtime.

The Section IV-E production architecture, in-process and deterministic:

* :mod:`~repro.distributed.ps` — the parameter server: row-wise embedding
  access, sync/async rounds, push dedup, bounded-staleness rejection;
* :mod:`~repro.distributed.worker` / :mod:`~repro.distributed.cache` —
  worker replicas with the static/dynamic embedding cache;
* :mod:`~repro.distributed.transport` — the typed message channel every
  PS↔worker interaction goes through (pull/push/heartbeat requests,
  version-stamped responses, retry with backoff, the ``PSClient`` stub);
* :mod:`~repro.distributed.faults` — deterministic, seeded fault plans
  (drops, lost replies, duplicated deliveries, slow workers, mid-epoch
  crashes);
* :mod:`~repro.distributed.checkpoint` — checksummed PS checkpoints and
  exact resume;
* :mod:`~repro.distributed.cluster` — the driver: sharding, scheduling,
  heartbeat-based eviction with greedy re-sharding, checkpoint/resume;
* :mod:`~repro.distributed.parallel` — real multi-core fan-out: forked
  worker processes replay the compiled step tape over domain shards,
  talking to the driver's PS through a pipe-backed transport channel;
* :mod:`~repro.distributed.vector` — single-core lane parallelism: all
  workers of a bulk-synchronous DN round (or all DR targets) replay as
  one lane-batched tape, bitwise-equal to the sequential reference.

Prefer driving training through :class:`repro.train.Session`; the names
below are the supported surface for building custom setups.
"""

from .cache import EmbeddingCache
from .checkpoint import ClusterCheckpoint, load_checkpoint, save_checkpoint
from .cluster import SimulatedCluster, reassign_domains, shard_domains
from .faults import FaultPlan, WorkerCrashed
from .parallel import (
    PipeChannel,
    RemoteWorkerError,
    parallel_dn_epoch,
    parallel_dr_rounds,
    resolve_worker_count,
)
from .ps import ParameterServer
from .vector import sync_dn_round_reference, vector_dn_round, vector_dr_rounds
from .transport import (
    Channel,
    DeliveryFailed,
    DirectChannel,
    FaultyChannel,
    HeartbeatRequest,
    MessageDropped,
    PSClient,
    PullDenseRequest,
    PullRowsRequest,
    PushRequest,
    ReplyLost,
    Response,
    RetryPolicy,
    TransportError,
    VirtualClock,
    call_with_retry,
)
from .worker import Worker, embedding_field_map, embedding_parameter_names

__all__ = [
    # server / workers / cache
    "ParameterServer",
    "EmbeddingCache",
    "Worker",
    "embedding_field_map",
    "embedding_parameter_names",
    # transport
    "Channel",
    "DirectChannel",
    "FaultyChannel",
    "PSClient",
    "RetryPolicy",
    "VirtualClock",
    "call_with_retry",
    "PullDenseRequest",
    "PullRowsRequest",
    "PushRequest",
    "HeartbeatRequest",
    "Response",
    "TransportError",
    "MessageDropped",
    "ReplyLost",
    "DeliveryFailed",
    # faults
    "FaultPlan",
    "WorkerCrashed",
    # checkpointing
    "ClusterCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    # cluster
    "SimulatedCluster",
    "shard_domains",
    "reassign_domains",
    # multi-core parallel replay
    "PipeChannel",
    "RemoteWorkerError",
    "parallel_dn_epoch",
    "parallel_dr_rounds",
    "resolve_worker_count",
    # single-core lane-vectorized replay
    "vector_dn_round",
    "sync_dn_round_reference",
    "vector_dr_rounds",
]
