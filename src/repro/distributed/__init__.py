"""``repro.distributed`` — simulated PS-Worker implementation (Section IV-E).

Parameter server with row-wise embedding access, the static/dynamic
embedding cache, worker replicas, and a deterministic in-process cluster
with sync and async scheduling.
"""

from .cache import EmbeddingCache
from .cluster import SimulatedCluster, shard_domains
from .ps import ParameterServer
from .worker import Worker, embedding_field_map, embedding_parameter_names

__all__ = [
    "ParameterServer",
    "EmbeddingCache",
    "Worker",
    "embedding_field_map",
    "embedding_parameter_names",
    "SimulatedCluster",
    "shard_domains",
]
