"""MLP — the simplest baseline and the paper's base model for MAMDR.

Table V applies MAMDR to a plain multi-layer perceptron ("we just use the
simplest multi-layer perceptron with three fully connected layers as the
base model structure") and it outperforms every specialised architecture.
"""

from __future__ import annotations

from ..nn import MLPBlock
from .base import CTRModel

__all__ = ["MLP"]


class MLP(CTRModel):
    """Concatenated field features through a dense stack to one logit."""

    def __init__(self, encoder, rng, hidden_dims=(64, 32), dropout_rate=0.1):
        super().__init__(encoder)
        self.body = MLPBlock(
            encoder.flat_dim,
            list(hidden_dims) + [1],
            rng,
            activation="relu",
            dropout_rate=dropout_rate,
            out_activation="linear",
        )

    def forward(self, batch):
        x = self.encoder.concat(batch)
        return self.body(x).reshape(len(batch))
