"""``repro.models`` — the CTR model zoo from the paper's experiments.

Single-domain architectures: MLP, WDL, NeurFM, AutoInt, DeepFM.
Multi-domain architectures: Shared-Bottom, MMoE, CGC, PLE, STAR.

:func:`build_model` constructs any of them, with the feature encoder chosen
by the dataset's feature mode, so experiment code can be written once per
table rather than once per model.
"""

from __future__ import annotations

from ..utils.seeding import spawn_rng
from .autoint import AutoInt, InteractionAttention
from .base import CTRModel
from .deepfm import DeepFM
from .features import (
    FeatureEncoder,
    FixedFeatureEncoder,
    TrainableEmbeddingEncoder,
    build_encoder,
)
from .mlp import MLP
from .mmoe import MMoE
from .neurfm import NeurFM, bi_interaction
from .ple import CGC, PLE, CGCLayer
from .shared_bottom import SharedBottom
from .star import STAR, StarLayer
from .wdl import WDL

__all__ = [
    "CTRModel",
    "FeatureEncoder",
    "TrainableEmbeddingEncoder",
    "FixedFeatureEncoder",
    "build_encoder",
    "MLP",
    "WDL",
    "NeurFM",
    "AutoInt",
    "DeepFM",
    "SharedBottom",
    "MMoE",
    "CGC",
    "PLE",
    "STAR",
    "StarLayer",
    "CGCLayer",
    "InteractionAttention",
    "bi_interaction",
    "MODEL_REGISTRY",
    "build_model",
]

#: model name -> (class, needs_n_domains)
MODEL_REGISTRY = {
    "mlp": (MLP, False),
    "wdl": (WDL, False),
    "neurfm": (NeurFM, False),
    "autoint": (AutoInt, False),
    "deepfm": (DeepFM, False),
    "shared_bottom": (SharedBottom, True),
    "mmoe": (MMoE, True),
    "cgc": (CGC, True),
    "ple": (PLE, True),
    "star": (STAR, True),
    # "RAW" is the paper's name for the existing production model MAMDR is
    # applied to in the industry experiments; an MLP plays that role here.
    "raw": (MLP, False),
}


def build_model(name, dataset, seed=0, field_dim=16, **overrides):
    """Construct a model from the registry for a given dataset.

    The feature encoder (trainable embeddings vs frozen features) is chosen
    automatically; ``overrides`` are forwarded to the model constructor.
    """
    key = name.lower()
    try:
        model_cls, needs_domains = MODEL_REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; expected one of {sorted(MODEL_REGISTRY)}"
        ) from None
    encoder_rng = spawn_rng(seed, "encoder", key)
    model_rng = spawn_rng(seed, "model", key)
    encoder = build_encoder(dataset, field_dim, encoder_rng)
    if needs_domains:
        return model_cls(encoder, model_rng, n_domains=dataset.n_domains, **overrides)
    return model_cls(encoder, model_rng, **overrides)
