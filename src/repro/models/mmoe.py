"""Multi-gate Mixture-of-Experts (Ma et al., KDD 2018).

Shared expert networks, with a per-domain gating network producing a softmax
mixture over experts, followed by a per-domain tower.
"""

from __future__ import annotations

from ..nn import Dense, MLPBlock, ModuleList
from ..nn import functional as F
from .base import CTRModel

__all__ = ["MMoE"]


class MMoE(CTRModel):
    """MMoE with per-domain gates and towers."""

    multi_domain = True

    def __init__(self, encoder, rng, n_domains, num_experts=2,
                 expert_dims=(64, 32), tower_dims=(16,), dropout_rate=0.1):
        super().__init__(encoder)
        self.n_domains = n_domains
        self.num_experts = num_experts
        self.experts = ModuleList(
            MLPBlock(encoder.flat_dim, expert_dims, rng,
                     activation="relu", dropout_rate=dropout_rate)
            for _ in range(num_experts)
        )
        expert_out = self.experts[0].out_dim
        self.gates = ModuleList(
            Dense(encoder.flat_dim, num_experts, rng)
            for _ in range(n_domains)
        )
        self.towers = ModuleList(
            MLPBlock(expert_out, list(tower_dims) + [1], rng,
                     activation="relu", out_activation="linear")
            for _ in range(n_domains)
        )

    def forward(self, batch):
        x = self.encoder.concat(batch)
        expert_outputs = F.stack([expert(x) for expert in self.experts], axis=1)
        gate_weights = F.softmax(self.gates[batch.domain](x), axis=-1)  # [B, E]
        mixed = (expert_outputs * gate_weights.reshape(len(batch), self.num_experts, 1)).sum(axis=1)
        return self.towers[batch.domain](mixed).reshape(len(batch))
