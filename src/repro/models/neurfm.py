"""Neural Factorization Machine (He & Chua, SIGIR 2017).

A bi-interaction pooling layer captures second-order feature interactions,
followed by an MLP; a linear term over the raw fields is added to the logit.
"""

from __future__ import annotations

from ..nn import Dense, MLPBlock
from ..nn import functional as F
from .base import CTRModel

__all__ = ["NeurFM", "bi_interaction"]


def bi_interaction(fields):
    """Bi-interaction pooling: 0.5 * ((Σ v)^2 − Σ v^2), shape [B, d].

    Equivalent to the sum of element-wise products over all field pairs.
    """
    stacked = F.stack(fields, axis=0)          # [F, B, d]
    sum_fields = stacked.sum(axis=0)           # [B, d]
    sum_squares = (stacked * stacked).sum(axis=0)
    return (sum_fields * sum_fields - sum_squares) * 0.5


class NeurFM(CTRModel):
    """Bi-interaction pooling + MLP, plus a first-order linear term."""

    def __init__(self, encoder, rng, hidden_dims=(64, 32), dropout_rate=0.1):
        super().__init__(encoder)
        self.linear = Dense(encoder.flat_dim, 1, rng)
        self.deep = MLPBlock(
            encoder.field_dim,
            list(hidden_dims) + [1],
            rng,
            activation="relu",
            dropout_rate=dropout_rate,
            out_activation="linear",
        )

    def forward(self, batch):
        fields = self.encoder.fields(batch)
        pooled = bi_interaction(fields)
        first_order = self.linear(F.concat(fields, axis=-1))
        second_order = self.deep(pooled)
        return (first_order + second_order).reshape(len(batch))
