"""STAR: Star Topology Adaptive Recommender (Sheng et al., CIKM 2021).

The state-of-the-art MDR baseline in Table V.  Each fully-connected layer
combines a shared (centered) weight with a domain-specific weight by
element-wise multiplication — the star topology — and inputs pass through
Partitioned Normalization with per-domain statistics.  An auxiliary network
on the domain indicator adds a domain-prior logit.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    Module,
    ModuleList,
    Parameter,
    PartitionedNorm,
    glorot_uniform,
)
from ..nn import init
from .base import CTRModel

__all__ = ["STAR", "StarLayer"]


class StarLayer(Module):
    """FCN layer with star-combined weights.

    Effective weights for domain ``d``: ``W = W_shared * W_d`` (element-wise)
    and ``b = b_shared + b_d``; specific factors start at one/zero so the
    layer initially equals its shared part.
    """

    def __init__(self, in_dim, out_dim, n_domains, rng, activation="relu"):
        super().__init__()
        self.weight_shared = Parameter(glorot_uniform(rng, (in_dim, out_dim)))
        self.bias_shared = Parameter(init.zeros(out_dim))
        self.weight_domain = Parameter(np.ones((n_domains, in_dim, out_dim)))
        self.bias_domain = Parameter(init.zeros((n_domains, out_dim)))
        from ..nn.layers import resolve_activation

        self._activation = resolve_activation(activation)
        self.n_domains = n_domains

    def forward(self, x, domain):
        weight = self.weight_shared * self.weight_domain[domain]
        bias = self.bias_shared + self.bias_domain[domain]
        return self._activation(x @ weight + bias)


class STAR(CTRModel):
    """Star-topology FCN with Partitioned Normalization and domain prior."""

    multi_domain = True

    def __init__(self, encoder, rng, n_domains, hidden_dims=(64, 32)):
        super().__init__(encoder)
        self.n_domains = n_domains
        self.input_norm = PartitionedNorm(encoder.flat_dim, n_domains)
        dims = [encoder.flat_dim] + list(hidden_dims)
        self.star_layers = ModuleList(
            StarLayer(d_in, d_out, n_domains, rng)
            for d_in, d_out in zip(dims[:-1], dims[1:])
        )
        self.output = StarLayer(dims[-1], 1, n_domains, rng, activation="linear")
        # Auxiliary network: a learned per-domain prior logit.
        self.domain_prior = Parameter(init.zeros(n_domains))

    def forward(self, batch):
        x = self.encoder.concat(batch)
        x = self.input_norm(x, batch.domain)
        for layer in self.star_layers:
            x = layer(x, batch.domain)
        logits = self.output(x, batch.domain).reshape(len(batch))
        return logits + self.domain_prior[batch.domain]
