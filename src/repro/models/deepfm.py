"""DeepFM (Guo et al., IJCAI 2017).

A factorization-machine component (first-order linear + second-order pairwise
interactions) sharing field embeddings with a deep MLP component.
"""

from __future__ import annotations

from ..nn import Dense, MLPBlock
from ..nn import functional as F
from .base import CTRModel
from .neurfm import bi_interaction

__all__ = ["DeepFM"]


class DeepFM(CTRModel):
    """FM (linear + pairwise) plus deep MLP, summed into one logit."""

    def __init__(self, encoder, rng, hidden_dims=(64, 32), dropout_rate=0.1):
        super().__init__(encoder)
        self.linear = Dense(encoder.flat_dim, 1, rng)
        self.deep = MLPBlock(
            encoder.flat_dim,
            list(hidden_dims) + [1],
            rng,
            activation="relu",
            dropout_rate=dropout_rate,
            out_activation="linear",
        )

    def forward(self, batch):
        fields = self.encoder.fields(batch)
        flat = F.concat(fields, axis=-1)
        first_order = self.linear(flat)
        # FM second-order term: sum over the bi-interaction vector.
        second_order = bi_interaction(fields).sum(axis=-1, keepdims=True)
        deep_logit = self.deep(flat)
        return (first_order + second_order + deep_logit).reshape(len(batch))
