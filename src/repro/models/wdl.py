"""Wide & Deep (Cheng et al., 2016).

A wide linear component over raw field features plus an explicit
cross-product feature (the element-wise user-item interaction stands in for
hand-crafted crosses), combined with a deep MLP component.
"""

from __future__ import annotations

from ..nn import Dense, MLPBlock
from ..nn import functional as F
from .base import CTRModel

__all__ = ["WDL"]


class WDL(CTRModel):
    """Wide (linear + cross features) and Deep (MLP) joint model."""

    def __init__(self, encoder, rng, hidden_dims=(64, 32), dropout_rate=0.1):
        super().__init__(encoder)
        self.wide = Dense(encoder.flat_dim + encoder.field_dim, 1, rng)
        self.deep = MLPBlock(
            encoder.flat_dim,
            list(hidden_dims) + [1],
            rng,
            activation="relu",
            dropout_rate=dropout_rate,
            out_activation="linear",
        )

    def forward(self, batch):
        fields = self.encoder.fields(batch)
        flat = F.concat(fields, axis=-1)
        cross = fields[0] * fields[1]
        wide_logit = self.wide(F.concat([flat, cross], axis=-1))
        deep_logit = self.deep(flat)
        return (wide_logit + deep_logit).reshape(len(batch))
