"""AutoInt (Song et al., CIKM 2019).

Multi-head self-attention over field embeddings learns high-order feature
interactions automatically; the paper's configuration uses 4 attention
heads — ours defaults to 2 at the reduced embedding size.
"""

from __future__ import annotations

import numpy as np

from ..nn import Dense, Module, Parameter, glorot_uniform
from ..nn import functional as F
from .base import CTRModel

__all__ = ["AutoInt", "InteractionAttention"]


class InteractionAttention(Module):
    """One multi-head self-attention layer over fields with a residual."""

    def __init__(self, dim, num_heads, rng):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_query = Parameter(glorot_uniform(rng, (dim, dim)))
        self.w_key = Parameter(glorot_uniform(rng, (dim, dim)))
        self.w_value = Parameter(glorot_uniform(rng, (dim, dim)))
        self.w_residual = Parameter(glorot_uniform(rng, (dim, dim)))

    def forward(self, fields):
        """``fields``: [B, F, d] tensor -> [B, F, d] tensor."""
        batch, n_fields, _ = fields.shape

        def heads(weight):
            projected = fields @ weight                     # [B, F, d]
            return (
                projected
                .reshape(batch, n_fields, self.num_heads, self.head_dim)
                .transpose(0, 2, 1, 3)                      # [B, H, F, hd]
            )

        query, key, value = heads(self.w_query), heads(self.w_key), heads(self.w_value)
        scores = query @ key.swapaxes(-1, -2)               # [B, H, F, F]
        weights = F.softmax(scores * (1.0 / np.sqrt(self.head_dim)), axis=-1)
        attended = weights @ value                          # [B, H, F, hd]
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, n_fields, self.dim)
        return F.relu(merged + fields @ self.w_residual)


class AutoInt(CTRModel):
    """Stacked interaction attention layers feeding a linear output head."""

    def __init__(self, encoder, rng, num_layers=1, num_heads=2):
        super().__init__(encoder)
        from ..nn import ModuleList

        self.attention_layers = ModuleList(
            InteractionAttention(encoder.field_dim, num_heads, rng)
            for _ in range(num_layers)
        )
        self.output = Dense(encoder.flat_dim, 1, rng)

    def forward(self, batch):
        fields = F.stack(self.encoder.fields(batch), axis=1)   # [B, F, d]
        for layer in self.attention_layers:
            fields = layer(fields)
        flat = fields.reshape(len(batch), self.encoder.flat_dim)
        return self.output(flat).reshape(len(batch))
