"""Base class shared by all CTR models in the zoo."""

from __future__ import annotations

from ..nn import Module, no_grad
from ..nn import functional as F

__all__ = ["CTRModel"]


class CTRModel(Module):
    """A click-through-rate model: batch in, logits out.

    Single-domain architectures ignore ``batch.domain``; multi-domain ones
    (Shared-Bottom, MMoE, PLE, STAR) route through their domain-specific
    components with it.
    """

    #: whether the architecture has built-in domain-specific parameters
    multi_domain = False

    def __init__(self, encoder):
        super().__init__()
        self.encoder = encoder

    def forward(self, batch):
        """Return logits as a Tensor of shape [len(batch)]."""
        raise NotImplementedError

    def loss(self, batch, sample_weight=None):
        """Mean binary cross entropy on the batch."""
        logits = self(batch)
        return F.bce_with_logits(logits, batch.labels, sample_weight=sample_weight)

    def predict(self, batch):
        """Click probabilities as a plain numpy array (no graph recorded)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                probs = F.sigmoid(self(batch)).numpy()
        finally:
            self.train(was_training)
        return probs
