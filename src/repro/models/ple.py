"""CGC and PLE (Tang et al., RecSys 2020).

Customized Gate Control (CGC) separates shared experts from domain-specific
experts, with per-domain gates mixing {shared + own-specific} experts.
Progressive Layered Extraction (PLE) stacks several CGC extraction layers.
The industry comparison (Table VIII) uses both CGC (single layer) and PLE.
"""

from __future__ import annotations

from ..nn import Dense, MLPBlock, Module, ModuleList
from ..nn import functional as F
from .base import CTRModel

__all__ = ["CGCLayer", "CGC", "PLE"]


class CGCLayer(Module):
    """One extraction layer: shared + per-domain experts, per-domain gates.

    ``forward(shared_input, domain_inputs, domain)`` returns the new
    ``(shared_output, domain_output)`` pair for the requested domain.  The
    shared output mixes *all* experts through a shared gate (used only when
    another CGC layer follows).
    """

    def __init__(self, in_dim, n_domains, num_shared_experts, num_specific_experts,
                 expert_dims, rng, dropout_rate=0.0):
        super().__init__()
        self.n_domains = n_domains
        self.num_shared = num_shared_experts
        self.num_specific = num_specific_experts
        self.shared_experts = ModuleList(
            MLPBlock(in_dim, expert_dims, rng, activation="relu",
                     dropout_rate=dropout_rate)
            for _ in range(num_shared_experts)
        )
        self.specific_experts = ModuleList(
            ModuleList(
                MLPBlock(in_dim, expert_dims, rng, activation="relu",
                         dropout_rate=dropout_rate)
                for _ in range(num_specific_experts)
            )
            for _ in range(n_domains)
        )
        # Per-domain gate mixes shared + that domain's specific experts.
        self.domain_gates = ModuleList(
            Dense(in_dim, num_shared_experts + num_specific_experts, rng)
            for _ in range(n_domains)
        )
        # Shared gate mixes shared experts only (feeds the next layer).
        self.shared_gate = Dense(in_dim, num_shared_experts, rng)
        self.out_dim = expert_dims[-1]

    def forward(self, shared_input, domain_input, domain):
        batch = len(shared_input)
        shared_outs = [expert(shared_input) for expert in self.shared_experts]
        specific_outs = [
            expert(domain_input) for expert in self.specific_experts[domain]
        ]

        mixed_experts = F.stack(shared_outs + specific_outs, axis=1)
        gate = F.softmax(self.domain_gates[domain](domain_input), axis=-1)
        domain_out = (
            mixed_experts * gate.reshape(batch, self.num_shared + self.num_specific, 1)
        ).sum(axis=1)

        shared_experts_only = F.stack(shared_outs, axis=1)
        shared_gate = F.softmax(self.shared_gate(shared_input), axis=-1)
        shared_out = (
            shared_experts_only * shared_gate.reshape(batch, self.num_shared, 1)
        ).sum(axis=1)
        return shared_out, domain_out


class CGC(CTRModel):
    """Single-layer Customized Gate Control with per-domain towers."""

    multi_domain = True
    _num_layers = 1

    def __init__(self, encoder, rng, n_domains, num_shared_experts=1,
                 num_specific_experts=1, expert_dims=(32,), tower_dims=(16,),
                 dropout_rate=0.1):
        super().__init__(encoder)
        self.n_domains = n_domains
        layers = []
        in_dim = encoder.flat_dim
        for _ in range(self._num_layers):
            layer = CGCLayer(
                in_dim, n_domains, num_shared_experts, num_specific_experts,
                expert_dims, rng, dropout_rate=dropout_rate,
            )
            layers.append(layer)
            in_dim = layer.out_dim
        self.extraction_layers = ModuleList(layers)
        self.towers = ModuleList(
            MLPBlock(in_dim, list(tower_dims) + [1], rng,
                     activation="relu", out_activation="linear")
            for _ in range(n_domains)
        )

    def forward(self, batch):
        x = self.encoder.concat(batch)
        shared, specific = x, x
        for layer in self.extraction_layers:
            shared, specific = layer(shared, specific, batch.domain)
        return self.towers[batch.domain](specific).reshape(len(batch))


class PLE(CGC):
    """Progressive Layered Extraction: two stacked CGC layers."""

    _num_layers = 2
