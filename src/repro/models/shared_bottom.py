"""Shared-Bottom multi-task model (Ruder 2017, applied to MDR).

One shared bottom network plus a small tower network per domain — the
canonical "shared + specific parameters" decomposition of Figure 1(c).
"""

from __future__ import annotations

from ..nn import MLPBlock, ModuleList
from .base import CTRModel

__all__ = ["SharedBottom"]


class SharedBottom(CTRModel):
    """Shared bottom MLP, one tower head per domain."""

    multi_domain = True

    def __init__(self, encoder, rng, n_domains, bottom_dims=(64, 32),
                 tower_dims=(16,), dropout_rate=0.1):
        super().__init__(encoder)
        self.n_domains = n_domains
        self.bottom = MLPBlock(
            encoder.flat_dim, bottom_dims, rng,
            activation="relu", dropout_rate=dropout_rate,
        )
        self.towers = ModuleList(
            MLPBlock(
                self.bottom.out_dim, list(tower_dims) + [1], rng,
                activation="relu", out_activation="linear",
            )
            for _ in range(n_domains)
        )

    def forward(self, batch):
        shared = self.bottom(self.encoder.concat(batch))
        tower = self.towers[batch.domain]
        return tower(shared).reshape(len(batch))
