"""Feature encoders: the global feature storage of the paper's Figure 2.

Every CTR model consumes the same interface — a list of per-field dense
vectors for a batch of (user, item) pairs:

* :class:`TrainableEmbeddingEncoder` learns id-embedding tables (the Amazon
  setting, where the paper randomly initializes features and trains them).
* :class:`FixedFeatureEncoder` holds frozen dense features (the Taobao
  setting, where GraphSage features are fixed) behind trainable per-field
  projections so all models see a uniform field dimension.
"""

from __future__ import annotations

import numpy as np

from ..nn import Dense, Embedding, Module
from ..nn import functional as F

__all__ = [
    "FeatureEncoder",
    "TrainableEmbeddingEncoder",
    "FixedFeatureEncoder",
    "build_encoder",
]


class FeatureEncoder(Module):
    """Common interface: a batch in, a list of [B, field_dim] tensors out."""

    n_fields = 2  # user, item

    def __init__(self, field_dim):
        super().__init__()
        self.field_dim = field_dim

    @property
    def flat_dim(self):
        """Dimension of the concatenated field representation."""
        return self.n_fields * self.field_dim

    def fields(self, batch):
        raise NotImplementedError

    def concat(self, batch):
        """Concatenated field representation, [B, flat_dim]."""
        return F.concat(self.fields(batch), axis=-1)


class TrainableEmbeddingEncoder(FeatureEncoder):
    """Learned user/item embedding tables."""

    def __init__(self, n_users, n_items, field_dim, rng, std=0.05):
        super().__init__(field_dim)
        self.user_embedding = Embedding(n_users, field_dim, rng, std=std)
        self.item_embedding = Embedding(n_items, field_dim, rng, std=std)

    def fields(self, batch):
        return [
            self.user_embedding(batch.users),
            self.item_embedding(batch.items),
        ]


class FixedFeatureEncoder(FeatureEncoder):
    """Frozen dense features behind trainable linear projections.

    The raw feature matrices are plain numpy arrays (never updated), matching
    the paper's "we fixed these features during training".
    """

    def __init__(self, user_features, item_features, field_dim, rng):
        super().__init__(field_dim)
        self._user_features = np.asarray(user_features, dtype=np.float64)
        self._item_features = np.asarray(item_features, dtype=np.float64)
        self.user_projection = Dense(self._user_features.shape[1], field_dim, rng)
        self.item_projection = Dense(self._item_features.shape[1], field_dim, rng)

    def fields(self, batch):
        # fixed_gather (not a bare Tensor(...) wrap) so the compiled executor
        # re-gathers with each replay batch's ids.
        user_raw = F.fixed_gather(self._user_features, batch.users)
        item_raw = F.fixed_gather(self._item_features, batch.items)
        return [
            self.user_projection(user_raw),
            self.item_projection(item_raw),
        ]


def build_encoder(dataset, field_dim, rng):
    """Pick the encoder matching a dataset's feature mode."""
    if dataset.has_fixed_features:
        return FixedFeatureEncoder(
            dataset.user_features, dataset.item_features, field_dim, rng
        )
    return TrainableEmbeddingEncoder(
        dataset.n_users, dataset.n_items, field_dim, rng
    )
