"""Versioned model snapshots for online serving.

The deployment of Section IV-E publishes a trained
:class:`~repro.core.param_space.DomainParameterSpace` to the serving tier:
per-domain combined states ``Θ_i = θ_S + θ_i`` behind a parameter server.
A :class:`ModelSnapshot` is one immutable published version; a
:class:`SnapshotStore` holds the live version and hot-swaps it atomically —
a reader that grabbed :meth:`SnapshotStore.current` finishes its whole
batch on that object while new requests see the new version.

Materialization is copy-on-write: the shared state is copied (and frozen)
once, and every per-domain entry whose specific delta is exactly zero —
untouched embedding tables, frozen fields — *aliases* the frozen shared
array instead of holding an ``θ_S + 0`` copy.  Publishing ``n_domains``
combined states therefore does not cost ``n_domains`` full model copies.

Persistence reuses :mod:`repro.nn.serialization`, whose format-version +
checksum header makes a truncated or bit-flipped snapshot fail at load
time instead of silently serving garbage parameters.

For the multi-process predictor pool (:mod:`repro.traffic.pool`) the COW
materialization extends *across processes*: a
:class:`SharedSnapshotArena` packs every unique array of a snapshot —
each aliased ``θ_S`` table exactly once — into a single
``multiprocessing.shared_memory`` segment, and workers attach zero-copy,
read-only views.  Segments are generation-tagged so a hot reload under
load creates a fresh segment and flips workers atomically, while requests
already in flight finish on the generation they pinned.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from multiprocessing import shared_memory

import numpy as np

from ..nn.serialization import load_bank_states, save_bank_states

__all__ = ["ModelSnapshot", "SnapshotStore", "SharedSnapshotArena"]


def _freeze(array):
    """Mark an array read-only (published snapshots are immutable)."""
    array.setflags(write=False)
    return array


class ModelSnapshot:
    """One immutable published version of per-domain serving states.

    Attributes
    ----------
    version:
        Monotonically increasing publish counter (1, 2, ...).
    states:
        ``{domain: {name: ndarray}}`` combined per-domain states; arrays
        are read-only and may alias :attr:`default_state` entries (COW).
    default_state:
        The shared state ``θ_S``, served to unknown domains.
    access_counts:
        Optional ``{param_name: per-row access counts}`` recorded at
        publish time; the serve-side embedding cache pins its static set
        from these (hot rows by training-time access frequency).
    """

    def __init__(self, version, states, default_state, access_counts=None,
                 metadata=None):
        self.version = version
        self.states = states
        self.default_state = default_state
        self.access_counts = dict(access_counts or {})
        self.metadata = dict(metadata or {})

    @property
    def domains(self):
        return sorted(self.states)

    def state_for(self, domain):
        """The combined state serving ``domain`` (shared θ_S fallback)."""
        state = self.states.get(domain)
        if state is None:
            if self.default_state is None:
                raise KeyError(f"no parameters published for domain {domain}")
            return self.default_state
        return state

    def rows_for(self, name, domain, ids):
        """Combined rows ``Θ_domain[name][ids]`` — the simulated PS pull.

        O(len(ids)) gather out of the materialized table; this is the
        backing fetch of the serve-side embedding cache.
        """
        return self.state_for(domain)[name][ids]

    def static_row_ids(self, name, capacity):
        """Top-``capacity`` hottest rows of table ``name`` by access count.

        Rows never touched during training are not pinned — the dynamic
        LRU tier exists for exactly that tail.
        """
        counts = self.access_counts.get(name)
        if counts is None or capacity <= 0:
            return np.empty(0, dtype=np.int64)
        counts = np.asarray(counts)
        hot = np.argsort(counts, kind="stable")[::-1][:capacity]
        return np.sort(hot[counts[hot] > 0]).astype(np.int64)

    def cow_stats(self):
        """How much publishing saved: aliased vs. copied per-domain arrays.

        ``aliased_arrays``/``copied_arrays`` count per *domain* entry (the
        serving view); ``unique_states``/``copied_bytes`` deduplicate by
        state object, so domains sharing a cluster-level state (the
        clustered backend's tail) are charged once.
        """
        aliased = copied = 0
        bytes_saved = copied_bytes = 0
        seen_states = set()
        for state in self.states.values():
            first_visit = id(state) not in seen_states
            seen_states.add(id(state))
            for name, value in state.items():
                base = (
                    self.default_state.get(name)
                    if self.default_state is not None else None
                )
                if base is not None and value is base:
                    aliased += 1
                    bytes_saved += value.nbytes
                else:
                    copied += 1
                    if first_visit:
                        copied_bytes += value.nbytes
        return {
            "aliased_arrays": aliased,
            "copied_arrays": copied,
            "bytes_saved": bytes_saved,
            "unique_states": len(seen_states),
            "copied_bytes": copied_bytes,
        }


class SnapshotStore:
    """Versioned snapshot registry with atomic hot-swap.

    ``publish`` fully materializes the new :class:`ModelSnapshot` *before*
    installing it with a single reference assignment, so a concurrent
    reader either sees the complete old version or the complete new one —
    never a half-published mixture.  Readers must pin ``current()`` once
    per batch and use only that object for the batch's lifetime.
    """

    def __init__(self, keep=2):
        if keep < 1:
            raise ValueError("must keep at least the live snapshot")
        self._keep = keep
        self._versions = OrderedDict()
        self._current = None
        # Rollback anchor: the version that was live before the latest
        # install.  Never pruned, so a publication that fails its gate can
        # always roll back — even under retention pressure (keep=1).
        self._previous = None
        self._next_version = 1

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, space, access_counts=None, metadata=None):
        """Materialize and hot-swap a :class:`DomainParameterSpace`.

        Copy-on-write against a frozen copy of ``θ_S``: zero-delta entries
        alias the shared array (see module docstring).  Materialization is
        delegated to the space's storage backend via ``cow_states``, which
        yields one state per delta-sharing group — a clustered space with
        10k tail domains in 64 clusters publishes 64 states, and every
        member domain maps to its group's (frozen, shared) state object.
        """
        shared = OrderedDict(
            (name, _freeze(value.copy())) for name, value in space.shared.items()
        )
        states = {}
        for domains, state in space.cow_states(shared):
            frozen = OrderedDict(
                (name, value if value is shared[name] else _freeze(value))
                for name, value in state.items()
            )
            for domain in domains:
                states[domain] = frozen
        return self._install(states, shared, access_counts, metadata)

    def publish_states(self, domain_states, default_state=None,
                       access_counts=None, metadata=None):
        """Publish explicit per-domain states (e.g. a trained ``StateBank``).

        COW here is by *value*: an entry bit-identical to the default state
        aliases it, which catches the common "this domain never diverged
        from θ_S for this table" case at the cost of one comparison pass.
        """
        default = None
        if default_state is not None:
            default = OrderedDict(
                (name, _freeze(value.copy()))
                for name, value in default_state.items()
            )
        states = {}
        for domain, state in domain_states.items():
            out = OrderedDict()
            for name, value in state.items():
                base = default.get(name) if default is not None else None
                if base is not None and value.shape == base.shape and (
                    np.array_equal(value, base)
                ):
                    out[name] = base
                else:
                    out[name] = _freeze(np.array(value, dtype=np.float64))
            states[int(domain)] = out
        return self._install(states, default, access_counts, metadata)

    def _install(self, states, default_state, access_counts, metadata):
        snapshot = ModelSnapshot(
            self._next_version, states, default_state,
            access_counts=access_counts, metadata=metadata,
        )
        self._next_version += 1
        self._versions[snapshot.version] = snapshot
        # The swap itself: one reference assignment. In-flight readers
        # keep whatever snapshot object they already pinned.
        self._previous = self._current
        self._current = snapshot
        self._prune()
        return snapshot

    def _prune(self):
        # Retention never evicts the live version or the rollback anchor:
        # everything else goes oldest-first until the budget holds.  The
        # protected versions are skipped (not a loop break), so retention
        # pressure cannot pin unrelated old versions behind them.
        protected = {self._current.version}
        if self._previous is not None:
            protected.add(self._previous.version)
        for version in list(self._versions):
            if len(self._versions) <= self._keep:
                break
            if version in protected:
                continue
            del self._versions[version]

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def current(self):
        """The live snapshot (pin this once per batch)."""
        if self._current is None:
            raise LookupError("no snapshot published yet")
        return self._current

    @property
    def version(self):
        return self.current().version

    def versions(self):
        """Retained version numbers, oldest first."""
        return list(self._versions)

    def get(self, version):
        snapshot = self._versions.get(version)
        if snapshot is None:
            raise KeyError(
                f"version {version} is not retained "
                f"(have {self.versions() or 'none'})"
            )
        return snapshot

    def rollback(self, version):
        """Atomically re-install a retained older version.

        The version rolled away *from* becomes the new rollback anchor,
        so it survives retention and the rollback itself can be undone.
        """
        target = self.get(version)
        if target is not self._current:
            self._previous = self._current
        self._current = target
        return self._current

    # ------------------------------------------------------------------
    # Persistence (reuses the checksummed bank archive format)
    # ------------------------------------------------------------------
    def save(self, path, version=None):
        """Persist one snapshot (default: the live one) to ``path``."""
        snapshot = self.current() if version is None else self.get(version)
        save_bank_states(
            path, snapshot.states, default_state=snapshot.default_state
        )
        return snapshot.version

    def load(self, path, access_counts=None, metadata=None):
        """Publish a snapshot from a checksummed archive as a new version."""
        domain_states, default_state = load_bank_states(
            path, require_checksum=True
        )
        return self.publish_states(
            domain_states, default_state=default_state,
            access_counts=access_counts, metadata=metadata,
        )


# ----------------------------------------------------------------------
# Cross-process zero-copy materialization
# ----------------------------------------------------------------------
_ALIGN = 64  # cache-line alignment for every packed array


class SharedSnapshotArena:
    """One snapshot's arrays packed into a shared-memory segment.

    The parent calls :meth:`materialize` once per published generation;
    the COW structure of the :class:`ModelSnapshot` is preserved exactly —
    arrays are deduplicated by identity, so a ``θ_S`` table aliased by
    forty domains occupies the segment once and every worker maps it once.
    Workers call :meth:`attach` with the (picklable) :attr:`manifest` and
    receive a :class:`ModelSnapshot` whose arrays are read-only, zero-copy
    views into the segment — bit-identical to the parent's snapshot, so
    the pooled serving path inherits the single-process parity guarantee.

    Lifecycle: the creating side owns the segment and must call
    :meth:`unlink` when no worker can still flip to this generation;
    attached sides call :meth:`close` after dropping every view (the pool
    does this when it flips to a newer generation).
    """

    def __init__(self, segment, manifest, snapshot, owner, views=()):
        self._segment = segment
        self.manifest = manifest
        self.snapshot = snapshot
        self._owner = owner
        self._closed = False
        # Weak references to every view handed out by ``attach``: closing
        # the segment while a view is alive would unmap memory under it
        # (``SharedMemory.close`` does not reliably detect numpy exports),
        # so ``close`` refuses until they are all garbage.
        self._views = [weakref.ref(view) for view in views]

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------
    @classmethod
    def materialize(cls, snapshot, generation):
        """Pack ``snapshot`` into a fresh shared segment (parent side)."""
        arrays = {}   # id(array) -> (key, array)
        order = []

        def intern(array):
            key = arrays.get(id(array))
            if key is None:
                key = f"a{len(arrays)}"
                arrays[id(array)] = key
                order.append((key, array))
            return key

        default_entries = None
        if snapshot.default_state is not None:
            default_entries = [
                (name, intern(value))
                for name, value in snapshot.default_state.items()
            ]
        state_entries = {
            int(domain): [(name, intern(value)) for name, value in state.items()]
            for domain, state in snapshot.states.items()
        }
        count_entries = [
            (name, intern(np.ascontiguousarray(value)))
            for name, value in snapshot.access_counts.items()
        ]

        layout = {}
        offset = 0
        for key, array in order:
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            layout[key] = {
                "offset": offset,
                "shape": tuple(array.shape),
                "dtype": str(array.dtype),
            }
            offset += array.nbytes
        segment = shared_memory.SharedMemory(create=True, size=max(1, offset))
        for key, array in order:
            spec = layout[key]
            view = np.ndarray(
                spec["shape"], dtype=spec["dtype"],
                buffer=segment.buf, offset=spec["offset"],
            )
            view[...] = array
        manifest = {
            "segment": segment.name,
            "generation": int(generation),
            "version": snapshot.version,
            "arrays": layout,
            "default_state": default_entries,
            "states": state_entries,
            "access_counts": count_entries,
            "metadata": dict(snapshot.metadata),
        }
        del view
        return cls(segment, manifest, snapshot, owner=True)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, manifest):
        """Map an existing segment and rebuild its :class:`ModelSnapshot`.

        Views are built once per array key and shared between every state
        entry that referenced the same key, so COW aliasing survives the
        process boundary (``cow_stats`` on the attached snapshot reports
        the same aliased/copied split as the parent's).

        Attach from the owning process or one of its ``fork`` children
        only: CPython registers POSIX shared memory with the resource
        tracker even on attach (bpo-38119), and only a *shared* tracker —
        fork inherits the owner's — deduplicates that registration
        instead of unlinking the owner's segment at exit.
        """
        segment = shared_memory.SharedMemory(name=manifest["segment"])
        views = {}
        for key, spec in manifest["arrays"].items():
            view = np.ndarray(
                tuple(spec["shape"]), dtype=spec["dtype"],
                buffer=segment.buf, offset=spec["offset"],
            )
            view.setflags(write=False)
            views[key] = view
        default_state = None
        if manifest["default_state"] is not None:
            default_state = OrderedDict(
                (name, views[key]) for name, key in manifest["default_state"]
            )
        states = {
            int(domain): OrderedDict(
                (name, views[key]) for name, key in entries
            )
            for domain, entries in manifest["states"].items()
        }
        access_counts = {
            name: views[key] for name, key in manifest["access_counts"]
        }
        snapshot = ModelSnapshot(
            manifest["version"], states, default_state,
            access_counts=access_counts, metadata=manifest["metadata"],
        )
        return cls(segment, manifest, snapshot, owner=False,
                   views=views.values())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def generation(self):
        return self.manifest["generation"]

    @property
    def version(self):
        return self.manifest["version"]

    @property
    def nbytes(self):
        return self._segment.size

    def close(self):
        """Release this process's mapping (drop all views first).

        Returns ``True`` when the mapping was actually released; ``False``
        when live views still pin the buffer (the caller retries after the
        views die — the pool keeps a zombie list for exactly that).
        Closing under a live view would unmap memory it still points at,
        so liveness is tracked explicitly via weak references.
        """
        if self._closed:
            return True
        self.snapshot = None
        if any(ref() is not None for ref in self._views):
            return False
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - backstop on other builds
            return False
        self._closed = True
        return True

    def unlink(self):
        """Destroy the segment (owner side, after every worker flipped)."""
        if not self._owner:
            raise RuntimeError("only the materializing process may unlink")
        self.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass
