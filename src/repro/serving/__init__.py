"""``repro.serving`` — online multi-domain inference (Section IV-E).

The deployment layer between a trained
:class:`~repro.core.param_space.DomainParameterSpace` and live CTR traffic:

* :mod:`repro.serving.snapshots` — versioned, copy-on-write materialized
  per-domain states with atomic hot-swap;
* :mod:`repro.serving.embedding_cache` — the serve-side static/dynamic row
  cache of Figure 7;
* :mod:`repro.serving.batcher` — micro-batching of single-row requests
  into per-domain batches;
* :mod:`repro.serving.service` — the Predictor/ServingService front door
  with latency percentiles and QPS accounting;
* :mod:`repro.serving.bench` — the ``serve-bench`` harness behind
  ``python -m repro.cli serve-bench``.
"""

from .batcher import BatchingPolicy, MicroBatcher, PendingRequest
from .embedding_cache import ServingEmbeddingCache, training_access_counts
from .service import LatencyRecorder, Predictor, ServingService
from .snapshots import ModelSnapshot, SharedSnapshotArena, SnapshotStore

__all__ = [
    "SharedSnapshotArena",
    "BatchingPolicy",
    "MicroBatcher",
    "PendingRequest",
    "ServingEmbeddingCache",
    "training_access_counts",
    "LatencyRecorder",
    "Predictor",
    "ServingService",
    "ModelSnapshot",
    "SnapshotStore",
]
