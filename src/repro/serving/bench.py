"""The serve-bench harness: train → publish → replay → report.

Trains a small MAMDR parameter space on a synthetic multi-domain dataset,
publishes it to a :class:`~repro.serving.snapshots.SnapshotStore`, replays
a heavy-tailed request stream through the micro-batcher at several
``max_batch_size`` settings, and appends QPS / p50 / p99 per setting to
``BENCH_serving.json``.  A bit-parity probe (serving path vs. offline
``load_combined`` + forward, before and after a hot reload) runs inside the
bench so a regression shows up as ``"parity": false`` in the record, not as
silently wrong latencies.

Run via ``python -m repro.cli serve-bench`` or the ``benchmarks/serving``
pytest wrappers.
"""

from __future__ import annotations

import json
import pathlib

from ..core import (
    DomainParameterSpace,
    TrainConfig,
    domain_negotiation_epoch,
    domain_regularization_round,
)
from ..core.trainer import make_inner_optimizer
from ..data import DomainSpec, SyntheticConfig, generate_dataset, sample_batch
from ..models import build_model
from ..utils.seeding import spawn_rng
from ..utils.tables import format_table
from .batcher import BatchingPolicy
from .service import ServingService

__all__ = ["run_serve_bench", "render_serve_bench", "write_bench_record"]

DEFAULT_BENCH_PATH = "BENCH_serving.json"


def make_serving_dataset(n_domains=5, seed=1):
    """A heavy-tailed synthetic multi-domain dataset for the bench."""
    base_sizes = (900, 450, 220, 120, 70)
    specs = tuple(
        DomainSpec(
            f"S{i}", base_sizes[i % len(base_sizes)], 0.25 + 0.04 * i
        )
        for i in range(n_domains)
    )
    return generate_dataset(SyntheticConfig(
        name=f"serving_{n_domains}",
        domains=specs,
        n_users=400,
        n_items=200,
        latent_dim=8,
        feature_mode="trainable",
        feature_dim=10,
        seed=seed,
    ))


def train_space(model, dataset, config, seed=0, store=None):
    """A compact MAMDR (DN + DR) training loop producing the space itself.

    ``MAMDR.fit`` returns the deployable best-checkpoint bank; serving
    publishes from the *space* (θ_S + deltas) so the copy-on-write
    materialization has real shared structure to exploit.  ``store``
    selects the parameter backend; training is gated by the store's
    delta-sharing groups either way.
    """
    rng = spawn_rng(seed, "serve-bench", "train", dataset.name)
    space = DomainParameterSpace(model, dataset.n_domains, store=store)
    view, groups = space.training_plan(dataset)
    optimizer = make_inner_optimizer(model, config)
    for _ in range(config.epochs):
        shared = space.shared
        for _ in range(config.dn_rounds):
            shared = domain_negotiation_epoch(
                model, view, shared, config, rng, optimizer=optimizer
            )
        space.set_shared(shared)
        for position, group in enumerate(groups):
            delta = domain_regularization_round(
                model, view, space, position, config, rng,
                delta=space.group_delta(group),
            )
            space.apply_delta(group, delta)
    return space


def _heavy_tailed_probs(n, exponent=1.1):
    """Zipf-style popularity over ``n`` ranks: p(r) ∝ (r + 1)^-exponent."""
    weights = [(rank + 1) ** -exponent for rank in range(n)]
    total = sum(weights)
    return [w / total for w in weights]


def make_request_stream(dataset, n_requests, seed=0):
    """(users, items, domains) arrays with heavy-tailed popularity.

    Domains, users and items are all zipf-weighted — a few hot domains and
    head ids dominate, which is exactly the regime the static cache tier
    is built for.
    """
    import numpy as np

    rng = spawn_rng(seed, "serve-bench", "stream")
    domains = rng.choice(
        dataset.n_domains, size=n_requests,
        p=_heavy_tailed_probs(dataset.n_domains),
    )
    users = rng.choice(
        dataset.n_users, size=n_requests,
        p=_heavy_tailed_probs(dataset.n_users),
    )
    items = rng.choice(
        dataset.n_items, size=n_requests,
        p=_heavy_tailed_probs(dataset.n_items),
    )
    return (
        users.astype(np.int64), items.astype(np.int64),
        domains.astype(np.int64),
    )


def check_parity(service, space, dataset, seed=0, sample_size=32):
    """True iff serving scores are bit-identical to offline scoring."""
    import numpy as np

    rng = spawn_rng(seed, "serve-bench", "parity")
    offline_model = build_model("mlp", dataset, seed=seed)
    for domain_index in range(dataset.n_domains):
        table = dataset.domain(domain_index).test
        batch = sample_batch(
            table, domain_index, min(sample_size, len(table)), rng
        )
        served = service.predict_batch(batch.users, batch.items, domain_index)
        space.load_combined(offline_model, domain_index)
        offline = offline_model.predict(batch)
        if not np.array_equal(served, offline):
            return False
    return True


def run_serve_bench(batch_sizes=(1, 8, 32), n_requests=1500, seed=0,
                    epochs=2, n_domains=5, verbose=False, session=None):
    """Train, publish, replay; returns the JSON-ready results dict.

    ``session`` may be a :class:`repro.train.SessionConfig` (the unified
    config file the CLI's ``--config`` loads); it then supplies the model
    architecture, seed and training hyper-parameters, while the bench
    keeps its own heavy-tailed serving dataset and request stream.
    """
    import time

    model_name, model_kwargs = "mlp", {}
    if session is not None:
        seed = session.seed
        model_name = session.model
        model_kwargs = dict(session.model_kwargs)
    dataset = make_serving_dataset(n_domains=n_domains, seed=seed + 1)
    model = build_model(
        model_name, dataset, seed=seed if session is None
        else session.effective_model_seed, **model_kwargs,
    )
    if session is not None:
        config = session.train
    else:
        config = TrainConfig(
            epochs=epochs, batch_size=64, inner_steps=4, dr_steps=2,
            sample_k=1,
        )
    space = train_space(model, dataset, config, seed=seed)

    users, items, domains = make_request_stream(dataset, n_requests, seed=seed)
    results = {}
    for batch_size in batch_sizes:
        service = ServingService(
            model,
            policy=BatchingPolicy(max_batch_size=batch_size, max_wait_us=500.0),
        )
        snapshot = service.publish(space, dataset=dataset)
        parity_before = check_parity(service, space, dataset, seed=seed)
        service.reset_stats()

        start = time.perf_counter()
        for position in range(n_requests):
            service.submit(
                users[position], items[position], domains[position]
            )
            if position % 16 == 15:
                service.poll()
        service.drain()
        elapsed = time.perf_counter() - start

        # Hot reload mid-service: republish and require parity immediately.
        reloaded = service.publish(space, dataset=dataset)
        parity_after = check_parity(service, space, dataset, seed=seed)

        stats = service.stats()
        latency = stats["latency"]
        cache = stats["embedding_cache"]
        hit_rates = [entry["hit_rate"] for entry in cache.values()]
        results[f"bs={batch_size}"] = {
            "max_batch_size": batch_size,
            "requests": n_requests,
            "elapsed_seconds": elapsed,
            "qps": n_requests / elapsed if elapsed > 0 else 0.0,
            "p50_ms": latency.get("p50_ms"),
            "p95_ms": latency.get("p95_ms"),
            "p99_ms": latency.get("p99_ms"),
            "mean_batch_size": stats["batcher"]["mean_batch_size"],
            "cache_hit_rate": (
                sum(hit_rates) / len(hit_rates) if hit_rates else None
            ),
            "snapshot_version": reloaded.version,
            "published_version": snapshot.version,
            "parity": bool(parity_before and parity_after),
        }
        if verbose:
            row = results[f"bs={batch_size}"]
            print(
                f"  bs={batch_size:<3d} qps={row['qps']:9.1f} "
                f"p50={row['p50_ms']:.3f}ms p99={row['p99_ms']:.3f}ms "
                f"parity={row['parity']}"
            )
    return {
        "dataset": dataset.name,
        "n_domains": dataset.n_domains,
        "n_requests": n_requests,
        "seed": seed,
        "settings": results,
    }


def render_serve_bench(record):
    """Human-readable table of one serve-bench record."""
    rows = [
        [
            key,
            f"{entry['qps']:.1f}",
            f"{entry['p50_ms']:.3f}",
            f"{entry['p99_ms']:.3f}",
            f"{entry['mean_batch_size']:.1f}",
            "-" if entry["cache_hit_rate"] is None
            else f"{entry['cache_hit_rate']:.3f}",
            "ok" if entry["parity"] else "FAIL",
        ]
        for key, entry in record["settings"].items()
    ]
    return format_table(
        ["Setting", "QPS", "p50 ms", "p99 ms", "Batch", "Hit rate", "Parity"],
        rows,
        title=f"serve-bench on {record['dataset']} "
              f"({record['n_requests']} requests)",
    )


def write_bench_record(record, path=DEFAULT_BENCH_PATH):
    """Merge ``record`` into the serving benchmark journal at ``path``."""
    path = pathlib.Path(path)
    payload = {"benchmarks": {}}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {"benchmarks": {}}
    bench = payload.setdefault("benchmarks", {})
    entry = bench.setdefault("serve_bench", {})
    entry.update(record["settings"])
    entry["dataset"] = record["dataset"]
    entry["n_requests"] = record["n_requests"]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
