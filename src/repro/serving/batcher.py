"""Micro-batching request scheduler for online inference.

Online CTR traffic arrives as single (user, item, domain) lookups, but the
numpy engine — and especially the fused kernels and sparse embedding paths
of ``repro.nn`` — amortizes per-call overhead over rows.  The
:class:`MicroBatcher` coalesces concurrent single-row requests into
per-domain batches under a two-knob policy:

* **size trigger** — a domain's queue flushes the moment it reaches
  ``max_batch_size`` rows;
* **wait trigger** — a non-empty queue older than ``max_wait_us``
  microseconds flushes on the next :meth:`MicroBatcher.poll` **or**
  :meth:`MicroBatcher.submit` — to *any* domain — bounding the latency a
  lone request can pay waiting for company.  Without the submit-side
  check, a sub-``max_batch_size`` queue whose domain never sees another
  arrival would starve until someone happened to poll;
  :meth:`MicroBatcher.next_deadline` tells a clock-driven caller exactly
  when the next wait flush is due, so idle drivers can sleep precisely
  instead of busy-polling.

Batches are per-domain because every row of a batch must be scored under
the same parameters ``Θ_i``.  The clock is injectable so flush policies
are unit-testable without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["BatchingPolicy", "PendingRequest", "MicroBatcher"]


@dataclass(frozen=True)
class BatchingPolicy:
    """Flush policy knobs (sizes in rows, waits in microseconds)."""

    max_batch_size: int = 32
    max_wait_us: float = 2000.0

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_us < 0:
            raise ValueError("max_wait_us must be >= 0")

    @property
    def max_wait_seconds(self):
        return self.max_wait_us * 1e-6


class PendingRequest:
    """One in-flight request; ``result`` is set when its batch flushes."""

    __slots__ = ("user", "item", "domain", "enqueued_at", "completed_at",
                 "result")

    def __init__(self, user, item, domain, enqueued_at):
        self.user = int(user)
        self.item = int(item)
        self.domain = int(domain)
        self.enqueued_at = enqueued_at
        self.completed_at = None
        self.result = None

    @property
    def done(self):
        return self.completed_at is not None

    @property
    def latency(self):
        """Enqueue-to-completion wall time in seconds (None while pending)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at


class MicroBatcher:
    """Coalesces single-row requests into per-domain score batches.

    ``score_batch(users, items, domain)`` is the downstream scorer — in the
    service wiring, :meth:`repro.serving.service.Predictor.predict_batch`.
    ``on_complete(request)`` is invoked per finished request (the service
    hooks its latency recorder here).
    """

    def __init__(self, policy, score_batch, clock=time.perf_counter,
                 on_complete=None):
        self.policy = policy
        self._score_batch = score_batch
        self._clock = clock
        self._on_complete = on_complete
        self._queues = {}
        self._oldest = {}
        self.requests = 0
        self.batches = 0
        self.size_flushes = 0
        self.wait_flushes = 0
        self.forced_flushes = 0
        self.rows_scored = 0

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, user, item, domain):
        """Enqueue one request; may flush its domain on the size trigger.

        Also flushes any queue — in *any* domain — whose oldest request
        exceeded the max wait, so an idle sub-batch cannot starve behind
        traffic that only ever touches other domains.
        """
        now = self._clock()
        request = PendingRequest(user, item, domain, now)
        queue = self._queues.setdefault(request.domain, [])
        if not queue:
            self._oldest[request.domain] = now
        queue.append(request)
        self.requests += 1
        if len(queue) >= self.policy.max_batch_size:
            self._flush_domain(request.domain, "size")
        self._flush_due(now)
        return request

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def poll(self):
        """Flush every queue whose oldest request exceeded the max wait."""
        return self._flush_due(self._clock())

    def next_deadline(self):
        """Clock time at which the oldest queued request becomes overdue.

        ``None`` when nothing is queued.  A clock-driven caller (the load
        bench's open-loop dispatcher, a test harness) advances its clock
        to this instant and calls :meth:`poll` — the wait trigger then
        fires even if no request ever arrives again.
        """
        if not self._oldest:
            return None
        return min(self._oldest.values()) + self.policy.max_wait_seconds

    def _flush_due(self, now):
        due = [
            domain for domain, oldest in self._oldest.items()
            if self._queues.get(domain)
            and now - oldest >= self.policy.max_wait_seconds
        ]
        for domain in due:
            self._flush_domain(domain, "wait")
        return len(due)

    def drain(self):
        """Force-flush everything (end of a replay / shutdown)."""
        flushed = 0
        for domain in list(self._queues):
            if self._queues[domain]:
                self._flush_domain(domain, "forced")
                flushed += 1
        return flushed

    def pending(self):
        """Number of enqueued, not-yet-flushed requests."""
        return sum(len(queue) for queue in self._queues.values())

    def _flush_domain(self, domain, reason):
        queue = self._queues[domain]
        self._queues[domain] = []
        self._oldest.pop(domain, None)
        users = np.fromiter((r.user for r in queue), dtype=np.int64,
                            count=len(queue))
        items = np.fromiter((r.item for r in queue), dtype=np.int64,
                            count=len(queue))
        scores = self._score_batch(users, items, domain)
        completed_at = self._clock()
        for request, score in zip(queue, scores):
            request.result = float(score)
            request.completed_at = completed_at
            if self._on_complete is not None:
                self._on_complete(request)
        self.batches += 1
        self.rows_scored += len(queue)
        if reason == "size":
            self.size_flushes += 1
        elif reason == "wait":
            self.wait_flushes += 1
        else:
            self.forced_flushes += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self):
        return {
            "requests": self.requests,
            "batches": self.batches,
            "size_flushes": self.size_flushes,
            "wait_flushes": self.wait_flushes,
            "forced_flushes": self.forced_flushes,
            "rows_scored": self.rows_scored,
            "mean_batch_size": (
                self.rows_scored / self.batches if self.batches else 0.0
            ),
            "pending": self.pending(),
        }
