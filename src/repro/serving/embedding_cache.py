"""Serve-side read-only embedding cache (the paper's Figure 7).

The online system keeps embedding tables on the PS; a serving worker holds
a local two-tier row cache per (table, domain):

* a **static set** pinned when the snapshot is published — the hottest rows
  by training-time access counts, never evicted;
* a **dynamic set** for the tail — an LRU of bounded capacity, filled on
  demand from the snapshot ("pull the latest row from the PS on a miss")
  and evicting the least-recently-used row when full.

Unlike the training-side :class:`repro.distributed.EmbeddingCache`, this
cache is *read-only*: serving never writes rows back, so there is no
static/dynamic delta — the tiers are purely a locality hierarchy.  Hit,
miss and eviction counters feed the service's ``stats()`` output.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..utils import profiling

__all__ = ["ServingEmbeddingCache", "training_access_counts"]


class ServingEmbeddingCache:
    """Two-tier (static pinned + dynamic LRU) row cache for one table."""

    def __init__(self, fetch_rows, static_ids=(), capacity=1024):
        """``fetch_rows(ids) -> [len(ids), dim]`` is the backing PS pull."""
        if capacity < 0:
            raise ValueError("dynamic capacity must be >= 0")
        self._fetch = fetch_rows
        self._capacity = capacity
        self._static = {}
        static_ids = np.asarray(static_ids, dtype=np.int64)
        if static_ids.size:
            pinned = np.asarray(fetch_rows(static_ids), dtype=np.float64)
            for row_id, row in zip(static_ids, pinned):
                self._static[int(row_id)] = row
        self._dynamic = OrderedDict()
        self.static_hits = 0
        self.dynamic_hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def fetch(self, ids):
        """Row values for ``ids``, [len(ids), dim].

        Counters are per requested id (duplicates included); a miss counts
        every occurrence of the missing id in this call.
        """
        ids = np.asarray(ids, dtype=np.int64)
        unique, inverse, occurrences = np.unique(
            ids, return_inverse=True, return_counts=True
        )
        gathered = [None] * unique.size
        missing_slots = []
        for slot, row_id in enumerate(unique):
            key = int(row_id)
            row = self._static.get(key)
            if row is not None:
                self.static_hits += int(occurrences[slot])
                gathered[slot] = row
                continue
            row = self._dynamic.get(key)
            if row is not None:
                self._dynamic.move_to_end(key)
                self.dynamic_hits += int(occurrences[slot])
                gathered[slot] = row
                continue
            missing_slots.append(slot)
        if missing_slots:
            missing_ids = unique[missing_slots]
            pulled = np.asarray(self._fetch(missing_ids), dtype=np.float64)
            profiling.count(
                "serving.cache.pull_rows", n=len(missing_slots),
                nbytes=pulled.nbytes,
            )
            for slot, row in zip(missing_slots, pulled):
                self.misses += int(occurrences[slot])
                gathered[slot] = row
                self._admit(int(unique[slot]), row)
        return np.stack(gathered)[inverse]

    def _admit(self, key, row):
        if self._capacity == 0:
            return
        if len(self._dynamic) >= self._capacity:
            self._dynamic.popitem(last=False)
            self.evictions += 1
        self._dynamic[key] = row

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hits(self):
        return self.static_hits + self.dynamic_hits

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def static_size(self):
        return len(self._static)

    def dynamic_size(self):
        return len(self._dynamic)

    def dynamic_ids(self):
        """Dynamic-tier ids in LRU order (next eviction first)."""
        return list(self._dynamic)

    def stats(self):
        return {
            "static_size": self.static_size(),
            "dynamic_size": self.dynamic_size(),
            "static_hits": self.static_hits,
            "dynamic_hits": self.dynamic_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def training_access_counts(dataset, field_map, table_sizes):
    """Per-row training access counts for static-set pinning.

    ``field_map`` maps embedding parameter names to the batch field that
    indexes them (``"users"``/``"items"``, the convention of
    :func:`repro.distributed.worker.embedding_field_map`); ``table_sizes``
    gives each table's row count.  Counts are summed over every domain's
    training split — the serving analogue of "frequency-ranked by
    training-time accesses" in Figure 7.
    """
    counts = {}
    for name, field in field_map.items():
        ids = np.concatenate([
            getattr(domain.train, field) for domain in dataset
        ]) if len(dataset) else np.empty(0, dtype=np.int64)
        counts[name] = np.bincount(
            ids.astype(np.int64), minlength=int(table_sizes[name])
        )
    return counts
