"""The serving front door: Predictor, latency accounting, ServingService.

A :class:`Predictor` binds one model skeleton to a
:class:`~repro.serving.snapshots.SnapshotStore` and answers per-domain CTR
queries with **bit-identical** results to offline
``space.load_combined(model, d); model.predict(batch)`` — the serving path
changes where parameters come from, never their values.

Two parameter paths exist, chosen automatically:

* **full path** — on a (version, domain) switch the whole combined state is
  loaded.  Always available; the only option for models without id
  embedding tables (e.g. the fixed-feature Taobao encoders).
* **row path** — dense (non-embedding) parameters are loaded on a
  (version, domain) switch, while embedding *rows* are fetched per batch
  through the serve-side :class:`ServingEmbeddingCache` and scattered into
  the table via ``Parameter.assign_rows``.  The forward pass only reads the
  rows of the current batch, so refreshing exactly those rows is
  sufficient — per-request work is O(batch), not O(table), which is what
  lets one worker serve many domains over huge id spaces (Section IV-E).

:class:`ServingService` wires a Predictor to the
:class:`~repro.serving.batcher.MicroBatcher` and a latency recorder whose
p50/p95/p99 and QPS are exported through :mod:`repro.utils.profiling`.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.batching import Batch
from ..distributed.worker import embedding_field_map
from ..utils import profiling
from .batcher import BatchingPolicy, MicroBatcher
from .embedding_cache import ServingEmbeddingCache, training_access_counts
from .snapshots import SnapshotStore

__all__ = ["LatencyRecorder", "Predictor", "ServingService"]


class LatencyRecorder:
    """Per-request latency samples with tail percentiles and QPS."""

    def __init__(self, name="serving.request_seconds"):
        self.name = name
        self._samples = []

    def observe(self, seconds):
        self._samples.append(float(seconds))
        profiling.observe(self.name, seconds)

    def reset(self):
        self._samples = []

    @property
    def count(self):
        return len(self._samples)

    def quantile_seconds(self, q):
        return profiling.percentile(self._samples, q)

    def qps(self, elapsed_seconds):
        """Request throughput over an externally timed window."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.count / elapsed_seconds

    def summary(self):
        if not self._samples:
            return {"count": 0}
        scale = 1e3  # report milliseconds
        return {
            "count": self.count,
            "mean_ms": sum(self._samples) / self.count * scale,
            "p50_ms": self.quantile_seconds(0.5) * scale,
            "p95_ms": self.quantile_seconds(0.95) * scale,
            "p99_ms": self.quantile_seconds(0.99) * scale,
        }


class Predictor:
    """Scores per-domain requests against the current snapshot."""

    def __init__(self, model, store, field_map=None, use_row_cache=True,
                 static_cache_capacity=256, dynamic_cache_capacity=2048):
        self._model = model
        self._store = store
        self._params = dict(model.named_parameters())
        if field_map is None:
            try:
                field_map = embedding_field_map(model)
            except ValueError:
                field_map = {}
        unknown = set(field_map) - set(self._params)
        if unknown:
            raise KeyError(
                f"field map references unknown parameters: {sorted(unknown)}"
            )
        self.field_map = dict(field_map)
        self.use_row_cache = bool(use_row_cache) and bool(self.field_map)
        self._dense_names = frozenset(
            name for name in self._params if name not in self.field_map
        )
        self._static_capacity = static_cache_capacity
        self._dynamic_capacity = dynamic_cache_capacity
        self._loaded = None          # (version, domain) currently in the model
        self._caches = {}            # (name, domain) -> ServingEmbeddingCache
        self._cache_version = None

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def predict_batch(self, users, items, domain):
        """Click probabilities for a homogeneous-domain batch."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        # Pin the snapshot once: the whole batch is served from this
        # version even if a publish lands mid-batch (hot-swap atomicity).
        snapshot = self._store.current()
        start = profiling.tick()
        self._prepare(snapshot, int(domain), users, items)
        batch = Batch(users, items, np.zeros(len(users)), int(domain))
        scores = self._model.predict(batch)
        profiling.tock("serving.score_batch", start)
        profiling.count("serving.rows_scored", n=len(users))
        return scores

    def predict(self, user, item, domain):
        """One request's click probability."""
        return float(self.predict_batch([user], [item], domain)[0])

    def _prepare(self, snapshot, domain, users, items):
        key = (snapshot.version, domain)
        if not self.use_row_cache:
            if self._loaded != key:
                self._model.load_state_dict(snapshot.state_for(domain))
                self._loaded = key
            return
        if self._loaded != key:
            # Domain/version switch: refresh only the small dense
            # parameters; embedding tables are refreshed row-wise below.
            self._model.load_state_dict(
                snapshot.state_for(domain), names=self._dense_names
            )
            self._loaded = key
        fields = {"users": users, "items": items}
        for name, field in self.field_map.items():
            ids = fields[field]
            rows = self._cache_for(snapshot, name, domain).fetch(ids)
            self._params[name].assign_rows(ids, rows)

    def _cache_for(self, snapshot, name, domain):
        if self._cache_version != snapshot.version:
            # Row values belong to a version; a hot swap invalidates them.
            self._caches = {}
            self._cache_version = snapshot.version
        cache = self._caches.get((name, domain))
        if cache is None:
            cache = ServingEmbeddingCache(
                lambda ids, n=name, d=domain, s=snapshot: s.rows_for(n, d, ids),
                static_ids=snapshot.static_row_ids(
                    name, self._static_capacity
                ),
                capacity=self._dynamic_capacity,
            )
            self._caches[(name, domain)] = cache
        return cache

    def invalidate_caches(self):
        """Drop row caches and the loaded-state memo.

        The per-version caches hold closures over the snapshot they were
        built against; a pool worker calls this before flipping to a new
        shared-memory generation so no reference pins the old segment's
        buffer (the next ``predict_batch`` rebuilds caches lazily).
        """
        self._caches = {}
        self._cache_version = None
        self._loaded = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_stats(self):
        """Per-table cache counters aggregated over domains."""
        aggregated = {}
        for (name, _domain), cache in self._caches.items():
            entry = aggregated.setdefault(name, {
                "caches": 0, "static_hits": 0, "dynamic_hits": 0,
                "misses": 0, "evictions": 0,
            })
            stats = cache.stats()
            entry["caches"] += 1
            for field in ("static_hits", "dynamic_hits", "misses",
                          "evictions"):
                entry[field] += stats[field]
        for entry in aggregated.values():
            hits = entry["static_hits"] + entry["dynamic_hits"]
            total = hits + entry["misses"]
            entry["hit_rate"] = hits / total if total else 0.0
        return aggregated


class ServingService:
    """The online inference front door: predict, batch, reload, stats."""

    def __init__(self, model, store=None, policy=None, field_map=None,
                 use_row_cache=True, static_cache_capacity=256,
                 dynamic_cache_capacity=2048, clock=time.perf_counter):
        self.store = store if store is not None else SnapshotStore()
        self.predictor = Predictor(
            model, self.store, field_map=field_map,
            use_row_cache=use_row_cache,
            static_cache_capacity=static_cache_capacity,
            dynamic_cache_capacity=dynamic_cache_capacity,
        )
        self.latency = LatencyRecorder()
        self._clock = clock
        self.batcher = MicroBatcher(
            policy if policy is not None else BatchingPolicy(),
            score_batch=self.predictor.predict_batch,
            clock=clock,
            on_complete=lambda request: self.latency.observe(request.latency),
        )

    # ------------------------------------------------------------------
    # Publishing / reloading
    # ------------------------------------------------------------------
    def publish(self, space, dataset=None, access_counts=None, metadata=None):
        """Publish a trained parameter space as the new live version.

        When ``dataset`` is given (and the model has id-embedding tables),
        per-row training access counts are derived from it so the serve
        caches can pin their static sets (Figure 7's frequency ranking).
        """
        if access_counts is None and dataset is not None:
            field_map = self.predictor.field_map
            if field_map:
                sizes = {
                    name: self.predictor._params[name].data.shape[0]
                    for name in field_map
                }
                access_counts = training_access_counts(
                    dataset, field_map, sizes
                )
        return self.store.publish(
            space, access_counts=access_counts, metadata=metadata
        )

    def publish_states(self, domain_states, default_state=None, **kwargs):
        """Publish explicit per-domain states (a trained ``StateBank``)."""
        return self.store.publish_states(
            domain_states, default_state=default_state, **kwargs
        )

    reload = publish

    # ------------------------------------------------------------------
    # Synchronous path
    # ------------------------------------------------------------------
    def predict_batch(self, users, items, domain):
        start = self._clock()
        scores = self.predictor.predict_batch(users, items, domain)
        elapsed = self._clock() - start
        for _ in range(len(scores)):
            self.latency.observe(elapsed)
        return scores

    def predict(self, user, item, domain):
        return float(self.predict_batch([user], [item], domain)[0])

    # ------------------------------------------------------------------
    # Micro-batched path
    # ------------------------------------------------------------------
    def submit(self, user, item, domain):
        return self.batcher.submit(user, item, domain)

    def poll(self):
        return self.batcher.poll()

    def drain(self):
        return self.batcher.drain()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self):
        try:
            version = self.store.version
        except LookupError:
            version = None
        return {
            "version": version,
            "latency": self.latency.summary(),
            "batcher": self.batcher.stats(),
            "embedding_cache": self.predictor.cache_stats(),
        }

    def reset_stats(self):
        self.latency.reset()
