"""Training configuration shared by every learning framework.

Field names follow the paper's notation: ``inner_lr`` is α (Eq. 2),
``outer_lr`` is β (Eq. 3), ``dr_lr`` is γ (Eq. 8) and ``sample_k`` is the
number of helper domains DR samples (Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TrainConfig"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for training.

    Defaults follow the paper's public-benchmark setup (Adam inner loop,
    β ∈ {0.5, 0.1}, k around 3-5) re-tuned for the scaled-down benchmark
    datasets: with ~100x less data per domain than the paper, the optimal
    inner learning rate shifts from 1e-3 to 1e-2 (fewer, larger steps) and a
    handful of epochs with validation-based snapshot selection suffices.
    """

    epochs: int = 8
    batch_size: int = 128
    inner_lr: float = 1e-2          # α — inner-loop learning rate
    outer_lr: float = 0.5           # β — DN outer-loop step (paper: 0.5 or 0.1 best)
    dr_lr: float = 0.1              # γ — DR meta step
    sample_k: int = 3               # k — helper domains per DR round
    inner_steps: int | None = None  # minibatch steps per domain visit (None = full pass)
    dn_rounds: int = 2              # DN epochs per framework epoch: the outer
                                    # update advances ~β of an alternate epoch,
                                    # so 1/β rounds keep data-movement parity
    dr_steps: int = 4               # minibatch steps per DR stage
    inner_optimizer: str = "adam"   # optimizer for inner loops
    finetune_steps: int = 12        # steps for finetune-style baselines
    momentum: float = 0.0
    compile_steps: bool | None = None  # route inner steps through the
                                    # compile-and-replay executor; None
                                    # inherits the ambient
                                    # ``repro.nn.compiled_execution`` setting

    def __post_init__(self):
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0.0 < self.outer_lr <= 1.0:
            raise ValueError("outer_lr (beta) must be in (0, 1]")
        if not 0.0 < self.dr_lr <= 1.0:
            raise ValueError("dr_lr (gamma) must be in (0, 1]")
        if self.sample_k < 0:
            raise ValueError("sample_k must be >= 0")

    def updated(self, **changes):
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def joint_steps_per_epoch(self, dataset):
        """Per-epoch step count for frameworks that sample one batch from
        *every* domain per step (Weighted Loss, PCGrad, MLDG, MAML).

        With ``inner_steps=None`` (full-pass semantics for sequential
        frameworks) this returns the mean number of batches per domain, so
        joint and sequential frameworks consume comparable data per epoch.
        """
        if self.inner_steps is not None:
            return self.inner_steps
        total = dataset.total_interactions("train")
        mean_batches = total / (dataset.n_domains * self.batch_size)
        return max(1, round(mean_batches))
