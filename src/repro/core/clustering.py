"""Distribution-similarity clustering of domains (seeded, deterministic).

Builds the :class:`~repro.core.param_space.ClusterPlan` that the
clustered-sharded parameter backend trains and serves through.  The
grouping follows AdaptDHM's observation that huge domain counts become
tractable when training happens at *cluster* granularity: domains whose
data distributions agree share one cluster-level delta, and only the
data-rich head keeps an explicit per-domain residual.

Per-domain feature vector (everything cheap and already on hand):

* log train size and CTR — the axes Table I / Figure 1 of the paper use
  to show domain imbalance;
* binned item/user impression histograms — the same binning the online
  drift monitor (``repro.online.drift``) uses for its PSI score, so
  "clustered together" and "not drifted apart" measure the same thing;
* mean fixed item-feature vector where the dataset carries one (the
  Taobao embedding statistics);
* optionally a random projection of the per-domain loss gradient at a
  probe model's current parameters — the gradient-conflict probe of
  ``repro.analysis.conflict`` / ``DriftMonitor.conflict`` — so domains
  whose gradients point opposite ways (Figure 3 conflict) land in
  different clusters even when their marginals look alike.

Everything is seeded through :func:`repro.utils.seeding.spawn_rng` and a
fixed iteration budget, so the same ``(dataset, seed)`` produces the same
plan in every process — cluster assignment must not depend on worker
count (the distributed tests pin this).
"""

from __future__ import annotations

import numpy as np

from ..utils.seeding import spawn_rng
from .param_space import ClusterPlan

__all__ = [
    "domain_features",
    "kmeans",
    "plan_clusters",
    "identity_plan",
]

_HIST_BINS = 8


def _binned_histogram(ids, n_ids, n_bins):
    """Normalized impression mass over ``n_bins`` fixed id buckets
    (the drift monitor's binning, Laplace-smoothed)."""
    if len(ids) == 0:
        return np.full(n_bins, 1.0 / n_bins)
    bins = np.minimum(ids * n_bins // max(n_ids, 1), n_bins - 1)
    counts = np.bincount(bins, minlength=n_bins).astype(np.float64) + 0.5
    return counts / counts.sum()


def domain_features(dataset, n_bins=_HIST_BINS, model=None, seed=0,
                    probe_dim=8, probe_batch=128):
    """``(n_domains, n_features)`` distribution descriptors, standardized.

    With ``model`` given, appends a seeded random projection of each
    domain's loss gradient at the model's current parameters (the
    gradient-conflict probe); gradients are normalized to unit length
    first so the probe captures conflict *direction*, not magnitude.
    """
    columns = []
    for domain in dataset:
        table = domain.train
        ctr = float(table.labels.mean()) if len(table) else 0.0
        row = [np.log1p(float(len(table))), ctr]
        row.extend(_binned_histogram(table.items, dataset.n_items, n_bins))
        row.extend(_binned_histogram(table.users, dataset.n_users, n_bins))
        if dataset.has_fixed_features and len(table):
            row.extend(dataset.item_features[table.items].mean(axis=0))
        elif dataset.has_fixed_features:
            row.extend(np.zeros(dataset.item_features.shape[1]))
        columns.append(np.asarray(row, dtype=np.float64))
    features = np.stack(columns)

    if model is not None:
        from ..analysis.conflict import per_domain_gradients

        rng = spawn_rng(seed, "clustering", "probe")
        # Probe in eval mode: dropout draws from the *model's* RNG stream,
        # which would make the plan depend on how often the model instance
        # had been used — assignment must be a pure function of
        # (parameters, dataset, seed) on every worker.
        was_training = model.training
        model.eval()
        try:
            gradients = per_domain_gradients(
                model, dataset, rng, batch_size=probe_batch
            )
        finally:
            model.train(was_training)
        norms = np.linalg.norm(gradients, axis=1, keepdims=True)
        gradients = gradients / np.maximum(norms, 1e-12)
        projector = rng.standard_normal((gradients.shape[1], probe_dim))
        projector /= np.sqrt(probe_dim)
        features = np.concatenate([features, gradients @ projector], axis=1)

    mean = features.mean(axis=0)
    std = features.std(axis=0)
    return (features - mean) / np.maximum(std, 1e-8)


def kmeans(features, n_clusters, seed=0, n_iter=25):
    """Seeded k-means with k-means++ init; returns integer assignments.

    Deterministic: ties in assignment break toward the lowest cluster id
    (``argmin``), empty clusters are re-seeded from the point farthest
    from its centroid, and the iteration budget is fixed.
    """
    n_points = features.shape[0]
    n_clusters = int(min(n_clusters, n_points))
    if n_clusters <= 0:
        raise ValueError("need at least one cluster")
    if n_clusters == n_points:
        return np.arange(n_points)

    rng = spawn_rng(seed, "clustering", "kmeans")
    # k-means++ seeding.
    centroids = [features[int(rng.integers(n_points))]]
    for _ in range(1, n_clusters):
        dist = np.min(
            [((features - c) ** 2).sum(axis=1) for c in centroids], axis=0
        )
        total = dist.sum()
        if total <= 0.0:
            centroids.append(features[int(rng.integers(n_points))])
            continue
        centroids.append(features[int(rng.choice(n_points, p=dist / total))])
    centroids = np.stack(centroids)

    assignments = np.zeros(n_points, dtype=np.int64)
    for _ in range(n_iter):
        sq_dist = (
            (features ** 2).sum(axis=1, keepdims=True)
            - 2.0 * features @ centroids.T
            + (centroids ** 2).sum(axis=1)
        )
        new_assignments = np.argmin(sq_dist, axis=1)
        for cluster in range(n_clusters):
            mask = new_assignments == cluster
            if mask.any():
                centroids[cluster] = features[mask].mean(axis=0)
            else:
                worst = int(np.argmax(np.min(sq_dist, axis=1)))
                centroids[cluster] = features[worst]
                new_assignments[worst] = cluster
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
    return assignments


def _compact(assignments):
    """Relabel cluster ids to 0..k-1 in first-appearance order."""
    mapping = {}
    compacted = []
    for cluster in assignments:
        cluster = int(cluster)
        if cluster not in mapping:
            mapping[cluster] = len(mapping)
        compacted.append(mapping[cluster])
    return tuple(compacted), len(mapping)


def plan_clusters(dataset, n_clusters, seed=0, head_fraction=0.02,
                  head_min_samples=0, model=None, probe_dim=8,
                  probe_batch=128):
    """Build a :class:`ClusterPlan` for ``dataset``.

    ``head_fraction`` of the domains — the largest by train size, subject
    to ``head_min_samples`` — are promoted to heads and keep an explicit
    per-domain residual; the rest are tail domains served from their
    cluster's shared delta.  Pass ``model`` to include the
    gradient-conflict probe in the similarity features.
    """
    features = domain_features(
        dataset, model=model, seed=seed,
        probe_dim=probe_dim, probe_batch=probe_batch,
    )
    assignments, n_found = _compact(
        kmeans(features, n_clusters, seed=seed)
    )

    sizes = dataset.domain_sizes()
    head_count = int(round(head_fraction * dataset.n_domains))
    order = sorted(
        range(dataset.n_domains), key=lambda d: (-sizes[d], d)
    )
    heads = frozenset(
        d for d in order[:head_count] if sizes[d] >= head_min_samples
    )
    return ClusterPlan(
        assignments=assignments, n_clusters=n_found, head_domains=heads,
    )


def identity_plan(n_domains):
    """Every domain its own cluster — the dense layout as a plan."""
    return ClusterPlan.identity(n_domains)
