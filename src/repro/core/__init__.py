"""``repro.core`` — the paper's contribution.

Domain Negotiation (Algorithm 1), Domain Regularization (Algorithm 2) and
the unified MAMDR framework (Algorithm 3), plus the shared/specific
parameter plane (Eq. 4) and the training configuration.

The parameter plane is the documented front door for anything touching
per-domain parameters: the :class:`DomainParamStore` protocol with its
two backends — :class:`DenseDomainStore` (one explicit delta per domain,
the default) and :class:`ClusteredDomainStore` (tail domains share a
cluster-level delta; scales the domain axis to 10k-50k) — wrapped by the
:class:`DomainParameterSpace` façade.  Cluster plans come from
:mod:`repro.core.clustering` (:func:`plan_clusters`).  Reaching into raw
per-domain delta dicts outside ``param_space.py`` is rejected by the
``theta-dict-access`` lint rule.
"""

from .clustering import domain_features, identity_plan, kmeans, plan_clusters
from .config import TrainConfig
from .mamdr import MAMDR
from .onboarding import extend_bank, onboard_domain
from .negotiation import DomainNegotiation, domain_negotiation_epoch
from .param_space import (
    ClusteredDomainStore,
    ClusterPlan,
    DenseDomainStore,
    DomainGroup,
    DomainParamStore,
    DomainParameterSpace,
    live_state_view,
)
from .selection import (
    BestTracker,
    PerDomainTracker,
    domain_split_auc,
    finetune_with_selection,
    model_split_auc,
    space_split_auc,
)
from .regularization import (
    DomainRegularization,
    domain_regularization_round,
    sample_helper_domains,
)
from .trainer import compute_loss_gradient, make_inner_optimizer, train_steps

__all__ = [
    # training frameworks + loops
    "TrainConfig",
    "MAMDR",
    "onboard_domain",
    "extend_bank",
    "DomainNegotiation",
    "domain_negotiation_epoch",
    "DomainRegularization",
    "domain_regularization_round",
    "sample_helper_domains",
    # the parameter plane (Eq. 4) and its storage protocol
    "DomainParameterSpace",
    "DomainParamStore",
    "DenseDomainStore",
    "ClusteredDomainStore",
    "ClusterPlan",
    "DomainGroup",
    "live_state_view",
    # domain clustering
    "plan_clusters",
    "identity_plan",
    "domain_features",
    "kmeans",
    # model selection + evaluation
    "BestTracker",
    "PerDomainTracker",
    "domain_split_auc",
    "model_split_auc",
    "space_split_auc",
    "finetune_with_selection",
    # inner-loop training
    "train_steps",
    "make_inner_optimizer",
    "compute_loss_gradient",
]
