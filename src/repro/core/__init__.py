"""``repro.core`` — the paper's contribution.

Domain Negotiation (Algorithm 1), Domain Regularization (Algorithm 2) and
the unified MAMDR framework (Algorithm 3), plus the shared/specific
parameter space (Eq. 4) and the training configuration.
"""

from .config import TrainConfig
from .mamdr import MAMDR
from .onboarding import extend_bank, onboard_domain
from .negotiation import DomainNegotiation, domain_negotiation_epoch
from .param_space import DomainParameterSpace, live_state_view
from .selection import (
    BestTracker,
    PerDomainTracker,
    domain_split_auc,
    finetune_with_selection,
    model_split_auc,
    space_split_auc,
)
from .regularization import (
    DomainRegularization,
    domain_regularization_round,
    sample_helper_domains,
)
from .trainer import compute_loss_gradient, make_inner_optimizer, train_steps

__all__ = [
    "TrainConfig",
    "MAMDR",
    "onboard_domain",
    "extend_bank",
    "DomainNegotiation",
    "domain_negotiation_epoch",
    "DomainRegularization",
    "domain_regularization_round",
    "sample_helper_domains",
    "DomainParameterSpace",
    "live_state_view",
    "BestTracker",
    "PerDomainTracker",
    "domain_split_auc",
    "model_split_auc",
    "space_split_auc",
    "finetune_with_selection",
    "train_steps",
    "make_inner_optimizer",
    "compute_loss_gradient",
]
