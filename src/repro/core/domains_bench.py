"""Domain-axis scaling benchmark: train → publish → serve at 1k-50k domains.

The paper's production deployment spans 69,102 domains; this bench
measures how far one machine gets along that axis with each parameter
backend.  Per ``(n_domains, backend)`` cell it runs the full pipeline —
build a heavy-tailed ``taobao_sim`` dataset, train a scaled-down MAMDR
pass (DN + cluster-gated DR), publish a copy-on-write snapshot, serve and
parity-check a sample of domains — and records wall-times, resettable
peak memory (``tracemalloc``, since ``ru_maxrss`` only ever grows) and
the delta-plane footprint.

``python -m repro.cli domains-bench`` writes the scaling curve to
``BENCH_domains.json`` (same journal conventions as the serve/traffic
benches).  The dense backend is capped by ``--dense-limit`` — beyond a
few thousand domains its O(n_domains) delta dicts and DR rounds are
exactly the wall the clustered-sharded backend removes.
"""

from __future__ import annotations

import json
import pathlib
import time
import tracemalloc

from ..data.batching import sample_batch
from ..data.benchmarks import taobao_sim
from ..models import build_model
from ..serving.service import ServingService
from ..utils.seeding import spawn_rng
from .clustering import plan_clusters
from .config import TrainConfig
from .param_space import ClusteredDomainStore, DomainParameterSpace
from .negotiation import domain_negotiation_epoch
from .regularization import domain_regularization_round
from .trainer import make_inner_optimizer

__all__ = [
    "DEFAULT_BENCH_PATH",
    "make_domains_dataset",
    "bench_cell",
    "run_domains_bench",
    "render_domains_bench",
    "write_bench_record",
]

DEFAULT_BENCH_PATH = "BENCH_domains.json"

#: deliberately tiny training budget: the bench measures how cost *scales
#: with n_domains*, not model quality, so one epoch of one DN round plus
#: one DR step per group is plenty of arithmetic per domain visit.
BENCH_CONFIG = TrainConfig(
    epochs=1, batch_size=64, inner_steps=1, dr_steps=1, sample_k=1,
    dn_rounds=1,
)


def make_domains_dataset(n_domains, seed=0):
    """A sparse-tail ``taobao_sim`` sized for huge domain counts.

    Overrides the preset's per-domain floor (18 samples instead of 40 —
    the least that guarantees >= 3 interactions of each label class for
    the stratified 3-way split at the preset's lowest CTR) and pins the
    user/item universes so the bench's memory curve measures the *domain*
    axis, not incidental universe growth.
    """
    return taobao_sim(
        n_domains,
        seed=seed,
        total_samples=12 * n_domains,
        n_users=2000,
        n_items=1000,
        min_domain_samples=18,
        name=f"domains{n_domains}_sim",
    )


def _make_store(backend, dataset, clusters, seed):
    if backend == "dense":
        return None, None
    plan = plan_clusters(
        dataset, n_clusters=clusters, seed=seed,
        head_fraction=min(0.01, 100 / max(dataset.n_domains, 1)),
    )
    return (lambda shared: ClusteredDomainStore(shared, plan)), plan


def _train(model, dataset, space, rng):
    optimizer = make_inner_optimizer(model, BENCH_CONFIG)
    view, groups = space.training_plan(dataset)
    for _ in range(BENCH_CONFIG.epochs):
        shared = space.shared
        for _ in range(BENCH_CONFIG.dn_rounds):
            shared = domain_negotiation_epoch(
                model, view, shared, BENCH_CONFIG, rng, optimizer=optimizer
            )
        space.set_shared(shared)
        for position, group in enumerate(groups):
            delta = domain_regularization_round(
                model, view, space, position, BENCH_CONFIG, rng,
                delta=space.group_delta(group),
            )
            space.apply_delta(group, delta)
    return len(groups)


def _serve_sample(service, space, dataset, rng, sample_domains=32,
                  batch_rows=16):
    """Serve a spread of domains; returns (n_scored, parity_ok)."""
    import numpy as np

    probe = build_model("mlp", dataset, seed=0)
    step = max(1, dataset.n_domains // sample_domains)
    scored, parity = 0, True
    for domain_index in range(0, dataset.n_domains, step):
        table = dataset.domain(domain_index).test
        batch = sample_batch(
            table, domain_index, min(batch_rows, len(table)), rng
        )
        served = service.predict_batch(batch.users, batch.items, domain_index)
        space.load_combined(probe, domain_index)
        if not np.array_equal(served, probe.predict(batch)):
            parity = False
        scored += 1
    return scored, parity


def bench_cell(n_domains, backend, clusters=64, seed=0, verbose=False):
    """One (n_domains, backend) measurement: train → publish → serve."""

    def note(message):
        if verbose:
            print(f"[domains-bench] {message}", flush=True)

    rng = spawn_rng(seed, "domains-bench", backend, n_domains)
    result = {"n_domains": n_domains, "backend": backend}

    tracemalloc.start()
    start = time.perf_counter()
    dataset = make_domains_dataset(n_domains, seed=seed)
    result["build_dataset_s"] = round(time.perf_counter() - start, 4)
    result["total_interactions"] = int(dataset.total_interactions())
    note(f"{backend}/{n_domains}: dataset built "
         f"({result['total_interactions']} interactions)")

    start = time.perf_counter()
    store, plan = _make_store(backend, dataset, clusters, seed)
    model = build_model("mlp", dataset, seed=seed)
    space = DomainParameterSpace(model, dataset.n_domains, store=store)
    result["build_space_s"] = round(time.perf_counter() - start, 4)
    result["delta_plane_mb"] = round(space.nbytes() / 2**20, 3)
    result["n_groups"] = len(space.groups())
    if plan is not None:
        result["cluster_plan"] = plan.summary()

    start = time.perf_counter()
    _train(model, dataset, space, rng)
    result["train_s"] = round(time.perf_counter() - start, 4)
    note(f"{backend}/{n_domains}: trained {result['n_groups']} groups "
         f"in {result['train_s']}s")

    start = time.perf_counter()
    service = ServingService(build_model("mlp", dataset, seed=seed))
    snapshot = service.publish(space, dataset=dataset)
    result["publish_s"] = round(time.perf_counter() - start, 4)
    stats = snapshot.cow_stats()
    result["snapshot_unique_states"] = stats["unique_states"]
    result["snapshot_copied_mb"] = round(stats["copied_bytes"] / 2**20, 3)

    start = time.perf_counter()
    scored, parity = _serve_sample(service, space, dataset, rng)
    result["serve_s"] = round(time.perf_counter() - start, 4)
    result["served_domains"] = scored
    result["serve_parity"] = parity

    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    result["peak_rss_mb"] = round(peak / 2**20, 3)
    result["total_s"] = round(
        result["build_dataset_s"] + result["build_space_s"]
        + result["train_s"] + result["publish_s"] + result["serve_s"], 4,
    )
    note(f"{backend}/{n_domains}: total {result['total_s']}s, "
         f"peak {result['peak_rss_mb']} MB")
    return result


def run_domains_bench(domain_counts=(1000, 5000, 10000), clusters=64,
                      dense_limit=10000, seed=0, verbose=False):
    """The scaling curve: every count with the clustered backend, counts
    up to ``dense_limit`` with the dense one (its per-domain storage and
    loops stop being affordable long before the clustered backend's)."""
    cells = []
    for n_domains in domain_counts:
        if n_domains <= dense_limit:
            cells.append(bench_cell(
                n_domains, "dense", clusters=clusters, seed=seed,
                verbose=verbose,
            ))
        cells.append(bench_cell(
            n_domains, "clustered", clusters=clusters, seed=seed,
            verbose=verbose,
        ))
    return {
        "settings": {
            "domain_counts": list(domain_counts),
            "clusters": clusters,
            "dense_limit": dense_limit,
            "seed": seed,
            "config": {
                "epochs": BENCH_CONFIG.epochs,
                "batch_size": BENCH_CONFIG.batch_size,
                "inner_steps": BENCH_CONFIG.inner_steps,
                "dr_steps": BENCH_CONFIG.dr_steps,
                "sample_k": BENCH_CONFIG.sample_k,
                "dn_rounds": BENCH_CONFIG.dn_rounds,
            },
        },
        "cells": cells,
    }


def render_domains_bench(record):
    """Human-readable table of the scaling curve."""
    lines = [
        "domains-bench (train -> publish -> serve per cell)",
        f"  clusters={record['settings']['clusters']} "
        f"dense_limit={record['settings']['dense_limit']} "
        f"seed={record['settings']['seed']}",
        "",
        f"  {'n_domains':>9}  {'backend':<9}  {'groups':>7}  "
        f"{'train_s':>8}  {'total_s':>8}  {'peak_MB':>8}  "
        f"{'delta_MB':>8}  parity",
    ]
    for cell in record["cells"]:
        lines.append(
            f"  {cell['n_domains']:>9}  {cell['backend']:<9}  "
            f"{cell['n_groups']:>7}  {cell['train_s']:>8.2f}  "
            f"{cell['total_s']:>8.2f}  {cell['peak_rss_mb']:>8.1f}  "
            f"{cell['delta_plane_mb']:>8.1f}  "
            f"{'ok' if cell['serve_parity'] else 'MISMATCH'}"
        )
    return "\n".join(lines)


def write_bench_record(record, path=DEFAULT_BENCH_PATH):
    """Merge ``record`` into the domains benchmark journal at ``path``."""
    path = pathlib.Path(path)
    payload = {"benchmarks": {}}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {"benchmarks": {}}
    bench = payload.setdefault("benchmarks", {})
    entry = bench.setdefault("domains_bench", {})
    entry["settings"] = record["settings"]
    # Merge cells by (n_domains, backend) so a smoke run refreshes its own
    # cells without clobbering the rest of the recorded curve.
    merged = {
        (cell["n_domains"], cell["backend"]): cell
        for cell in entry.get("cells", [])
    }
    for cell in record["cells"]:
        merged[(cell["n_domains"], cell["backend"])] = cell
    entry["cells"] = [merged[key] for key in sorted(merged)]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
