"""Shared + domain-specific parameter composition (Eq. 4) at any scale.

MAMDR keeps one shared state ``θ_S`` and, per domain, an additive delta
``θ_i``, serving domain ``i`` with ``Θ_i = θ_S + θ_i``.  Deltas (rather
than absolute states) make the "specific parameters point from the shared
solution toward the finetune endpoint" picture of Figure 4 literal, and
they are what the PS-Worker implementation ships around.

The paper's headline deployment holds **69,102 domains** — far past the
point where a ``{domain: state_dict}`` is affordable.  This module
therefore splits the *composition law* from the *storage layout* behind
the :class:`DomainParamStore` protocol:

``materialize(domain) = θ_S + θ_cluster(domain) + δ_domain``

with two backends:

* :class:`DenseDomainStore` — one explicit delta per domain (the original
  layout, bitwise-identical for every existing preset; here
  ``θ_cluster ≡ 0`` and ``δ_domain`` is the classic ``θ_i``);
* :class:`ClusteredDomainStore` — domains are grouped by distribution
  similarity (:mod:`repro.core.clustering`), **tail** domains share one
  cluster-level delta, **head** domains add an explicit per-domain
  residual, and all deltas of a cluster live in one contiguous array
  shard.  Training, snapshot materialization and evaluation gate work by
  :meth:`DomainParamStore.groups` — O(n_clusters + n_heads) units instead
  of O(n_domains) — which is what AdaptDHM-style cluster-granularity
  training needs to reach 10k-50k domains on one machine.

:class:`DomainParameterSpace` is the façade every caller goes through;
its legacy ``.deltas`` dict attribute survives as a ``DeprecationWarning``
shim.  Direct delta-dict access outside this file is flagged by the
``theta-dict-access`` lint rule.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..nn.state import clone_state, state_add, zeros_like_state

__all__ = [
    "ClusterPlan",
    "DomainGroup",
    "DomainParamStore",
    "DenseDomainStore",
    "ClusteredDomainStore",
    "DomainParameterSpace",
    "live_state_view",
]


def live_state_view(model):
    """Zero-copy ``{name: ndarray}`` view of a model's live parameters.

    The arrays *are* the parameter buffers — no copy is made, which is why
    the DN/DR meta-updates can read "the end of the inner trajectory"
    without allocating a full state dict.  Mutating these arrays mutates
    the model; the in-place ops in ``repro.nn.state`` report such
    mutations to the sanitizer, whose version counters trace them back to
    the owning :class:`~repro.nn.module.Parameter` (see
    ``repro.tooling.sanitizer``), so use the state ops — not ad-hoc numpy
    writes — if you must mutate through a view.
    """
    return OrderedDict(
        (name, param.data) for name, param in model.named_parameters()
    )


# ----------------------------------------------------------------------
# Cluster plans and work units
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterPlan:
    """A hierarchical assignment of domains to clusters.

    ``assignments[d]`` is domain ``d``'s cluster id; ``head_domains`` are
    the data-rich domains that carry an explicit per-domain residual on
    top of their cluster's shared delta (everyone else — the tail — is
    served straight from ``θ_S + θ_cluster``).  Plans are plain data and
    deterministic to build (see :func:`repro.core.clustering.plan_clusters`),
    so the same seed yields the same plan on every worker.
    """

    assignments: tuple
    n_clusters: int
    head_domains: frozenset = field(default_factory=frozenset)

    def __post_init__(self):
        object.__setattr__(self, "assignments", tuple(
            int(c) for c in self.assignments
        ))
        object.__setattr__(self, "head_domains", frozenset(
            int(d) for d in self.head_domains
        ))
        if not self.assignments:
            raise ValueError("a plan needs at least one domain")
        if self.n_clusters <= 0:
            raise ValueError("need at least one cluster")
        bad = [c for c in self.assignments if not 0 <= c < self.n_clusters]
        if bad:
            raise ValueError(f"cluster ids out of range: {sorted(set(bad))}")
        bad = [d for d in self.head_domains
               if not 0 <= d < len(self.assignments)]
        if bad:
            raise ValueError(f"head domains out of range: {sorted(bad)}")

    @property
    def n_domains(self):
        return len(self.assignments)

    def cluster_of(self, domain):
        return self.assignments[domain]

    def members(self, cluster):
        """All domain indices assigned to ``cluster`` (ascending)."""
        return tuple(
            d for d, c in enumerate(self.assignments) if c == cluster
        )

    @classmethod
    def identity(cls, n_domains):
        """Every domain its own cluster, no heads — the dense layout
        expressed as a plan (used by the backend-parity tests)."""
        return cls(
            assignments=tuple(range(n_domains)), n_clusters=n_domains,
        )

    def summary(self):
        populated = len(set(self.assignments))
        return {
            "n_domains": self.n_domains,
            "n_clusters": self.n_clusters,
            "populated_clusters": populated,
            "head_domains": len(self.head_domains),
            "tail_domains": self.n_domains - len(self.head_domains),
        }


@dataclass(frozen=True)
class DomainGroup:
    """One unit of per-domain work: a delta-sharing set of domains.

    ``kind`` is ``"cluster"`` (tail domains sharing one θ_cluster) or
    ``"domain"`` (a single domain with its own trainable delta — every
    group of the dense backend, and the head domains of the clustered
    one).  ``representative`` is the member whose data stands in for the
    group where a single domain index is needed.
    """

    kind: str
    key: str
    domains: tuple
    representative: int

    def __post_init__(self):
        if self.kind not in ("cluster", "domain"):
            raise ValueError(f"unknown group kind {self.kind!r}")
        if not self.domains:
            raise ValueError("a group needs at least one domain")
        if self.representative not in self.domains:
            raise ValueError("representative must be a group member")


# ----------------------------------------------------------------------
# The storage protocol
# ----------------------------------------------------------------------
class DomainParamStore:
    """Protocol for per-domain parameter storage.

    A store owns ``θ_S`` plus whatever delta structure it chooses, and
    exposes domains through *groups* — partitions of ``0..n_domains-1``
    into delta-sharing units.  Callers must never assume one delta per
    domain; they iterate :meth:`groups`, read a group's trainable delta
    with :meth:`group_delta`, write it back with :meth:`apply_delta`, and
    materialize full serving states with :meth:`materialize` /
    :meth:`cow_states`.
    """

    n_domains = 0

    # -- shared state ---------------------------------------------------
    @property
    def shared(self):
        raise NotImplementedError

    def set_shared(self, state):
        raise NotImplementedError

    # -- structure ------------------------------------------------------
    def groups(self):
        """The delta-sharing partition of all domains (deterministic)."""
        raise NotImplementedError

    # -- deltas ---------------------------------------------------------
    def delta(self, domain):
        """The *effective* delta of one domain: ``θ_cluster + δ_domain``.

        May return zero-copy views into internal storage; callers that
        mutate must clone first (the DR round does).
        """
        raise NotImplementedError

    def group_delta(self, group):
        """The trainable delta of one group (views; clone before train)."""
        raise NotImplementedError

    def apply_delta(self, target, delta):
        """Store ``delta`` for ``target`` (a :class:`DomainGroup` or a
        domain index).  Values are copied in."""
        raise NotImplementedError

    # -- materialization ------------------------------------------------
    def materialize(self, domain):
        """``Θ_domain = θ_S + θ_cluster(domain) + δ_domain`` (Eq. 4)."""
        raise NotImplementedError

    def materialize_cow(self, domain, shared=None):
        """``Θ_domain`` with zero-delta entries aliasing ``shared``."""
        raise NotImplementedError

    def cow_states(self, shared):
        """Yield ``(domains, state)`` copy-on-write serving states.

        ``domains`` is a tuple of member indices sharing ``state``; state
        entries whose delta components are all-zero *are* the passed
        ``shared`` arrays (no copy), so publishing n domains does not cost
        n model copies — and with the clustered backend, not even
        n_materializations: one state per group.
        """
        raise NotImplementedError

    # -- accounting -----------------------------------------------------
    def nbytes(self):
        """Bytes held by the delta plane (excludes ``θ_S``)."""
        raise NotImplementedError

    def stats(self):
        return {"backend": type(self).__name__, "n_domains": self.n_domains,
                "groups": len(self.groups()), "delta_bytes": self.nbytes()}


def _cow_entry(base, *components):
    """``base + Σ components`` with all-zero component sets aliasing base."""
    live = [part for part in components if part.any()]
    if not live:
        return base
    out = base + live[0]
    for part in live[1:]:
        out += part
    return out


class DenseDomainStore(DomainParamStore):
    """The original layout: one explicit delta dict per domain.

    Bitwise-identical to the historical ``DomainParameterSpace`` —
    every group is a singleton, ``materialize`` is ``θ_S + θ_i`` — and
    kept as the default backend for every existing preset.
    """

    def __init__(self, shared_state, n_domains):
        if n_domains <= 0:
            raise ValueError("need at least one domain")
        self.n_domains = int(n_domains)
        self._shared = shared_state
        self._deltas = {
            domain: zeros_like_state(shared_state)
            for domain in range(self.n_domains)
        }
        self._groups = tuple(
            DomainGroup(kind="domain", key=f"d{d}", domains=(d,),
                        representative=d)
            for d in range(self.n_domains)
        )

    @property
    def shared(self):
        return self._shared

    def set_shared(self, state):
        self._shared = clone_state(state)

    def groups(self):
        return self._groups

    def _check(self, domain):
        if domain not in self._deltas:
            raise KeyError(f"unknown domain {domain}")
        return domain

    def delta(self, domain):
        return self._deltas[self._check(domain)]

    def group_delta(self, group):
        return self.delta(group.representative)

    def apply_delta(self, target, delta):
        domain = target.representative if isinstance(target, DomainGroup) \
            else target
        self._deltas[self._check(domain)] = clone_state(delta)

    def materialize(self, domain):
        return state_add(self._shared, self.delta(domain))

    def materialize_cow(self, domain, shared=None):
        shared = self._shared if shared is None else shared
        delta = self.delta(domain)
        return OrderedDict(
            (name, _cow_entry(base, delta[name]))
            for name, base in shared.items()
        )

    def cow_states(self, shared):
        for domain in range(self.n_domains):
            yield (domain,), self.materialize_cow(domain, shared)

    def nbytes(self):
        return sum(
            value.nbytes
            for delta in self._deltas.values() for value in delta.values()
        )


class _ClusterShard:
    """One cluster's deltas as contiguous arrays.

    Per parameter ``name``, ``arrays[name]`` has shape
    ``(1 + n_heads, *param_shape)``: row 0 is the cluster-level delta
    ``θ_cluster`` shared by the tail, rows 1.. are the head domains'
    residuals ``δ_domain``.  Contiguity keeps a cluster's whole delta
    plane in one allocation per parameter — cache-friendly to train and
    trivially cheap to account.
    """

    def __init__(self, shared_state, head_domains):
        self.head_rows = {
            int(d): index + 1 for index, d in enumerate(head_domains)
        }
        self.arrays = OrderedDict(
            (name, np.zeros((1 + len(self.head_rows),) + value.shape,
                            dtype=value.dtype))
            for name, value in shared_state.items()
        )

    def row(self, index):
        """Zero-copy state-dict view of one storage row."""
        return OrderedDict(
            (name, array[index]) for name, array in self.arrays.items()
        )

    def assign_row(self, index, delta):
        for name, array in self.arrays.items():
            array[index] = delta[name]

    def nbytes(self):
        return sum(array.nbytes for array in self.arrays.values())


class ClusteredDomainStore(DomainParamStore):
    """Cluster-sharded storage: tail domains share θ_cluster, head domains
    add an explicit residual, shards are contiguous per cluster.

    With ``ClusterPlan.identity`` (every domain its own cluster, no
    heads) this backend reproduces the dense layout's arithmetic exactly
    — the backend-parity tests pin training through both to identical
    AUC.
    """

    def __init__(self, shared_state, plan):
        if not isinstance(plan, ClusterPlan):
            raise TypeError("ClusteredDomainStore needs a ClusterPlan")
        self.plan = plan
        self.n_domains = plan.n_domains
        self._shared = shared_state
        self._members = {}
        for domain, cluster in enumerate(plan.assignments):
            self._members.setdefault(cluster, []).append(domain)
        self._shards = {}
        for cluster, members in self._members.items():
            heads = [d for d in members if d in plan.head_domains]
            self._shards[cluster] = _ClusterShard(shared_state, heads)
        self._groups = self._build_groups()
        self._by_key = {group.key: group for group in self._groups}

    def _build_groups(self):
        groups = []
        for cluster in sorted(self._members):
            tail = tuple(
                d for d in self._members[cluster]
                if d not in self.plan.head_domains
            )
            if tail:
                # Representative: the (deterministically) first tail
                # member; callers wanting the data-richest member order
                # the plan's members accordingly at planning time.
                groups.append(DomainGroup(
                    kind="cluster", key=f"c{cluster}", domains=tail,
                    representative=tail[0],
                ))
        for domain in sorted(self.plan.head_domains):
            groups.append(DomainGroup(
                kind="domain", key=f"d{domain}", domains=(domain,),
                representative=domain,
            ))
        return tuple(groups)

    # -- shared ---------------------------------------------------------
    @property
    def shared(self):
        return self._shared

    def set_shared(self, state):
        self._shared = clone_state(state)

    # -- structure ------------------------------------------------------
    def groups(self):
        return self._groups

    def _shard_of(self, domain):
        if not 0 <= domain < self.n_domains:
            raise KeyError(f"unknown domain {domain}")
        return self._shards[self.plan.cluster_of(domain)]

    # -- deltas ---------------------------------------------------------
    def delta(self, domain):
        shard = self._shard_of(domain)
        cluster_row = shard.row(0)
        head_row = shard.head_rows.get(domain)
        if head_row is None:
            return cluster_row
        return OrderedDict(
            (name, value + shard.arrays[name][head_row])
            for name, value in cluster_row.items()
        )

    def group_delta(self, group):
        if group.kind == "cluster":
            return self._shard_of(group.representative).row(0)
        return self.delta(group.representative)

    def apply_delta(self, target, delta):
        if isinstance(target, DomainGroup):
            target = self._by_key.get(target.key, target)
            if target.kind == "cluster":
                self._shard_of(target.representative).assign_row(0, delta)
                return
            target = target.representative
        domain = int(target)
        shard = self._shard_of(domain)
        head_row = shard.head_rows.get(domain)
        if head_row is not None:
            # Head residual: δ_domain = (effective delta) − θ_cluster.
            cluster_row = shard.row(0)
            shard.assign_row(head_row, OrderedDict(
                (name, delta[name] - cluster_row[name])
                for name in cluster_row
            ))
            return
        members = self.plan.members(self.plan.cluster_of(domain))
        tail = [d for d in members if d not in self.plan.head_domains]
        if tail == [domain]:
            shard.assign_row(0, delta)
            return
        raise ValueError(
            f"domain {domain} is a tail member of a shared cluster; its "
            "delta is θ_cluster — apply_delta to the cluster group, or "
            "promote the domain to a head in the ClusterPlan"
        )

    # -- materialization ------------------------------------------------
    def materialize(self, domain):
        shard = self._shard_of(domain)
        cluster_row = shard.row(0)
        head_row = shard.head_rows.get(domain)
        if head_row is None:
            return state_add(self._shared, cluster_row)
        return OrderedDict(
            (name, base + cluster_row[name] + shard.arrays[name][head_row])
            for name, base in self._shared.items()
        )

    def materialize_cow(self, domain, shared=None):
        shared = self._shared if shared is None else shared
        shard = self._shard_of(domain)
        head_row = shard.head_rows.get(domain)
        rows = (0,) if head_row is None else (0, head_row)
        return OrderedDict(
            (name, _cow_entry(
                base, *(shard.arrays[name][row] for row in rows)
            ))
            for name, base in shared.items()
        )

    def cow_states(self, shared):
        for group in self._groups:
            yield group.domains, self.materialize_cow(
                group.representative, shared
            )

    # -- accounting -----------------------------------------------------
    def nbytes(self):
        return sum(shard.nbytes() for shard in self._shards.values())

    def stats(self):
        stats = super().stats()
        stats.update(self.plan.summary())
        return stats


# ----------------------------------------------------------------------
# The façade
# ----------------------------------------------------------------------
class DomainParameterSpace:
    """Holds θ_S and the per-domain delta plane for a model skeleton.

    The space is created from a model's current state; all entries of the
    state participate in both the shared and the specific components,
    which is exactly the paper's "copy Θ into the shared parameters θ_S
    and specific parameters {θ_1 ... θ_n}" (Algorithm 3).

    Storage is pluggable: ``store`` may be a ready
    :class:`DomainParamStore` or a factory ``shared_state -> store``;
    omitted, the dense per-domain layout is used (bitwise-identical to
    the historical behaviour).
    """

    def __init__(self, model, n_domains, store=None):
        if n_domains <= 0:
            raise ValueError("need at least one domain")
        if store is None:
            store = DenseDomainStore(model.state_dict(), n_domains)
        elif callable(store) and not isinstance(store, DomainParamStore):
            store = store(model.state_dict())
        if store.n_domains != n_domains:
            raise ValueError(
                f"store covers {store.n_domains} domains, dataset has "
                f"{n_domains}"
            )
        self._store = store

    # -- protocol front door --------------------------------------------
    @property
    def store(self):
        return self._store

    @property
    def n_domains(self):
        return self._store.n_domains

    @property
    def shared(self):
        return self._store.shared

    def groups(self):
        """The store's delta-sharing partition (training/serving units)."""
        return self._store.groups()

    # DR's outer loop iterates these in order; the dense backend yields
    # one singleton per domain (the historical iteration), the clustered
    # backend one unit per cluster plus one per head domain.
    update_groups = groups

    def group_delta(self, group):
        return self._store.group_delta(group)

    def apply_delta(self, target, delta):
        self._store.apply_delta(target, delta)

    def get(self, domain):
        """``Θ_domain`` — protocol alias of :meth:`materialize`."""
        return self._store.materialize(domain)

    def materialize(self, domain):
        """``Θ_domain = θ_S + θ_cluster(domain) + δ_domain`` (Eq. 4)."""
        return self._store.materialize(domain)

    def cow_states(self, shared):
        """Copy-on-write serving states, one per group (see store docs)."""
        return self._store.cow_states(shared)

    def training_plan(self, dataset):
        """``(view, groups)``: the dataset to train on and its units.

        The dense backend trains on the dataset as-is (one unit per
        domain).  The clustered backend returns a *cluster view* whose
        pseudo-domains merge each group's member tables, so DN visits
        n_groups units per epoch and DR trains one delta per unit —
        AdaptDHM's cluster-granularity training.  ``groups[i]`` always
        corresponds to ``view.domain(i)``.
        """
        groups = self._store.groups()
        if all(group.kind == "domain" and len(group.domains) == 1
               for group in groups) and len(groups) == dataset.n_domains:
            return dataset, groups
        return _cluster_view(dataset, groups), groups

    def nbytes(self):
        return self._store.nbytes()

    # -- legacy API (unchanged semantics) -------------------------------
    def combined(self, domain):
        """``Θ_domain = θ_S + θ_domain`` (Eq. 4)."""
        return self._store.materialize(domain)

    def set_shared(self, state):
        self._store.set_shared(state)

    def set_delta(self, domain, delta):
        self._store.apply_delta(int(domain), delta)

    def delta(self, domain):
        return self._store.delta(domain)

    def load_shared(self, model):
        """Load θ_S into the model (DN's working view)."""
        model.load_state_dict(self.shared)

    def load_combined(self, model, domain):
        """Load Θ_domain into the model (DR's and serving's view)."""
        model.load_state_dict(self.combined(domain))

    def extract_delta(self, model, domain=None):
        """Read the model's current state as a delta against θ_S.

        Computed straight from the live parameters (one allocation) rather
        than ``state_sub(model.state_dict(), ...)`` (two) — this runs once
        per DR helper step.
        """
        shared = self.shared
        return OrderedDict(
            (name, param.data - shared[name])
            for name, param in model.named_parameters()
        )

    def combined_cow(self, domain):
        """``Θ_domain`` with zero-delta entries *aliasing* θ_S (no copy).

        Copy-on-write materialization for snapshot publishing
        (``repro.serving.snapshots``): a parameter whose specific delta is
        exactly zero — the common case for untouched embedding tables and
        frozen fields — is returned as the shared array itself rather than
        an ``θ_S + 0`` copy, so publishing ``n_domains`` combined states
        does not cost ``n_domains`` full model copies.  Callers must treat
        the returned arrays as read-only; snapshot publishing freezes them.
        """
        return self._store.materialize_cow(domain)

    def all_combined(self):
        """``{domain: Θ_domain}`` for deployment as a StateBank.

        Group-gated: members of a delta-sharing group receive the *same*
        state object, so the clustered backend materializes once per
        group instead of once per domain.
        """
        combined = {}
        for group in self._store.groups():
            state = self._store.materialize(group.representative)
            for domain in group.domains:
                combined[domain] = state
        return combined

    @property
    def deltas(self):
        """Deprecated: the per-domain delta dict of the dense layout.

        Kept as a compatibility shim; iterating it materializes one
        effective delta per domain, which defeats the clustered backend's
        whole point.  Go through ``groups()`` / ``delta()`` /
        ``apply_delta()`` instead.
        """
        warnings.warn(
            "DomainParameterSpace.deltas is deprecated; use the "
            "DomainParamStore protocol (groups()/delta()/apply_delta()) "
            "instead of reaching into per-domain dicts",
            DeprecationWarning, stacklevel=2,
        )
        return {
            domain: self._store.delta(domain)
            for domain in range(self.n_domains)
        }


def _cluster_view(dataset, groups):
    """A dataset whose domains are the store's groups (merged tables)."""
    from ..data.schema import Domain, InteractionTable, MultiDomainDataset

    domains = []
    for index, group in enumerate(groups):
        members = [dataset.domain(d) for d in group.domains]
        if len(members) == 1:
            source = members[0]
            train, val, test = source.train, source.val, source.test
        else:
            train = InteractionTable.concatenate(m.train for m in members)
            val = InteractionTable.concatenate(m.val for m in members)
            test = InteractionTable.concatenate(m.test for m in members)
        domains.append(Domain(
            name=group.key, index=index, train=train, val=val, test=test,
        ))
    return MultiDomainDataset(
        f"{dataset.name}#groups", domains,
        n_users=dataset.n_users, n_items=dataset.n_items,
        user_features=dataset.user_features,
        item_features=dataset.item_features,
    )
