"""Shared + domain-specific parameter composition (Eq. 4).

MAMDR keeps one shared state ``θ_S`` and, per domain, an additive delta
``θ_i`` initialized at zero, serving domain ``i`` with ``Θ_i = θ_S + θ_i``.
Deltas (rather than absolute states) make the "specific parameters point
from the shared solution toward the finetune endpoint" picture of Figure 4
literal, and they are what the PS-Worker implementation ships around.
"""

from __future__ import annotations

from collections import OrderedDict

from ..nn.state import clone_state, state_add, zeros_like_state

__all__ = ["DomainParameterSpace", "live_state_view"]


def live_state_view(model):
    """Zero-copy ``{name: ndarray}`` view of a model's live parameters.

    The arrays *are* the parameter buffers — no copy is made, which is why
    the DN/DR meta-updates can read "the end of the inner trajectory"
    without allocating a full state dict.  Mutating these arrays mutates
    the model; the in-place ops in ``repro.nn.state`` report such
    mutations to the sanitizer, whose version counters trace them back to
    the owning :class:`~repro.nn.module.Parameter` (see
    ``repro.tooling.sanitizer``), so use the state ops — not ad-hoc numpy
    writes — if you must mutate through a view.
    """
    return OrderedDict(
        (name, param.data) for name, param in model.named_parameters()
    )


class DomainParameterSpace:
    """Holds θ_S and {θ_i} for a model skeleton.

    The space is created from a model's current state; all entries of the
    state participate in both the shared and the specific components, which
    is exactly the paper's "copy Θ into the shared parameters θ_S and
    specific parameters {θ_1 ... θ_n}" (Algorithm 3).
    """

    def __init__(self, model, n_domains):
        if n_domains <= 0:
            raise ValueError("need at least one domain")
        self.n_domains = n_domains
        self.shared = model.state_dict()
        self.deltas = {
            domain: zeros_like_state(self.shared) for domain in range(n_domains)
        }

    def combined(self, domain):
        """``Θ_domain = θ_S + θ_domain`` (Eq. 4)."""
        return state_add(self.shared, self._delta(domain))

    def set_shared(self, state):
        self.shared = clone_state(state)

    def set_delta(self, domain, delta):
        self.deltas[self._check(domain)] = clone_state(delta)

    def delta(self, domain):
        return self._delta(domain)

    def load_shared(self, model):
        """Load θ_S into the model (DN's working view)."""
        model.load_state_dict(self.shared)

    def load_combined(self, model, domain):
        """Load Θ_domain into the model (DR's and serving's view)."""
        model.load_state_dict(self.combined(domain))

    def extract_delta(self, model, domain=None):
        """Read the model's current state as a delta against θ_S.

        Computed straight from the live parameters (one allocation) rather
        than ``state_sub(model.state_dict(), ...)`` (two) — this runs once
        per DR helper step.
        """
        return OrderedDict(
            (name, param.data - self.shared[name])
            for name, param in model.named_parameters()
        )

    def combined_cow(self, domain):
        """``Θ_domain`` with zero-delta entries *aliasing* θ_S (no copy).

        Copy-on-write materialization for snapshot publishing
        (``repro.serving.snapshots``): a parameter whose specific delta is
        exactly zero — the common case for untouched embedding tables and
        frozen fields — is returned as the shared array itself rather than
        an ``θ_S + 0`` copy, so publishing ``n_domains`` combined states
        does not cost ``n_domains`` full model copies.  Callers must treat
        the returned arrays as read-only; snapshot publishing freezes them.
        """
        delta = self._delta(domain)
        return OrderedDict(
            (name, shared if not delta[name].any() else shared + delta[name])
            for name, shared in self.shared.items()
        )

    def all_combined(self):
        """``{domain: Θ_domain}`` for deployment as a StateBank."""
        return {d: self.combined(d) for d in range(self.n_domains)}

    def _check(self, domain):
        if domain not in self.deltas:
            raise KeyError(f"unknown domain {domain}")
        return domain

    def _delta(self, domain):
        return self.deltas[self._check(domain)]
