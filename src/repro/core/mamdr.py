"""MAMDR (Algorithm 3): Domain Negotiation + Domain Regularization.

Per epoch, MAMDR first updates the shared parameters θ_S with DN
(mitigating domain conflict), then updates every domain's specific delta
θ_i with DR (regularizing sparse domains with other domains' data).  The
deployed predictor for domain ``i`` uses ``Θ_i = θ_S + θ_i`` (Eq. 4).

Total complexity per epoch is ``O((k + 1) n)`` domain visits, matching the
paper, versus ``O(n^2)`` for CDR-style pairwise transfer or PCGrad.
"""

from __future__ import annotations

from ..frameworks.base import LearningFramework, StateBank
from ..utils.seeding import spawn_rng
from .negotiation import domain_negotiation_epoch
from .param_space import DomainParameterSpace
from .regularization import domain_regularization_round
from .selection import BestTracker, PerDomainTracker, model_split_auc
from .trainer import make_inner_optimizer

__all__ = ["MAMDR"]


class MAMDR(LearningFramework):
    """The paper's unified framework.

    ``use_dn`` / ``use_dr`` ablate the two components (Table VI):

    * ``use_dn=False`` replaces DN with plain alternate training of θ_S;
    * ``use_dr=False`` drops the specific deltas entirely (serving uses
      θ_S for every domain).

    ``store`` selects the parameter backend: ``None`` keeps the dense
    per-domain layout (bitwise-identical to the historical behaviour); a
    ``DomainParamStore`` factory — e.g. ``lambda shared:
    ClusteredDomainStore(shared, plan)`` — gates the DN/DR outer loops by
    delta-sharing group instead of by domain, which is what makes
    10k-50k domains tractable.
    """

    def __init__(self, use_dn=True, use_dr=True, store=None):
        self.use_dn = use_dn
        self.use_dr = use_dr
        self.store = store

    @property
    def name(self):
        if self.use_dn and self.use_dr:
            return "MAMDR (DN+DR)"
        if self.use_dn:
            return "DN"
        if self.use_dr:
            return "DR"
        return "Alternate"

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "mamdr", dataset.name, self.use_dn, self.use_dr)
        space = DomainParameterSpace(model, dataset.n_domains,
                                     store=self.store)
        # DN/DR iterate the store's delta-sharing units: per domain for
        # the dense backend, per cluster (+ heads) for the clustered one.
        view, groups = space.training_plan(dataset)
        # With DR the deployment artifact is per-domain (Θ_i = θ_S + θ_i), so
        # each domain selects its best checkpoint independently, like the
        # other per-domain frameworks.  Without DR there is one shared state.
        per_domain_tracker = PerDomainTracker(dataset.n_domains)
        shared_tracker = BestTracker()
        shared_optimizer = make_inner_optimizer(model, config)

        for _ in range(config.epochs):
            shared = self._update_shared(
                model, view, space.shared, config, rng, shared_optimizer
            )
            space.set_shared(shared)

            if self.use_dr:
                for position, group in enumerate(groups):
                    delta = domain_regularization_round(
                        model, view, space, position, config, rng,
                        delta=space.group_delta(group),
                    )
                    space.apply_delta(group, delta)
                per_domain_tracker.update_from_space(model, dataset, space)
            else:
                model.load_state_dict(shared)
                shared_tracker.update(model_split_auc(model, dataset), shared)

        if self.use_dr:
            return StateBank(model, per_domain_tracker.best_states(),
                             default_state=space.shared)
        best_shared = shared_tracker.best
        model.load_state_dict(best_shared)
        return StateBank(
            model,
            {d: best_shared for d in range(dataset.n_domains)},
            default_state=best_shared,
        )

    def _update_shared(self, model, dataset, shared, config, rng, optimizer):
        if self.use_dn:
            # dn_rounds DN epochs: the β-damped outer step advances ~β of an
            # alternate epoch, so 1/β rounds keep data-movement parity.
            for _ in range(config.dn_rounds):
                shared = domain_negotiation_epoch(
                    model, dataset, shared, config, rng, optimizer=optimizer
                )
            return shared
        # Ablation: plain alternate training (β = 1, no outer loop).
        alternate_config = config.updated(outer_lr=1.0)
        return domain_negotiation_epoch(
            model, dataset, shared, alternate_config, rng, optimizer=optimizer
        )
