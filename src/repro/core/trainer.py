"""Low-level training helpers shared by all frameworks."""

from __future__ import annotations

from ..data.batching import iter_minibatches
from ..nn.compile import active_executor
from ..nn.optim import make_optimizer
from ..nn.sparse import SparseGrad
from ..utils import profiling

__all__ = ["train_steps", "make_inner_optimizer", "compute_loss_gradient"]


def train_steps(model, table, domain, optimizer, rng, batch_size, max_steps):
    """Run up to ``max_steps`` minibatch updates of ``model`` on one domain.

    Inside a :func:`repro.nn.compiled_execution` context, steps route
    through the model's :class:`~repro.nn.StepExecutor` — first occurrence
    of a batch signature traces eagerly, the rest replay the compiled tape.
    Otherwise the loop below is the plain eager step.

    Returns the mean training loss over the executed steps (0.0 when the
    table is empty).
    """
    executor = active_executor(model)
    total, steps = 0.0, 0
    for batch in iter_minibatches(table, domain, batch_size, rng=rng,
                                  max_batches=max_steps):
        start = profiling.tick()
        if executor is not None:
            loss_value = executor.step(batch, optimizer)
        else:
            # lint: allow[eager-inner-loop] — this IS the eager fallback.
            loss = model.loss(batch)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            loss_value = loss.item()
        profiling.tock("train.step", start)
        total += loss_value
        steps += 1
    return total / steps if steps else 0.0


def make_inner_optimizer(model, config):
    """Fresh inner-loop optimizer per the config (state starts clean)."""
    return make_optimizer(
        config.inner_optimizer, model.parameters(), config.inner_lr
    )


def compute_loss_gradient(model, batch):
    """Gradient of the batch loss as ``{name: ndarray}`` (used by PCGrad,
    Weighted Loss and the conflict probes)."""
    loss = model.loss(batch)
    model.zero_grad()
    loss.backward()
    grads = {}
    for name, param in model.named_parameters():
        if param.grad is not None:
            grad = param.grad
            # Callers (PCGrad, MLDG, conflict probes) do dense state algebra
            # on these, so materialize sparse embedding grads here.
            grads[name] = (
                # lint: allow[dense-grad-materialization] — sanctioned interop.
                grad.to_dense() if isinstance(grad, SparseGrad) else grad.copy()
            )
    return loss.item(), grads
