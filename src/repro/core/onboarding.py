"""Onboarding a new domain at serving time.

Section III-A: "A new domain can be easily added to the system by providing
the corresponding users/items.  The system would automatically increase
specific parameters for this new domain."  This module implements that
path: given a trained shared state θ_S and a dataset now containing the new
domain, it trains only the new domain's specific delta θ_new with Domain
Regularization — no retraining of θ_S or the existing domains.
"""

from __future__ import annotations

from ..frameworks.base import StateBank
from ..nn.state import clone_state
from ..utils.seeding import spawn_rng
from .config import TrainConfig
from .param_space import DomainParameterSpace
from .regularization import domain_regularization_round
from .selection import BestTracker, domain_split_auc

__all__ = ["onboard_domain", "extend_bank"]


def onboard_domain(model, dataset, shared_state, new_domain_index,
                   config=None, seed=0):
    """Train specific parameters for one new domain on a frozen θ_S.

    Parameters
    ----------
    model:
        A model skeleton compatible with ``shared_state`` (scratch space).
    dataset:
        The multi-domain dataset *including* the new domain — DR samples its
        helper domains from the existing ones.
    shared_state:
        The trained shared parameters θ_S (e.g. ``bank.default_state``).
    new_domain_index:
        Index of the new domain within ``dataset``.

    Returns the new domain's combined state ``Θ_new = θ_S + θ_new``, best
    validation checkpoint across DR epochs.
    """
    config = config or TrainConfig()
    rng = spawn_rng(seed, "onboard", dataset.name, new_domain_index)
    new_domain = dataset.domain(new_domain_index)

    space = DomainParameterSpace(model, dataset.n_domains)
    space.set_shared(shared_state)

    tracker = BestTracker()
    model.load_state_dict(shared_state)
    tracker.update(domain_split_auc(model, new_domain), clone_state(shared_state))

    for _ in range(config.epochs):
        delta = domain_regularization_round(
            model, dataset, space, new_domain_index, config, rng
        )
        space.set_delta(new_domain_index, delta)
        combined = space.combined(new_domain_index)
        model.load_state_dict(combined)
        tracker.update(domain_split_auc(model, new_domain), combined)

    return tracker.best


def extend_bank(bank, model, dataset, new_domain_index, config=None, seed=0):
    """Return a new :class:`StateBank` with the onboarded domain added."""
    if bank.default_state is None:
        raise ValueError("bank has no shared default state to onboard from")
    combined = onboard_domain(
        model, dataset, bank.default_state, new_domain_index,
        config=config, seed=seed,
    )
    states = dict(bank.domain_states)
    states[new_domain_index] = combined
    return StateBank(model, states, default_state=bank.default_state)
