"""Domain Regularization (Algorithm 2).

DR optimizes the domain-specific delta ``θ_i`` of a *target* domain with the
help of other domains' data.  One DR round for target domain ``i``:

1. sample ``k`` helper domains ``D~``;
2. for each helper ``j``: start from ``θ_i``, take inner steps on ``T_j``
   (Eq. 6), **then** on ``T_i`` (Eq. 7) — the order is fixed, which is what
   makes the Hessian term regularize ``g_j`` toward serving domain ``i``
   (Eq. 22) instead of a symmetric inner-product push;
3. move ``θ_i ← θ_i + γ (θ_i~ − θ_i)`` (Eq. 8).

Forward passes run through ``Θ = θ_S + θ_i`` with θ_S frozen: only the
delta moves, matching Figure 4(b).
"""

from __future__ import annotations

from ..frameworks.base import LearningFramework, StateBank
from ..nn.compile import compile_context
from ..nn.state import clone_state, state_add, state_interpolate_
from ..utils.seeding import spawn_rng
from .param_space import DomainParameterSpace
from .selection import PerDomainTracker
from .trainer import make_inner_optimizer, train_steps

__all__ = ["sample_helper_domains", "domain_regularization_round", "DomainRegularization"]


def sample_helper_domains(rng, n_domains, target, k):
    """Sample ``k`` helper domains (excluding the target when possible)."""
    others = [d for d in range(n_domains) if d != target]
    if not others or k == 0:
        return []
    if k >= len(others):
        return list(others)
    return list(rng.choice(others, size=k, replace=False))


def domain_regularization_round(model, dataset, space, target, config, rng,
                                split="train", delta=None):
    """Run one DR round for ``target`` and return the new delta θ_target.

    ``target`` indexes a domain of ``dataset`` — which may be a cluster
    *view* from ``space.training_plan``, in which case pass the group's
    trainable delta via ``delta`` (the default reads the per-domain
    delta, which is only correct when dataset domains and store domains
    coincide).
    """
    # Own the accumulator once, then apply every helper's Eq. 8 step in
    # place — k meta-steps, one state allocation.
    delta = clone_state(space.delta(target) if delta is None else delta)
    helpers = sample_helper_domains(rng, dataset.n_domains, target, config.sample_k)
    target_table = getattr(dataset.domain(target), split)

    with compile_context(config.compile_steps):
        for helper in helpers:
            # θ_i~ ← θ_i ; forward through θ_S + θ_i~ with a fresh inner
            # optimizer.
            model.load_state_dict(state_add(space.shared, delta))
            optimizer = make_inner_optimizer(model, config)

            helper_table = getattr(dataset.domain(helper), split)
            # Eq. 6: update on helper domain j ...
            train_steps(model, helper_table, helper, optimizer, rng,
                        config.batch_size, config.dr_steps)
            # Eq. 7: ... then on the target domain i as the regularizer.
            train_steps(model, target_table, target, optimizer, rng,
                        config.batch_size, config.dr_steps)

            # Eq. 8: θ_i ← θ_i + γ (θ_i~ − θ_i), where θ_i~ = state − θ_S.
            candidate = space.extract_delta(model)
            state_interpolate_(delta, candidate, config.dr_lr)

    return delta


class DomainRegularization(LearningFramework):
    """DR as a standalone framework (the "DR" / "w/o DN" variants).

    Shared parameters are trained with plain alternate training (no DN);
    each domain's specific delta is then trained with DR every epoch.
    """

    name = "DR"

    def __init__(self, store=None):
        self.store = store

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "dr", dataset.name)
        space = DomainParameterSpace(model, dataset.n_domains,
                                     store=self.store)
        view, groups = space.training_plan(dataset)
        tracker = PerDomainTracker(dataset.n_domains)
        optimizer = make_inner_optimizer(model, config)

        for _ in range(config.epochs):
            # Alternate training of the shared state (DN is ablated away).
            model.load_state_dict(space.shared)
            order = list(range(view.n_domains))
            rng.shuffle(order)
            for domain_index in order:
                domain = view.domain(domain_index)
                train_steps(model, domain.train, domain_index, optimizer, rng,
                            config.batch_size, config.inner_steps)
            space.set_shared(model.state_dict())

            for position, group in enumerate(groups):
                new_delta = domain_regularization_round(
                    model, view, space, position, config, rng,
                    delta=space.group_delta(group),
                )
                space.apply_delta(group, new_delta)

            tracker.update_from_space(model, dataset, space)

        return StateBank(model, tracker.best_states(),
                         default_state=space.shared)
