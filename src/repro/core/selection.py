"""Validation-based model selection.

Every learning framework trains for a fixed number of epochs and keeps the
snapshot with the best mean validation AUC — the standard protocol for CTR
experiments (and the only way fixed-budget comparisons between frameworks
with different convergence speeds are meaningful).
"""

from __future__ import annotations

import math

from ..data.batching import full_batch
from ..metrics.auc import auc_score
from ..nn.state import clone_state

__all__ = [
    "BestTracker",
    "PerDomainTracker",
    "model_split_auc",
    "domain_split_auc",
    "space_split_auc",
    "finetune_with_selection",
]


class BestTracker:
    """Keeps the best-scoring snapshot seen so far."""

    def __init__(self):
        self.best_score = -math.inf
        self.best = None

    def update(self, score, snapshot, clone=True):
        """Record ``snapshot`` if ``score`` improves on the best so far.

        ``snapshot`` may be a state dict or any structure of state dicts; it
        is deep-copied through :func:`clone_state` where applicable.  Pass
        ``clone=False`` when the caller already owns a frozen copy (e.g. one
        clone shared by a whole delta-sharing group).
        """
        if score > self.best_score:
            self.best_score = score
            self.best = _deep_clone(snapshot) if clone else snapshot
            return True
        return False

    @property
    def has_best(self):
        return self.best is not None


def _deep_clone(snapshot):
    if isinstance(snapshot, dict):
        first = next(iter(snapshot.values()), None)
        if isinstance(first, dict):
            return {key: _deep_clone(value) for key, value in snapshot.items()}
        return clone_state(snapshot)
    if isinstance(snapshot, tuple):
        return tuple(_deep_clone(part) for part in snapshot)
    raise TypeError(f"cannot snapshot {type(snapshot).__name__}")


def domain_split_auc(model, domain, split="val"):
    """AUC of ``model`` on one domain's split."""
    table = getattr(domain, split)
    batch = full_batch(table, domain.index)
    return auc_score(table.labels, model.predict(batch))


def model_split_auc(model, dataset, split="val"):
    """Mean per-domain AUC of a single model over a dataset split."""
    total = 0.0
    for domain in dataset:
        total += domain_split_auc(model, domain, split)
    return total / dataset.n_domains


def space_split_auc(model, dataset, space, split="val"):
    """Mean per-domain AUC of a shared+specific parameter space.

    Each domain is scored with its combined parameters ``Θ_i = θ_S + θ_i``;
    materialization is gated by the space's delta-sharing groups (one
    ``load_combined`` per group, not per domain).
    """
    total = 0.0
    for group in space.groups():
        space.load_combined(model, group.representative)
        for domain_index in group.domains:
            total += domain_split_auc(model, dataset.domain(domain_index),
                                      split)
    return total / dataset.n_domains


class PerDomainTracker:
    """Per-domain best-snapshot selection for shared+specific frameworks.

    Frameworks that deploy one artifact per domain (DR, MAMDR — like
    Finetune, Separate and MAML) select each domain's best checkpoint on
    that domain's validation split independently.
    """

    def __init__(self, n_domains):
        self.trackers = {d: BestTracker() for d in range(n_domains)}

    def update_from_space(self, model, dataset, space, split="val"):
        """Score every domain's combined state this epoch and keep bests.

        Gated by the space's delta-sharing groups: one materialization per
        group, and at most one defensive clone per group shared by every
        member whose score improved (a 10k-tail cluster that improves does
        not cost 10k state copies).
        """
        for group in space.groups():
            combined = space.combined(group.representative)
            model.load_state_dict(combined)
            group_clone = None
            for domain_index in group.domains:
                domain = dataset.domain(domain_index)
                score = domain_split_auc(model, domain, split)
                tracker = self.trackers[domain_index]
                if score > tracker.best_score:
                    if group_clone is None:
                        group_clone = clone_state(combined)
                    tracker.update(score, group_clone, clone=False)

    def best_states(self):
        """``{domain: best combined state}`` for a StateBank."""
        return {d: t.best for d, t in self.trackers.items() if t.has_best}


def finetune_with_selection(model, domain, optimizer, rng, batch_size,
                            max_steps, eval_every=3, table=None):
    """Finetune on one domain, returning the state with best val AUC.

    Used by Alternate+Finetune, Separate and MAML deployment adaptation so
    per-domain specialization does not silently overfit sparse domains.
    """
    from ..data.batching import iter_minibatches

    train_table = table if table is not None else domain.train
    tracker = BestTracker()
    tracker.update(domain_split_auc(model, domain), model.state_dict())
    step = 0
    for batch in iter_minibatches(train_table, domain.index, batch_size,
                                  rng=rng, max_batches=max_steps):
        # lint: allow[eager-inner-loop] — per-round fine-tune probe, eager by design.
        loss = model.loss(batch)
        model.zero_grad()
        loss.backward()
        optimizer.step()
        step += 1
        if step % eval_every == 0 or step == max_steps:
            tracker.update(domain_split_auc(model, domain), model.state_dict())
    return tracker.best
