"""Domain Negotiation (Algorithm 1).

DN mitigates domain conflict on shared parameters.  One DN epoch:

1. ``Θ~_1 ← Θ`` — start the inner trajectory at the current shared state;
2. visit every domain once *in a freshly shuffled order*, taking a few
   gradient steps on each (Eq. 2);
3. treat ``Θ~_{n+1} − Θ`` as the outer gradient and move
   ``Θ ← Θ + β (Θ~_{n+1} − Θ)`` (Eq. 3).

The Taylor analysis in Section IV-C shows the expected update both descends
every domain's loss and ascends the pairwise gradient inner-products
(InnerGrad) — *because* the order is reshuffled each epoch and β < 1.  With
``β = 1`` DN degenerates to Alternate Training (tested explicitly).
"""

from __future__ import annotations

from ..frameworks.base import LearningFramework, SingleModelBank
from ..nn.compile import compile_context
from ..nn.state import clone_state, state_interpolate_
from ..utils.seeding import spawn_rng
from .param_space import live_state_view
from .selection import BestTracker, model_split_auc
from .trainer import make_inner_optimizer, train_steps

__all__ = ["domain_negotiation_epoch", "DomainNegotiation"]


def domain_negotiation_epoch(model, dataset, shared_state, config, rng,
                             split="train", optimizer=None):
    """Run one DN epoch and return the new shared state.

    ``model`` is used as a scratch workspace; its parameters are left at the
    end of the *inner* trajectory (callers needing Θ must reload it).

    ``optimizer`` may be supplied to keep inner-optimizer slot state (Adam
    moments etc.) across epochs, as the PS-Worker deployment does; when
    omitted a fresh optimizer is created (the textbook Algorithm 1 reading).
    """
    model.load_state_dict(shared_state)
    if optimizer is None:
        optimizer = make_inner_optimizer(model, config)

    domain_order = list(range(dataset.n_domains))
    rng.shuffle(domain_order)
    with compile_context(config.compile_steps):
        for domain_index in domain_order:
            domain = dataset.domain(domain_index)
            train_steps(
                model,
                getattr(domain, split),
                domain_index,
                optimizer,
                rng,
                config.batch_size,
                config.inner_steps,
            )

    # Eq. 3 without materializing model.state_dict(): interpolate the owned
    # clone toward a zero-copy view of the live parameters (one full-state
    # allocation per DN epoch instead of two).
    current = live_state_view(model)
    return state_interpolate_(clone_state(shared_state), current, config.outer_lr)


class DomainNegotiation(LearningFramework):
    """DN as a standalone framework (the "DN" rows of Tables VIII and X).

    Trains a single shared parameter set with Domain Negotiation; no
    domain-specific parameters are kept (that is MAMDR's job).
    """

    name = "DN"

    def fit(self, model, dataset, config, seed=0):
        rng = spawn_rng(seed, "dn", dataset.name)
        shared = model.state_dict()
        tracker = BestTracker()
        optimizer = make_inner_optimizer(model, config)
        for _ in range(config.epochs):
            for _ in range(config.dn_rounds):
                shared = domain_negotiation_epoch(
                    model, dataset, shared, config, rng, optimizer=optimizer
                )
            model.load_state_dict(shared)
            tracker.update(model_split_auc(model, dataset), shared)
        model.load_state_dict(tracker.best)
        return SingleModelBank(model)
