"""``repro.online`` — the continual-learning pipeline (Section IV-E).

Streaming ingestion with seeded concept drift, incremental DN/DR updates
warm-started from published snapshots, a validation gate with automatic
rollback + quarantine, and drift monitoring:

    stream → trainer → gate/publisher → snapshot store → serving

See ``python -m repro.cli online-sim`` for the end-to-end demo and
DESIGN.md §11 for the architecture.
"""

from .drift import DriftMonitor, population_stability_index
from .gate import DomainVerdict, GateConfig, GateDecision, ValidationGate
from .publisher import GatedPublisher, PublishResult, QuarantineRecord
from .sim import (
    OnlineSimConfig,
    build_sim_config,
    render_online_sim,
    run_online_sim,
    write_bench_record,
)
from .stream import EventStream, StreamConfig, StreamWindow
from .trainer import (
    IncrementalTrainer,
    OnlineUpdate,
    ReplayBuffer,
    space_from_snapshot,
)

__all__ = [
    "DriftMonitor",
    "population_stability_index",
    "GateConfig",
    "GateDecision",
    "DomainVerdict",
    "ValidationGate",
    "GatedPublisher",
    "PublishResult",
    "QuarantineRecord",
    "OnlineSimConfig",
    "build_sim_config",
    "run_online_sim",
    "render_online_sim",
    "write_bench_record",
    "EventStream",
    "StreamConfig",
    "StreamWindow",
    "IncrementalTrainer",
    "OnlineUpdate",
    "ReplayBuffer",
    "space_from_snapshot",
]
