"""End-to-end continual-learning simulation: stream → train → gate → serve.

``run_online_sim`` drives the full Section IV-E loop on the drifted
synthetic stream:

1. **bootstrap** — ingest a few windows, run the first incremental
   updates, publish version 1 (calibration-gated only: there is no
   baseline yet) and freeze a copy as the "day-0" model;
2. per subsequent window: **prequential evaluation** (score the currently
   served snapshot *and* the frozen day-0 model on the unseen window —
   test-then-train, so every AUC is honest), drift monitoring, ingestion,
   one incremental DN/DR update, and a gated publication;
3. one window's candidate is deliberately **corrupted** (seeded parameter
   noise) to exercise the reject → rollback → quarantine path — the gate
   must catch it and serving must keep answering from the last good
   version;
4. a final **parity audit**: the serving tier's answers must be
   bit-identical to an offline model loaded via the parameter space's
   ``load_combined`` states.

The incremental-vs-frozen AUC gap over the drifting tail is the payoff
metric: it quantifies how much continual retraining buys once the world
has rotated away from day 0.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field, fields, replace

import numpy as np

from ..core import TrainConfig
from ..metrics.auc import auc_score
from ..models import build_model
from ..serving.service import ServingService
from ..serving.snapshots import SnapshotStore
from ..train.session import ConfigError, _coerce
from ..utils import profiling
from ..utils.seeding import spawn_rng
from .drift import DriftMonitor
from .gate import GateConfig, ValidationGate
from .publisher import GatedPublisher
from .stream import EventStream, StreamConfig
from .trainer import IncrementalTrainer

__all__ = ["OnlineSimConfig", "build_sim_config", "run_online_sim",
           "render_online_sim", "write_bench_record", "DEFAULT_BENCH_PATH"]

DEFAULT_BENCH_PATH = "BENCH_online.json"


def _online_train_config():
    """Compact DN/DR schedule for micro-epoch updates.

    An incremental update sees ~10^2-10^3 events, not a full offline
    corpus; a couple of DN rounds with a few minibatch steps per domain
    visit keeps update latency in the hundreds of milliseconds while
    still moving θ_S/θ_i meaningfully each window.
    """
    return TrainConfig(
        epochs=1, batch_size=96, inner_steps=3, dn_rounds=2,
        sample_k=2, dr_steps=2,
    )


@dataclass(frozen=True)
class OnlineSimConfig:
    """Everything the online simulation needs, JSON-friendly."""

    stream: StreamConfig = field(default_factory=StreamConfig)
    gate: GateConfig = field(default_factory=GateConfig)
    train: TrainConfig = field(default_factory=_online_train_config)
    model: str = "mlp"
    model_kwargs: dict = field(default_factory=dict)
    backend: str = "local"          # "local" | "cluster"
    n_workers: int = 2
    bootstrap_windows: int = 2      # windows ingested before version 1
    bootstrap_updates: int = 2      # updates before the first publication
    replay_capacity: int = 1600
    holdout_frac: float = 0.25
    holdout_capacity: int = 200
    keep_versions: int = 3
    inject_regression_at: int | None = 5   # window whose candidate is corrupted
    regression_scale: float = 3.0
    parity_samples: int = 64
    seed: int = 0

    def __post_init__(self):
        if isinstance(self.stream, dict):
            object.__setattr__(
                self, "stream", _coerce(StreamConfig, self.stream, "stream")
            )
        if isinstance(self.gate, dict):
            object.__setattr__(
                self, "gate", _coerce(GateConfig, self.gate, "gate")
            )
        if isinstance(self.train, dict):
            object.__setattr__(
                self, "train", _coerce(TrainConfig, self.train, "train")
            )
        if not 1 <= self.bootstrap_windows < self.stream.n_windows:
            raise ConfigError(
                "bootstrap_windows must leave at least one stream window "
                "for incremental updates"
            )
        if self.bootstrap_updates < 1:
            raise ConfigError("need at least one bootstrap update")
        if self.inject_regression_at is not None and not (
            self.bootstrap_windows
            <= self.inject_regression_at
            < self.stream.n_windows - 1
        ):
            raise ConfigError(
                "inject_regression_at must name a post-bootstrap window "
                "before the final one (the last publication must be clean "
                "for the serving parity audit)"
            )

    def updated(self, **changes):
        return replace(self, **changes)


def build_sim_config(session_config):
    """Derive an :class:`OnlineSimConfig` from a ``SessionConfig``.

    The session's ``online`` dict section overrides any field here;
    ``seed`` and ``train`` default to the session's own.  Unknown keys
    raise :class:`~repro.train.ConfigError` (same contract as the
    session itself).
    """
    data = dict(session_config.online or {})
    known = {f.name for f in fields(OnlineSimConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown online config keys: {sorted(unknown)}"
        )
    data.setdefault("seed", session_config.seed)
    data.setdefault("train", session_config.train)
    data.setdefault("model", session_config.model)
    data.setdefault("model_kwargs", dict(session_config.model_kwargs))
    return OnlineSimConfig(**data)


def _domain_aucs(model, snapshot, window, tables):
    """Mean per-domain AUC of ``snapshot`` on a window's two-class tables."""
    from ..data.batching import full_batch

    aucs = {}
    for domain, table in tables.items():
        model.load_state_dict(snapshot.state_for(domain))
        scores = model.predict(full_batch(table, domain))
        aucs[domain] = float(auc_score(table.labels, scores))
    return aucs


def _two_class_tables(window):
    return {
        domain: table
        for domain, (table, _times) in window.per_domain().items()
        if len(np.unique(table.labels)) == 2
    }


def _corrupt_states(states, seed, key, scale):
    """A deliberately broken candidate (simulates a corrupted artifact)."""
    rng = spawn_rng(seed, "online", "inject", key)
    return {
        domain: {
            name: value + rng.normal(0.0, scale, size=value.shape)
            for name, value in state.items()
        }
        for domain, state in states.items()
    }


def run_online_sim(config=None, verbose=False, log=None):
    """Run the continual pipeline end to end; returns a results dict."""
    config = config or OnlineSimConfig()
    if log is None:
        log = print if verbose else (lambda _msg: None)
    stream = EventStream(config.stream)
    skeleton = stream.skeleton_dataset()
    n_domains = config.stream.n_domains

    def make_model():
        return build_model(config.model, skeleton, seed=config.seed,
                           **dict(config.model_kwargs))

    model = make_model()
    probe = make_model()      # gate scoring + offline evaluation skeleton
    serve_model = make_model()
    trainer = IncrementalTrainer(
        model, n_domains, config.train,
        backend=config.backend,
        replica_factory=make_model if config.backend == "cluster" else None,
        n_workers=config.n_workers,
        replay_capacity=config.replay_capacity,
        holdout_frac=config.holdout_frac,
        holdout_capacity=config.holdout_capacity,
        dataset_name=config.stream.name,
        n_users=config.stream.n_users,
        n_items=config.stream.n_items,
        seed=config.seed,
    )
    store = SnapshotStore(keep=config.keep_versions)
    publisher = GatedPublisher(store, ValidationGate(probe, config.gate))
    monitor = DriftMonitor(config.stream.n_items, seed=config.seed)
    service = ServingService(serve_model, store=store)

    ingest_seconds = 0.0
    update_seconds = []

    with profiling.profile() as prof:
        # ---- bootstrap -------------------------------------------------
        tick = time.perf_counter()
        for index in range(config.bootstrap_windows):
            window = stream.window(index)
            monitor.observe(window)
            trainer.ingest(window)
        ingest_seconds += time.perf_counter() - tick
        for round_index in range(config.bootstrap_updates):
            tick = time.perf_counter()
            update = trainer.update(key=("bootstrap", round_index))
            update_seconds.append(time.perf_counter() - tick)
        result = publisher.publish(
            update.states, update.default_state, trainer.holdouts,
            key=config.bootstrap_windows - 1,
            metadata={"watermark": trainer.last_watermark},
        )
        frozen = store.current()          # the day-0 model, by reference
        parity_states = update.states
        served_key = config.bootstrap_windows - 1
        log(f"bootstrap: published v{result.version} "
            f"(mean AUC {result.decision.mean_auc:.4f})")

        # ---- steady state ---------------------------------------------
        window_records = []
        staleness = []
        for index in range(config.bootstrap_windows, config.stream.n_windows):
            window = stream.window(index)
            # Prequential: score before training ever sees this window.
            tables = _two_class_tables(window)
            current = store.current()
            incremental = _domain_aucs(probe, current, window, tables)
            day0 = _domain_aucs(probe, frozen, window, tables)
            staleness.append(index - 1 - served_key)
            drift_record = monitor.observe(window)

            tick = time.perf_counter()
            trainer.ingest(window)
            ingest_seconds += time.perf_counter() - tick
            tick = time.perf_counter()
            update = trainer.update(key=index)
            update_seconds.append(time.perf_counter() - tick)

            candidate = update.states
            injected = index == config.inject_regression_at
            if injected:
                candidate = _corrupt_states(
                    candidate, config.seed, index, config.regression_scale
                )
            result = publisher.publish(
                candidate, update.default_state, trainer.holdouts,
                key=index, metadata={"watermark": trainer.last_watermark},
            )
            if result.accepted:
                served_key = index
                parity_states = update.states
            probe.load_state_dict(trainer.space.shared)
            conflict = monitor.conflict(probe, update.dataset, key=index)
            window_records.append({
                "window": index,
                "drift": window.drift,
                "watermark": window.watermark,
                "incremental_auc": float(np.mean(list(incremental.values()))),
                "frozen_auc": float(np.mean(list(day0.values()))),
                "incremental_auc_by_domain": incremental,
                "frozen_auc_by_domain": day0,
                "injected_regression": injected,
                "accepted": result.accepted,
                "served_version": result.served_version,
                "conflict_rate": conflict["conflict_rate"],
                "max_item_psi": max(
                    entry["item_psi"]
                    for entry in drift_record["domains"].values()
                ),
            })
            log(
                f"window {index}: drift={window.drift:.2f} "
                f"auc inc={window_records[-1]['incremental_auc']:.4f} "
                f"frozen={window_records[-1]['frozen_auc']:.4f} "
                + ("REJECTED (rolled back "
                   f"to v{result.served_version})" if not result.accepted
                   else f"published v{result.version}")
            )

        # ---- serving parity audit --------------------------------------
        parity = _parity_audit(
            service, probe, stream, parity_states, config
        )

    total_events = config.stream.n_windows * config.stream.window_events
    update_stats = prof.ops.get("online.update")
    post = [r for r in window_records
            if r["window"] >= config.stream.n_windows // 2]
    results = {
        "settings": {
            "seed": config.seed,
            "backend": config.backend,
            "n_windows": config.stream.n_windows,
            "window_events": config.stream.window_events,
            "n_domains": n_domains,
            "drift_rate": config.stream.drift_rate,
            "inject_regression_at": config.inject_regression_at,
        },
        "events": {
            "total": total_events,
            "ingest_seconds": ingest_seconds,
            "events_per_sec": (
                total_events / ingest_seconds if ingest_seconds > 0
                else float("inf")
            ),
        },
        "update_latency": {
            "count": len(update_seconds),
            "mean_s": float(np.mean(update_seconds)),
            "p95_s": profiling.percentile(update_seconds, 0.95),
            "profiled_mean_s": (
                update_stats.mean_seconds if update_stats else None
            ),
        },
        "staleness": {
            "mean_windows": float(np.mean(staleness)) if staleness else 0.0,
            "max_windows": int(max(staleness)) if staleness else 0,
        },
        "publications": {
            "accepted": len(publisher.accepted_versions),
            "accepted_versions": list(publisher.accepted_versions),
            "rejected": len(publisher.quarantine),
            "quarantine": [q.as_dict() for q in publisher.quarantine],
            "served_version": store.version,
        },
        "auc_over_time": window_records,
        "post_drift_auc": {
            "incremental": float(np.mean(
                [r["incremental_auc"] for r in post]
            )),
            "frozen": float(np.mean([r["frozen_auc"] for r in post])),
        },
        "drift": monitor.history,
        "parity": parity,
        "profile": prof.as_dict(),
    }
    results["post_drift_auc"]["gain"] = (
        results["post_drift_auc"]["incremental"]
        - results["post_drift_auc"]["frozen"]
    )
    return results


def _parity_audit(service, probe, stream, parity_states, config):
    """Serving answers must be bit-identical to the offline forward."""
    from ..data.batching import Batch

    rng = spawn_rng(config.seed, "online", "parity")
    exact = True
    max_abs_diff = 0.0
    for domain in sorted(parity_states):
        users = rng.choice(stream.user_pools[domain],
                           size=config.parity_samples)
        items = rng.choice(stream.item_pools[domain],
                           size=config.parity_samples)
        served = service.predict_batch(users, items, domain)
        probe.load_state_dict(parity_states[domain])
        offline = probe.predict(
            Batch(users, items, np.zeros(len(users)), domain)
        )
        exact = exact and bool(np.array_equal(served, offline))
        max_abs_diff = max(
            max_abs_diff, float(np.abs(served - offline).max())
        )
    return {
        "exact": exact,
        "max_abs_diff": max_abs_diff,
        "served_version": service.store.version,
        "n_requests": config.parity_samples * len(parity_states),
    }


def render_online_sim(results):
    """Human-readable summary of an online-sim run."""
    from ..utils.tables import format_table

    rows = [
        [
            str(r["window"]),
            f"{r['drift']:.2f}",
            f"{r['incremental_auc']:.4f}",
            f"{r['frozen_auc']:.4f}",
            f"{r['max_item_psi']:.3f}",
            f"{r['conflict_rate']:.2f}",
            ("rejected" if not r["accepted"]
             else f"v{r['served_version']}"),
        ]
        for r in results["auc_over_time"]
    ]
    table = format_table(
        ["Window", "Drift", "AUC (incr)", "AUC (day-0)", "Item PSI",
         "Conflict", "Published"],
        rows, title="Online continual-learning simulation",
    )
    pubs = results["publications"]
    post = results["post_drift_auc"]
    lines = [
        table,
        "",
        f"events: {results['events']['total']} "
        f"({results['events']['events_per_sec']:.0f}/s ingested)",
        f"updates: {results['update_latency']['count']} "
        f"(mean {results['update_latency']['mean_s'] * 1e3:.0f} ms, "
        f"p95 {results['update_latency']['p95_s'] * 1e3:.0f} ms)",
        f"publications: {pubs['accepted']} accepted "
        f"{pubs['rejected']} rejected; serving v{pubs['served_version']}",
        f"staleness: mean {results['staleness']['mean_windows']:.1f} "
        f"windows (max {results['staleness']['max_windows']})",
        f"post-drift AUC: incremental {post['incremental']:.4f} vs "
        f"day-0 {post['frozen']:.4f} (gain {post['gain']:+.4f})",
        "serving parity: "
        + ("bit-exact with offline load_combined"
           if results["parity"]["exact"]
           else f"MISMATCH (max |Δ| {results['parity']['max_abs_diff']:.2e})"),
    ]
    return "\n".join(lines)


def write_bench_record(results, path=DEFAULT_BENCH_PATH):
    """Merge an online-sim record into the benchmark journal at ``path``."""
    path = pathlib.Path(path)
    payload = {"benchmarks": {}}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {"benchmarks": {}}
    bench = payload.setdefault("benchmarks", {})
    bench["online_sim"] = {
        "settings": results["settings"],
        "events_per_sec": results["events"]["events_per_sec"],
        "update_latency_mean_s": results["update_latency"]["mean_s"],
        "update_latency_p95_s": results["update_latency"]["p95_s"],
        "staleness_mean_windows": results["staleness"]["mean_windows"],
        "publications_accepted": results["publications"]["accepted"],
        "publications_rejected": results["publications"]["rejected"],
        "served_version": results["publications"]["served_version"],
        "post_drift_auc_incremental":
            results["post_drift_auc"]["incremental"],
        "post_drift_auc_frozen": results["post_drift_auc"]["frozen"],
        "post_drift_auc_gain": results["post_drift_auc"]["gain"],
        "parity_exact": results["parity"]["exact"],
        "auc_over_time": [
            {
                "window": r["window"],
                "drift": r["drift"],
                "incremental_auc": r["incremental_auc"],
                "frozen_auc": r["frozen_auc"],
                "accepted": r["accepted"],
            }
            for r in results["auc_over_time"]
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
