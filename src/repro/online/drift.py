"""Drift monitoring: population stability and gradient conflict over time.

Serving health in a continual pipeline hinges on noticing *when* the
world moved, not just reacting after AUC collapses.  Two complementary
signals are tracked per stream window and emitted through
:mod:`repro.utils.profiling` (so any active profile — the online-sim
bench, the chaos harness — collects them for free):

* **Population stability index** (PSI), the standard industry drift
  score: ``PSI = Σ (p_cur - p_ref) ln(p_cur / p_ref)`` over a binned
  distribution.  The monitor tracks it per domain for the *item* traffic
  distribution (which items get impressions — shifts under popularity
  drift and rate skew) and for the realized label rate.  Common reading:
  < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 major shift.
* **Gradient conflict** (Section III-B of the paper): the fraction of
  domain pairs whose loss gradients point against each other at the
  current shared parameters, via :mod:`repro.analysis.conflict`.  Under
  concept drift the domains' optima move apart, so a rising conflict
  rate is an early-warning signal that one shared update can no longer
  serve all domains — exactly the regime MAMDR's DN/DR targets.

The monitor is reference-based: the first observed window (day 0)
freezes the reference histograms, and every later window is scored
against them.
"""

from __future__ import annotations

import numpy as np

from ..analysis.conflict import conflict_report
from ..utils import profiling
from ..utils.seeding import spawn_rng

__all__ = ["population_stability_index", "DriftMonitor"]


def population_stability_index(reference, current, eps=1e-4):
    """PSI between two aligned probability vectors (same binning).

    Both inputs are clamped away from zero and renormalized, so empty
    bins contribute a large-but-finite score instead of ``inf``.
    """
    reference = np.asarray(reference, dtype=np.float64)
    current = np.asarray(current, dtype=np.float64)
    if reference.shape != current.shape:
        raise ValueError("PSI needs aligned distributions")
    if reference.sum() <= 0 or current.sum() <= 0:
        raise ValueError("PSI needs non-empty distributions")
    reference = np.maximum(reference / reference.sum(), eps)
    reference = reference / reference.sum()
    current = np.maximum(current / current.sum(), eps)
    current = current / current.sum()
    return float(((current - reference) * np.log(current / reference)).sum())


def _item_histogram(items, n_items, n_bins):
    """Impression counts folded into ``n_bins`` fixed item buckets.

    Laplace-smoothed (+0.5 per bucket) so a bucket empty in one window
    but hot in another contributes a large-but-bounded PSI term instead
    of being dominated by the epsilon clamp.
    """
    bins = np.minimum(items * n_bins // n_items, n_bins - 1)
    return np.bincount(bins, minlength=n_bins).astype(np.float64) + 0.5


class DriftMonitor:
    """Per-domain drift scores for a stream of windows.

    Parameters
    ----------
    n_items:
        Size of the item universe (fixes the PSI binning).
    n_bins:
        Item-histogram resolution; 10 smoothed buckets keeps the
        same-distribution noise floor (≈ 2·bins/samples) well below the
        drift signal at micro-epoch sample sizes.
    seed:
        Drives the conflict probe's batch sampling (namespaced per call).
    """

    def __init__(self, n_items, n_bins=10, seed=0):
        self.n_items = n_items
        self.n_bins = n_bins
        self.seed = seed
        self.reference = None      # {domain: item histogram}
        self.reference_ctr = None  # {domain: label rate}
        self.history = []

    def observe(self, window):
        """Score one window against the day-0 reference; returns a record.

        The first window observed becomes the reference and scores 0 PSI
        by construction.
        """
        histograms = {}
        ctrs = {}
        for domain, (table, _times) in window.per_domain().items():
            histograms[domain] = _item_histogram(
                table.items, self.n_items, self.n_bins
            )
            ctrs[domain] = float(table.labels.mean())
        if self.reference is None:
            self.reference = histograms
            self.reference_ctr = ctrs
        record = {"window": window.index, "watermark": window.watermark,
                  "domains": {}}
        for domain, histogram in histograms.items():
            reference = self.reference.get(domain)
            if reference is None:   # domain first seen after day 0
                self.reference[domain] = histogram
                self.reference_ctr[domain] = ctrs[domain]
                reference = histogram
            psi = population_stability_index(reference, histogram)
            ctr_shift = ctrs[domain] - self.reference_ctr[domain]
            record["domains"][domain] = {
                "item_psi": psi,
                "ctr": ctrs[domain],
                "ctr_shift": ctr_shift,
            }
            profiling.observe(f"online.psi.domain{domain}", psi)
            profiling.observe(f"online.ctr_shift.domain{domain}", ctr_shift)
        self.history.append(record)
        return record

    def conflict(self, model, dataset, key, batch_size=256):
        """Gradient-conflict probe at the current shared parameters.

        ``dataset`` is the trainer's current window dataset (replay
        buffers as train splits); ``key`` namespaces the probe's batch
        sampling so monitoring never perturbs training RNG streams.
        """
        rng = spawn_rng(self.seed, "online", "conflict", key)
        report = conflict_report(model, dataset, rng, batch_size=batch_size)
        profiling.observe("online.conflict_rate", report["conflict_rate"])
        profiling.observe("online.mean_cosine", report["mean_cosine"])
        if self.history:
            self.history[-1]["conflict"] = report
        return report
