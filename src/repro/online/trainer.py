"""Incremental MAMDR updates over stream windows.

The :class:`IncrementalTrainer` owns a live
:class:`~repro.core.param_space.DomainParameterSpace` and advances it one
micro-epoch at a time: warm-start θ_S/θ_i from the latest published
snapshot, ingest a new window, run DN on the shared parameters and DR on
every domain's delta, and hand the resulting candidate states
``Θ_i = θ_S + θ_i`` to the publication gate.

Two ingredients fight the failure modes of naive online fine-tuning:

* a **sliding replay buffer** per domain — each update trains on the last
  ``replay_capacity`` interactions, not just the newest window, so sparse
  domains (a handful of events per micro-epoch) do not catastrophically
  forget what little they know;
* a **temporal holdout** — the most recent slice of each window, split
  off by watermark through :func:`repro.data.splits.temporal_split`, is
  *never* trained on and becomes the gate's held-out recent window.

The shared-parameter update runs either in-process (``backend="local"``,
the framework path) or on the fault-tolerant PS-Worker runtime
(``backend="cluster"``, the Section IV-E path); DR always runs driver-side
on the live space, mirroring :class:`~repro.distributed.cluster.
SimulatedCluster`'s own DR placement.

An update is a pure function of ``(space, window dataset, update key)`` —
``update(key)`` derives its RNG from ``spawn_rng(seed, "online",
"update", key)`` and builds a fresh inner optimizer, so an incremental
step from a snapshot is byte-identical to the same step taken offline on
the same data (the warm-start parity test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.negotiation import domain_negotiation_epoch
from ..core.param_space import DomainParameterSpace
from ..core.regularization import domain_regularization_round
from ..core.trainer import make_inner_optimizer
from ..data.schema import Domain, InteractionTable, MultiDomainDataset
from ..data.splits import temporal_split
from ..nn.state import clone_state, state_sub
from ..utils import profiling
from ..utils.seeding import spawn_rng, stable_seed

__all__ = ["ReplayBuffer", "IncrementalTrainer", "OnlineUpdate",
           "space_from_snapshot"]


class ReplayBuffer:
    """Per-domain sliding window over the most recent interactions.

    Rows arrive in event order and the buffer keeps the newest
    ``capacity`` per domain — a deterministic sliding window, not a
    sampled reservoir, so replays are exactly reproducible.
    """

    def __init__(self, capacity=1200):
        if capacity < 1:
            raise ValueError("replay capacity must be positive")
        self.capacity = capacity
        self._tables = {}

    def extend(self, domain, table):
        """Append ``table``'s rows (already time-ordered) for ``domain``."""
        domain = int(domain)
        existing = self._tables.get(domain)
        merged = (
            table if existing is None
            else InteractionTable.concatenate([existing, table])
        )
        if len(merged) > self.capacity:
            merged = merged.subset(
                np.arange(len(merged) - self.capacity, len(merged))
            )
        self._tables[domain] = merged
        return merged

    def table(self, domain):
        table = self._tables.get(int(domain))
        if table is None:
            raise KeyError(f"no replay data for domain {domain}")
        return table

    def domains(self):
        return sorted(self._tables)

    def size(self, domain):
        table = self._tables.get(int(domain))
        return 0 if table is None else len(table)


def space_from_snapshot(model, snapshot):
    """Rebuild a :class:`DomainParameterSpace` from a published snapshot.

    ``θ_S`` is the snapshot's default state and each ``θ_i`` is recovered
    as ``Θ_i − θ_S``, so ``space.combined(i)`` reproduces the served
    states exactly (the subtraction-then-addition round-trips bitwise for
    the zero-delta entries and is exact for entries published as
    ``θ_S + θ_i`` from float64 states).  Domains published with a shared
    state object (a clustered space's tail) compute the subtraction once.
    """
    if snapshot.default_state is None:
        raise ValueError(
            "snapshot has no default (shared) state to warm-start from"
        )
    space = DomainParameterSpace(model, n_domains=len(snapshot.states))
    space.set_shared(snapshot.default_state)
    memo = {}
    for domain in snapshot.domains:
        state = snapshot.state_for(domain)
        delta = memo.get(id(state))
        if delta is None:
            delta = state_sub(state, snapshot.default_state)
            memo[id(state)] = delta
        space.set_delta(domain, delta)
    return space


@dataclass(frozen=True)
class OnlineUpdate:
    """The result of one incremental update."""

    key: object
    dataset: object
    states: dict          # {domain: Θ_i} candidate serving states
    default_state: dict   # θ_S after the update (cloned)

    @property
    def domains(self):
        return sorted(self.states)


class IncrementalTrainer:
    """Advances a MAMDR parameter space one stream window at a time."""

    def __init__(self, model, n_domains, config, *, backend="local",
                 replica_factory=None, n_workers=2, replay_capacity=1200,
                 holdout_frac=0.25, holdout_capacity=200,
                 dataset_name="online", n_users=None, n_items=None, seed=0,
                 store=None):
        if backend not in ("local", "cluster"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "cluster" and replica_factory is None:
            raise ValueError(
                "backend='cluster' needs replica_factory to build per-worker "
                "model replicas"
            )
        if not 0.0 < holdout_frac < 1.0:
            raise ValueError("holdout_frac must be in (0, 1)")
        self.model = model
        self.n_domains = n_domains
        self.config = config
        self.backend = backend
        self.replica_factory = replica_factory
        self.n_workers = n_workers
        self.holdout_frac = holdout_frac
        self.holdout_buffer = ReplayBuffer(holdout_capacity)
        self.dataset_name = dataset_name
        self.n_users = n_users
        self.n_items = n_items
        self.seed = seed
        self.space = DomainParameterSpace(model, n_domains, store=store)
        self.replay = ReplayBuffer(replay_capacity)
        self.holdouts = {}        # domain -> newest two-class holdout table
        self.holdout_watermarks = {}
        self.ingested_events = 0
        self.last_watermark = None

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def warm_start(self, snapshot):
        """Adopt θ_S / {θ_i} from a published :class:`ModelSnapshot`."""
        self.space = space_from_snapshot(self.model, snapshot)
        self.model.load_state_dict(self.space.shared)
        return self.space

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, window):
        """Fold one :class:`StreamWindow` into replay + holdout storage.

        Per domain, the window's rows are split by watermark: the earliest
        ``1 - holdout_frac`` go to the replay buffer (trainable), the most
        recent slice joins the **holdout buffer** — its own sliding window
        (capped at ``holdout_capacity``) that accumulates the newest
        held-out rows across micro-epochs.  Holdout rows never enter the
        replay buffer, so the gate's window is untrained-on by
        construction; accumulating a few micro-epochs' worth keeps the
        gate's AUC comparison above the noise floor of a single sparse
        window.  The scoreable view in :attr:`holdouts` only advances when
        the accumulated table has both label classes.
        """
        counts = {}
        for domain, (table, times) in window.per_domain().items():
            train, holdout, cutoff = temporal_split(
                table, times, holdout_frac=self.holdout_frac
            )
            self.replay.extend(domain, train)
            counts[domain] = len(table)
            if len(holdout) == 0:
                continue
            merged = self.holdout_buffer.extend(domain, holdout)
            if len(np.unique(merged.labels)) == 2:
                self.holdouts[domain] = merged
                self.holdout_watermarks[domain] = int(cutoff)
        self.ingested_events += len(window)
        self.last_watermark = window.watermark
        profiling.count("online.events_ingested", n=len(window))
        return counts

    def ingest_archive(self, archive, indices=None, release_every=8):
        """Replay archived micro-epochs through :meth:`ingest`.

        ``archive`` is a :class:`~repro.online.stream.StreamArchive` (or
        any stream presenting ``window(i)``); windows are rebuilt as
        zero-copy column views, and ``per_domain``'s mask-gather copies
        exactly the rows each buffer keeps — the replay/holdout state
        owns its memory, so the archive can be released or closed
        afterwards.  Every ``release_every`` windows the archive's
        resident pages are returned to the OS, keeping the replay's RSS
        flat no matter how long the recorded stream is.  Returns
        ``{window_index: {domain: events}}``.
        """
        if indices is None:
            indices = getattr(
                archive, "window_indices",
                range(archive.config.n_windows),
            )
        release = getattr(archive, "release", None)
        counts = {}
        for position, index in enumerate(indices):
            counts[int(index)] = self.ingest(archive.window(index))
            if release is not None and release_every and \
                    (position + 1) % release_every == 0:
                release()
        if release is not None:
            release()
        return counts

    def window_dataset(self):
        """The current training view: replay buffers + temporal holdouts.

        ``val`` and ``test`` are both the gate holdout — evaluation during
        incremental training *is* the held-out recent window.
        """
        domains = []
        for index in range(self.n_domains):
            if self.replay.size(index) == 0:
                raise ValueError(
                    f"domain {index} has no replay data yet; ingest more "
                    "bootstrap windows before updating"
                )
            holdout = self.holdouts.get(index)
            if holdout is None:
                raise ValueError(
                    f"domain {index} has no two-class holdout yet; ingest "
                    "more bootstrap windows before updating"
                )
            domains.append(Domain(
                name=f"S{index}", index=index,
                train=self.replay.table(index),
                val=holdout, test=holdout,
            ))
        return MultiDomainDataset(
            f"{self.dataset_name}@{self.last_watermark}", domains,
            n_users=self.n_users, n_items=self.n_items,
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, key):
        """One incremental DN+DR pass over the current window dataset.

        ``key`` namespaces the update's RNG (use the window index); the
        same space, data and key produce a byte-identical update.
        """
        dataset = self.window_dataset()
        view, groups = self.space.training_plan(dataset)
        rng = spawn_rng(self.seed, "online", "update", key)
        start = profiling.tick()
        shared = self._update_shared(view, key, rng)
        self.space.set_shared(shared)
        for position, group in enumerate(groups):
            delta = domain_regularization_round(
                self.model, view, self.space, position, self.config, rng,
                delta=self.space.group_delta(group),
            )
            self.space.apply_delta(group, delta)
        profiling.tock("online.update", start)
        states = self.space.all_combined()
        return OnlineUpdate(
            key=key, dataset=dataset, states=states,
            default_state=clone_state(self.space.shared),
        )

    def _update_shared(self, dataset, key, rng):
        if self.backend == "local":
            optimizer = make_inner_optimizer(self.model, self.config)
            shared = self.space.shared
            for _ in range(self.config.dn_rounds):
                shared = domain_negotiation_epoch(
                    self.model, dataset, shared, self.config, rng,
                    optimizer=optimizer,
                )
            return shared
        return self._update_shared_cluster(dataset, key)

    def _update_shared_cluster(self, dataset, key):
        """DN via the fault-tolerant PS-Worker runtime (Section IV-E)."""
        from ..distributed import SimulatedCluster

        shared = clone_state(self.space.shared)

        def factory(worker_id):
            replica = self.replica_factory()
            replica.load_state_dict(shared)
            return replica

        cluster = SimulatedCluster(
            n_workers=self.n_workers, mode="sync", heartbeat_timeout=None,
        )
        bank = cluster.run(
            factory, dataset, self.config.updated(epochs=self.config.dn_rounds),
            seed=stable_seed(self.seed, "online", "cluster", key),
            use_dr=False,
        )
        return bank.model.state_dict()
