"""Gated, atomic publication of candidates into the serving store.

The publisher is the only component that touches the
:class:`~repro.serving.snapshots.SnapshotStore`.  Its contract is
canary-style:

1. publish the candidate states as a new version (readers that pin
   ``current()`` mid-flight are unaffected either way — the store's swap
   is a single reference assignment);
2. run the validation gate on the candidate against the *previously*
   served snapshot as baseline;
3. on failure, roll the store back to that baseline and append a
   **quarantine record** — version, gate reasons, per-domain scores — so
   a rejected update is a diagnosable artifact rather than a silent skip.

The store's retention guard (``SnapshotStore._prune`` never evicts the
live version *or* the rollback anchor) is what makes step 3 safe under
retention pressure: the baseline is guaranteed to still be retained when
the gate fails, even with ``keep=1``-style aggressive pruning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils import profiling

__all__ = ["PublishResult", "QuarantineRecord", "GatedPublisher"]


@dataclass(frozen=True)
class QuarantineRecord:
    """Why a candidate version was rejected and rolled back."""

    version: int
    rolled_back_to: int | None
    reasons: tuple
    decision: object
    key: object = None

    def as_dict(self):
        return {
            "version": self.version,
            "rolled_back_to": self.rolled_back_to,
            "reasons": list(self.reasons),
            "key": self.key,
            "gate": self.decision.as_dict(),
        }


@dataclass(frozen=True)
class PublishResult:
    """Outcome of one gated publication attempt."""

    accepted: bool
    version: int              # candidate's version number (even if rejected)
    served_version: int       # what the store serves after the attempt
    decision: object
    quarantine: QuarantineRecord | None = None


class GatedPublisher:
    """Publishes candidates through a :class:`ValidationGate`.

    ``store`` is the serving :class:`SnapshotStore`; ``gate`` a
    :class:`~repro.online.gate.ValidationGate`.  Quarantined rejections
    accumulate on :attr:`quarantine` in publication order.
    """

    def __init__(self, store, gate):
        self.store = store
        self.gate = gate
        self.quarantine = []
        self.accepted_versions = []

    def publish(self, states, default_state, holdouts, *, key=None,
                metadata=None):
        """Gate-and-publish one candidate; returns a :class:`PublishResult`.

        ``states`` is ``{domain: Θ_i}``, ``default_state`` the candidate's
        θ_S (served to unknown domains), ``holdouts`` the trainer's
        ``{domain: InteractionTable}`` held-out recent windows.
        """
        try:
            baseline = self.store.current()
        except LookupError:  # nothing served yet: bootstrap publication
            baseline = None
        meta = dict(metadata or {})
        meta.setdefault("update_key", key)
        candidate = self.store.publish_states(
            states, default_state=default_state, metadata=meta,
        )
        decision = self.gate.evaluate(states, holdouts, baseline=baseline)
        if decision.accepted:
            self.accepted_versions.append(candidate.version)
            profiling.count("online.published")
            return PublishResult(
                accepted=True,
                version=candidate.version,
                served_version=candidate.version,
                decision=decision,
            )
        rolled_back_to = None
        if baseline is not None:
            self.store.rollback(baseline.version)
            rolled_back_to = baseline.version
        record = QuarantineRecord(
            version=candidate.version,
            rolled_back_to=rolled_back_to,
            reasons=tuple(decision.reasons),
            decision=decision,
            key=key,
        )
        self.quarantine.append(record)
        profiling.count("online.quarantined")
        if baseline is None:
            raise RuntimeError(
                "bootstrap candidate failed the gate with no prior version "
                f"to roll back to: {list(decision.reasons)}"
            )
        return PublishResult(
            accepted=False,
            version=candidate.version,
            served_version=rolled_back_to,
            decision=decision,
            quarantine=record,
        )
