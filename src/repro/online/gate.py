"""Pre-publication validation gate for incremental model candidates.

Before a candidate ``{domain: Θ_i}`` reaches the serving tier it must
clear two per-domain guards, scored on the trainer's **held-out recent
window** (never trained on, most recent by watermark):

* **AUC regression** — the candidate's holdout AUC may not fall more than
  ``max_auc_drop`` below the currently-served snapshot's AUC on the same
  holdout.  The baseline is re-scored on today's holdout rather than read
  from yesterday's gate record, so natural drift degrades both models
  equally and only *relative* regressions (a bad update) trip the guard.
* **Calibration** — the candidate's mean predicted CTR must stay within
  ``max_ctr_ratio_error`` (relative) of the holdout's empirical CTR.  An
  update can improve ranking while wrecking the output scale; calibration
  failures poison downstream bidding even when AUC looks fine.

Domains with fewer than ``min_samples`` holdout rows are recorded but not
enforced — a 5-event micro-epoch in a sparse domain cannot veto a
publication.  The gate itself never mutates the store; acceptance and
rollback are the publisher's job (:mod:`repro.online.publisher`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.batching import full_batch
from ..metrics.auc import auc_score
from ..utils import profiling

__all__ = ["GateConfig", "DomainVerdict", "GateDecision", "ValidationGate"]


@dataclass(frozen=True)
class GateConfig:
    """Guard thresholds for candidate publication."""

    max_auc_drop: float = 0.08        # vs. currently-served baseline
    max_ctr_ratio_error: float = 0.6  # |predicted/empirical - 1|
    min_samples: int = 30             # enforce only on domains this large
    min_auc: float | None = None      # optional absolute floor
    bootstrap_ctr_slack: float = 1.5  # calibration multiplier when no baseline

    def __post_init__(self):
        if self.max_auc_drop < 0:
            raise ValueError("max_auc_drop must be >= 0")
        if self.max_ctr_ratio_error <= 0:
            raise ValueError("max_ctr_ratio_error must be > 0")
        if self.min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if self.bootstrap_ctr_slack < 1.0:
            raise ValueError("bootstrap_ctr_slack must be >= 1")


@dataclass(frozen=True)
class DomainVerdict:
    """One domain's scores and guard outcomes."""

    domain: int
    n_samples: int
    auc: float
    baseline_auc: float | None
    predicted_ctr: float
    empirical_ctr: float
    enforced: bool
    reasons: tuple = ()

    @property
    def passed(self):
        return not self.reasons

    @property
    def auc_drop(self):
        if self.baseline_auc is None:
            return 0.0
        return self.baseline_auc - self.auc

    @property
    def calibration_error(self):
        return abs(self.predicted_ctr / self.empirical_ctr - 1.0)

    def as_dict(self):
        return {
            "domain": self.domain,
            "n_samples": self.n_samples,
            "auc": self.auc,
            "baseline_auc": self.baseline_auc,
            "auc_drop": self.auc_drop,
            "predicted_ctr": self.predicted_ctr,
            "empirical_ctr": self.empirical_ctr,
            "calibration_error": self.calibration_error,
            "enforced": self.enforced,
            "reasons": list(self.reasons),
        }


@dataclass(frozen=True)
class GateDecision:
    """The gate's overall verdict over all scoreable domains."""

    accepted: bool
    verdicts: dict = field(default_factory=dict)

    @property
    def reasons(self):
        out = []
        for domain in sorted(self.verdicts):
            out.extend(self.verdicts[domain].reasons)
        return out

    @property
    def mean_auc(self):
        aucs = [v.auc for v in self.verdicts.values()]
        if not aucs:
            raise ValueError("gate decision has no scored domains")
        return float(np.mean(aucs))

    def as_dict(self):
        return {
            "accepted": self.accepted,
            "mean_auc": self.mean_auc,
            "reasons": self.reasons,
            "domains": {
                str(d): v.as_dict() for d, v in sorted(self.verdicts.items())
            },
        }


class ValidationGate:
    """Scores candidates on held-out windows against the live baseline.

    ``model`` is a probe skeleton used only for forward passes —
    :meth:`~repro.models.base.CTRModel.predict` runs in eval mode and
    consumes no RNG, so probing never perturbs training determinism.
    """

    def __init__(self, model, config=None):
        self.model = model
        self.config = config or GateConfig()

    def score_state(self, state, holdout, domain):
        """(auc, predicted_ctr) of one state on one holdout table."""
        self.model.load_state_dict(state)
        scores = self.model.predict(full_batch(holdout, domain))
        return (
            float(auc_score(holdout.labels, scores)),
            float(scores.mean()),
        )

    def evaluate(self, states, holdouts, baseline=None):
        """Gate a candidate ``{domain: Θ_i}`` against recent holdouts.

        ``baseline`` is the currently-served :class:`ModelSnapshot` (or
        ``None`` for the bootstrap publication, which then faces only the
        calibration and absolute-AUC guards — the calibration bound
        widened by ``bootstrap_ctr_slack``, since a day-0 model has had
        only a handful of updates to find the output scale and there is
        nothing better to serve instead).  Returns a
        :class:`GateDecision`; every scoreable domain gets a verdict.
        """
        start = profiling.tick()
        config = self.config
        ctr_bound = config.max_ctr_ratio_error
        if baseline is None:
            ctr_bound = ctr_bound * config.bootstrap_ctr_slack
        verdicts = {}
        for domain in sorted(holdouts):
            holdout = holdouts[domain]
            if len(np.unique(holdout.labels)) < 2:
                continue
            auc, predicted_ctr = self.score_state(
                states[domain], holdout, domain
            )
            baseline_auc = None
            if baseline is not None:
                self.model.load_state_dict(baseline.state_for(domain))
                baseline_scores = self.model.predict(
                    full_batch(holdout, domain)
                )
                baseline_auc = float(
                    auc_score(holdout.labels, baseline_scores)
                )
            empirical_ctr = float(holdout.labels.mean())
            enforced = len(holdout) >= config.min_samples
            reasons = []
            if enforced:
                if (
                    baseline_auc is not None
                    and baseline_auc - auc > config.max_auc_drop
                ):
                    reasons.append(
                        f"domain {domain}: AUC dropped "
                        f"{baseline_auc - auc:.4f} > {config.max_auc_drop} "
                        f"({baseline_auc:.4f} -> {auc:.4f})"
                    )
                if config.min_auc is not None and auc < config.min_auc:
                    reasons.append(
                        f"domain {domain}: AUC {auc:.4f} below floor "
                        f"{config.min_auc}"
                    )
                ratio_error = abs(predicted_ctr / empirical_ctr - 1.0)
                if ratio_error > ctr_bound:
                    reasons.append(
                        f"domain {domain}: CTR miscalibrated — predicted "
                        f"{predicted_ctr:.4f} vs empirical "
                        f"{empirical_ctr:.4f} "
                        f"(ratio error {ratio_error:.3f} > {ctr_bound})"
                    )
            verdicts[domain] = DomainVerdict(
                domain=domain,
                n_samples=len(holdout),
                auc=auc,
                baseline_auc=baseline_auc,
                predicted_ctr=predicted_ctr,
                empirical_ctr=empirical_ctr,
                enforced=enforced,
                reasons=tuple(reasons),
            )
        if not verdicts:
            raise ValueError(
                "gate has no scoreable holdout (need a two-class holdout "
                "in at least one domain)"
            )
        decision = GateDecision(
            accepted=all(v.passed for v in verdicts.values()),
            verdicts=verdicts,
        )
        profiling.tock("online.gate_evaluate", start)
        profiling.count(
            "online.gate_accepted" if decision.accepted
            else "online.gate_rejected"
        )
        return decision
