"""MAMDR reproduction — a model-agnostic learning framework for
multi-domain recommendation (Luo et al., ICDE 2023).

Subpackages
-----------
``repro.nn``
    From-scratch autodiff engine, layers and optimizers (the TF substitute).
``repro.data``
    Multi-domain dataset schema, synthetic generator, benchmark presets.
``repro.models``
    The CTR model zoo: MLP, WDL, NeurFM, AutoInt, DeepFM, Shared-Bottom,
    MMoE, CGC, PLE, STAR.
``repro.frameworks``
    Baseline learning frameworks: Alternate(+Finetune), Separate,
    Weighted Loss, PCGrad, MAML, Reptile, MLDG.
``repro.core``
    The paper's contribution: Domain Negotiation, Domain Regularization and
    the unified MAMDR framework.
``repro.distributed``
    Simulated fault-tolerant PS-Worker cluster: typed message transport,
    fault injection, checkpoint/resume and the embedding cache of IV-E.
``repro.train``
    ``Session(config).fit()`` — the unified training facade over
    frameworks and the distributed cluster.
``repro.serving``
    Online inference: versioned snapshots with atomic hot-swap,
    micro-batching, and the serve-side static/dynamic embedding cache.
``repro.metrics`` / ``repro.analysis`` / ``repro.experiments``
    Evaluation, gradient-conflict probes and the table/figure harness.
``repro.tooling``
    Correctness tooling: the runtime autodiff sanitizer (version counters,
    anomaly mode, graph diagnostics) and the repo-invariant AST linter.

Quickstart
----------
>>> from repro.data import taobao10_sim
>>> from repro.models import build_model
>>> from repro.core import MAMDR, TrainConfig
>>> from repro.metrics import evaluate_bank
>>> dataset = taobao10_sim(scale=0.5)
>>> model = build_model("mlp", dataset, seed=0)
>>> bank = MAMDR().fit(model, dataset, TrainConfig(epochs=2), seed=0)
>>> report = evaluate_bank(bank, dataset, method="MLP+MAMDR")
"""

__version__ = "1.0.0"

from . import (
    core,
    data,
    distributed,
    frameworks,
    metrics,
    models,
    nn,
    serving,
    tooling,
    train,
    utils,
)

__all__ = [
    "core",
    "data",
    "distributed",
    "frameworks",
    "metrics",
    "models",
    "nn",
    "serving",
    "tooling",
    "train",
    "utils",
    "__version__",
]
