"""Tables VIII and IX: the industry-scale comparison on taobao_online_sim.

One training run feeds both tables (the paper evaluates the same deployment
for the overall average and the top-10 domains).

Paper shape: RAW+MAMDR best overall; RAW+Separate below RAW (separate
models overfit sparse domains); RAW+DN between RAW and RAW+MAMDR.
"""

from conftest import emit

from repro.experiments import render_table8, render_table9, run_industry


def test_table8_and_9_industry(benchmark, results_dir):
    dataset, result = benchmark.pedantic(
        lambda: run_industry(n_domains=40, total_samples=20_000, seeds=(0, 1)),
        rounds=1, iterations=1,
    )
    emit(results_dir, "table8", render_table8(result))
    emit(results_dir, "table9", render_table9(dataset, result))

    auc = result.mean_auc
    assert set(auc) == {
        "RAW", "MMOE", "CGC", "PLE", "RAW+Separate", "RAW+DN", "RAW+MAMDR",
    }
    # Headline shape: applying MAMDR to the production model helps, and
    # fully separate per-domain models are the weakest way to specialize.
    assert auc["RAW+MAMDR"] > auc["RAW"]
    assert auc["RAW+MAMDR"] > auc["RAW+Separate"]
