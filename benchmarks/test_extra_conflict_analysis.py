"""Extra: quantify the domain-conflict phenomenon of Figure 3.

Measures pairwise gradient inner-products across domains at initialization
and after alternate vs DN training.  Verifies the synthetic benchmarks
actually contain conflicting domains (negative pairwise inner products) —
the premise of the whole paper.
"""

import numpy as np
from conftest import emit

from repro.analysis import conflict_report
from repro.core import DomainNegotiation, TrainConfig
from repro.data import taobao10_sim
from repro.frameworks import Alternate
from repro.models import build_model
from repro.utils.tables import format_table


def run_conflict_analysis(seed=0):
    dataset = taobao10_sim(scale=0.8, seed=seed)
    rng = np.random.default_rng(seed)
    config = TrainConfig(epochs=6)
    rows = {}

    model = build_model("mlp", dataset, seed=seed)
    rows["init"] = conflict_report(model, dataset, rng)

    model = build_model("mlp", dataset, seed=seed)
    Alternate().fit(model, dataset, config, seed=seed)
    rows["alternate"] = conflict_report(model, dataset, rng)

    model = build_model("mlp", dataset, seed=seed)
    DomainNegotiation().fit(model, dataset, config, seed=seed)
    rows["dn"] = conflict_report(model, dataset, rng)
    return rows


def test_extra_conflict_analysis(benchmark, results_dir):
    rows = benchmark.pedantic(run_conflict_analysis, rounds=1, iterations=1)
    text = format_table(
        ["Stage", "Conflict rate", "Mean cosine", "Mean inner product"],
        [
            [stage, f"{r['conflict_rate']:.2f}", r["mean_cosine"],
             f"{r['mean_inner_product']:.3e}"]
            for stage, r in rows.items()
        ],
        title="Extra: inter-domain gradient geometry (Taobao-10)",
    )
    emit(results_dir, "extra_conflict", text)

    # The benchmark datasets must exhibit real domain conflict once the
    # easy shared signal is absorbed: after training, some domain pairs
    # pull in opposing directions.
    assert rows["alternate"]["conflict_rate"] > 0.05
    for r in rows.values():
        assert -1.0 <= r["mean_cosine"] <= 1.0
