"""Figure 9: DN AUC under the inner lr (alpha) x outer lr (beta) grid.

Paper shape: alpha must be small enough (their largest alpha=0.1 barely
trains) and beta=1 — the degeneration of DN to Alternate Training — is
worse than beta < 1.
"""

from conftest import emit

from repro.experiments import render_fig9, run_fig9


def test_fig9_learning_rates(benchmark, results_dir):
    grid = benchmark.pedantic(
        lambda: run_fig9(scale=1.0, seeds=(0, 1)), rounds=1, iterations=1
    )
    text = render_fig9(grid)
    emit(results_dir, "fig9", text)

    betas = sorted({beta for _, beta in grid})
    best = max(grid.values())

    # Too-large alpha with no outer damping barely trains (paper: "the
    # model is barely trained when alpha is too large").
    assert grid[(0.3, 1.0)] < best - 0.03

    # At the largest usable alpha, beta=1 (the Alternate Training
    # degeneration) underperforms beta<1 — the paper's key beta finding.
    assert max(grid[(0.1, b)] for b in betas if b < 1.0) > grid[(0.1, 1.0)]

    # The optimum lives at a small alpha, where the Taylor analysis holds.
    best_alpha = max(grid, key=grid.get)[0]
    assert best_alpha <= 0.1
