"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section, prints it, and persists the rendered text under
``benchmarks/results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir, name, text):
    """Print a rendered table and persist it to the results directory."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
