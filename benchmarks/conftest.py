"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section, prints it, and persists the rendered text under
``benchmarks/results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Perf microbenchmarks (benchmarks/perf/) record their timings here; the
# session hook below merges them into BENCH_perf.json at the repo root so
# successive PRs accumulate a performance trajectory.
BENCH_PERF_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir, name, text):
    """Print a rendered table and persist it to the results directory."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def perf_records():
    """Mutable mapping perf benchmarks write their measurements into.

    Merged (not overwritten) into ``BENCH_perf.json`` at session end, so a
    partial run — e.g. ``pytest benchmarks/perf -m perf_smoke`` — only
    refreshes the entries it actually measured.
    """
    records = {}
    yield records
    if not records:
        return
    payload = {"benchmarks": {}}
    if BENCH_PERF_PATH.exists():
        try:
            payload = json.loads(BENCH_PERF_PATH.read_text())
        except json.JSONDecodeError:
            pass
    payload.setdefault("benchmarks", {}).update(records)
    BENCH_PERF_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
