"""Table VI: ablation of DN and DR across the benchmark datasets.

Paper shape: removing either component hurts; removing both (plain
alternate training) is worst on average.
"""

import numpy as np
from conftest import emit

from repro.experiments import render_table6, run_table6


def test_table6_ablation(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: run_table6(scale=1.0, seeds=(0, 1, 2)), rounds=1, iterations=1
    )
    text = render_table6(results)
    emit(results_dir, "table6", text)

    mean_auc = {
        method: np.mean([r.mean_auc[method] for r in results.values()])
        for method in next(iter(results.values())).reports
    }
    # The full framework beats the no-component baseline on average.
    assert mean_auc["MLP+MAMDR (DN+DR)"] > mean_auc["w/o DN+DR"]
