"""Extra: the PS-Worker implementation of Section IV-E.

Compares distributed MAMDR (simulated cluster, async and sync) against
single-process training, and reports the embedding-cache synchronization
statistics that motivate the static/dynamic cache design.
"""

from conftest import emit

from repro.core import MAMDR, TrainConfig
from repro.data import amazon6_sim
from repro.distributed import SimulatedCluster
from repro.metrics import evaluate_bank
from repro.models import build_model
from repro.utils.tables import format_table


def run_distributed(seed=0):
    dataset = amazon6_sim(scale=0.8, seed=seed)
    config = TrainConfig(epochs=6)
    rows = []

    model = build_model("mlp", dataset, seed=seed)
    bank = MAMDR().fit(model, dataset, config, seed=seed)
    single = evaluate_bank(bank, dataset).mean_auc
    rows.append(("single-process MAMDR", single, "-", "-"))

    stats = {}
    for mode in ("async", "sync"):
        cluster = SimulatedCluster(n_workers=4, mode=mode)
        bank = cluster.fit(
            lambda wid: build_model("mlp", dataset, seed=seed),
            dataset, config, seed=seed, use_dr=True,
        )
        auc = evaluate_bank(bank, dataset).mean_auc
        stats[mode] = cluster.stats()
        worker_stats = next(iter(stats[mode]["workers"].values()))
        hit_rate = (
            worker_stats["encoder.user_embedding.weight"]["hit_rate"]
            if worker_stats else 0.0
        )
        rows.append((f"cluster ({mode}, 4 workers)", auc,
                     stats[mode]["ps_version"], f"{hit_rate:.2f}"))
    return rows, stats


def test_extra_distributed(benchmark, results_dir):
    rows, stats = benchmark.pedantic(run_distributed, rounds=1, iterations=1)
    text = format_table(
        ["Setup", "AUC", "PS version", "user-emb cache hit rate"],
        [list(r) for r in rows],
        title="Extra: distributed MAMDR vs single-process (Amazon-6)",
    )
    emit(results_dir, "extra_distributed", text)

    aucs = [r[1] for r in rows]
    # Distributed training must stay in the same quality band as
    # single-process training (the paper deploys it at Taobao scale).
    assert all(a > 0.6 for a in aucs)
    assert max(aucs) - min(aucs) < 0.08
