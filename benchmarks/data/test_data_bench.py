"""Columnar data-plane benchmarks (write → open → epoch per cell).

Two tiers mirror the other bench harnesses:

* ``data_smoke`` — a scaled-down sweep (1e5 → 1e6 events) that CI runs
  on every push: the O(1)-open contract, the throughput floor and the
  RSS-constancy assertion all hold at small scale in seconds;
* ``data`` — the paper-scale sweep behind ``python -m repro.cli
  data-bench`` (1e6 → 1e8 events, a multi-GB on-disk file), gated on
  the ROADMAP budget: ≥1e7 events/s load+epoch with the large cell's
  live peak RSS within 2x of the small one's.

Both merge their cells into ``BENCH_data.json`` at the repo root.

Run::

    PYTHONPATH=src python -m pytest benchmarks/data -m data_smoke -q
    PYTHONPATH=src python -m pytest benchmarks/data -m data -q -s
"""

from __future__ import annotations

import pathlib

import pytest

from repro.data.databench import (
    EVENTS_PER_S_TARGET,
    RSS_RATIO_LIMIT,
    check_data_bench,
    render_data_bench,
    run_data_bench,
    write_bench_record,
)

BENCH_DATA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "BENCH_data.json"
)


def _run_and_record(event_counts, tmp_path, record_journal=False):
    record = run_data_bench(
        event_counts=event_counts, workdir=str(tmp_path),
    )
    print("\n" + render_data_bench(record))
    if record_journal:
        write_bench_record(record, BENCH_DATA_PATH)
    return record


@pytest.mark.data_smoke
def test_data_smoke(tmp_path):
    """1e5 → 1e6 events: O(1) open, throughput floor, flat RSS."""
    record = _run_and_record((100_000, 1_000_000), tmp_path)
    small, large = sorted(record["cells"], key=lambda c: c["n_events"])
    # Opening maps the header only — it must not scale with the payload
    # (both opens finish in well under a millisecond; allow 50ms of CI
    # scheduling noise).
    assert large["open_s"] < 0.05
    # The throughput floor holds even at smoke scale: these files fit in
    # page cache, so anything slower means per-row Python crept in.
    assert large["events_per_s"] >= EVENTS_PER_S_TARGET, (
        f"{large['events_per_s']:,.0f} ev/s at {large['n_events']:,} "
        f"events is below the {EVENTS_PER_S_TARGET:,} floor"
    )
    # RSS constancy: 10x the data must not move the live peak beyond the
    # acceptance ratio.
    assert small["peak_rss_mb"] > 0
    ratio = large["peak_rss_mb"] / small["peak_rss_mb"]
    assert ratio <= RSS_RATIO_LIMIT, (
        f"peak RSS grew {ratio:.2f}x across a 10x size step "
        f"(limit {RSS_RATIO_LIMIT}x)"
    )
    verdict = check_data_bench(record)
    assert verdict["ok"], verdict["failures"]


@pytest.mark.data
def test_data_full_scale(tmp_path):
    """The acceptance sweep: 1e6 → 1e8 events on disk.

    Writes ~2.3 GB and takes a few minutes; this is the run that records
    the headline cells of ``BENCH_data.json``.
    """
    record = _run_and_record(
        (1_000_000, 100_000_000), tmp_path, record_journal=True,
    )
    verdict = check_data_bench(record)
    assert verdict["ok"], verdict["failures"]
    large = max(record["cells"], key=lambda c: c["n_events"])
    assert large["events_per_s"] >= EVENTS_PER_S_TARGET
