"""Table V: MDR methods vs MLP+MAMDR on the five benchmark datasets.

Regenerates the paper's main comparison: five single-domain CTR models and
four multi-task/multi-domain models trained with alternate training, versus
a plain MLP optimized with MAMDR, reporting average AUC and average RANK.

Paper shape to reproduce: MLP+MAMDR leads the average-RANK field and
improves over plain MLP on average.
"""

import numpy as np
from conftest import emit

from repro.experiments import render_table5, run_table5


def test_table5_main_comparison(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: run_table5(scale=1.0, seeds=(0, 1, 2)), rounds=1, iterations=1
    )
    text = render_table5(results)
    emit(results_dir, "table5", text)

    for result in results.values():
        for auc in result.mean_auc.values():
            assert 0.4 < auc <= 1.0

    # Shape check: MAMDR lifts the MLP base model on average.
    gains = [
        result.mean_auc["MLP+MAMDR"] - result.mean_auc["MLP"]
        for result in results.values()
    ]
    assert np.mean(gains) > 0.0

    mean_rank = {
        method: np.mean([result.rank[method] for result in results.values()])
        for method in next(iter(results.values())).reports
    }
    # Paper shape: MAMDR takes the best average rank; we require it to lead
    # the field (top-2) and to dominate its own base model outright.
    ordered = sorted(mean_rank, key=mean_rank.get)
    assert "MLP+MAMDR" in ordered[:2], f"MAMDR not in top-2: {mean_rank}"
    assert mean_rank["MLP+MAMDR"] < mean_rank["MLP"]
