"""Table X: learning frameworks x model structures on Taobao-10.

Paper shape: MAMDR (DN+DR) is the best framework for every model
structure; meta-learning and gradient-surgery baselines land between
Alternate and MAMDR.
"""

import numpy as np
from conftest import emit

from repro.experiments import render_table10, run_table10


def test_table10_frameworks(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: run_table10(scale=1.0, seeds=(0, 1, 2)), rounds=1, iterations=1
    )
    text = render_table10(results)
    emit(results_dir, "table10", text)

    frameworks = list(next(iter(results.values())).reports)
    mean_auc = {
        fw: np.mean([results[m].mean_auc[fw] for m in results])
        for fw in frameworks
    }
    # Averaged over model structures, MAMDR is the best framework and beats
    # plain alternate training.
    assert mean_auc["MAMDR (DN+DR)"] > mean_auc["Alternate"]
    top2 = sorted(mean_auc, key=mean_auc.get, reverse=True)[:2]
    assert "MAMDR (DN+DR)" in top2, f"MAMDR not in top-2: {mean_auc}"
