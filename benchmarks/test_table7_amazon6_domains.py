"""Table VII: per-domain ablation results on Amazon-6.

Paper shape: the full framework is strong in every domain; the sparse
"Prime Pantry" domain suffers most when DR is removed.
"""

from conftest import emit

from repro.experiments import render_table7, run_table7


def test_table7_amazon6_domains(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_table7(scale=1.0, seeds=(0, 1, 2)), rounds=1, iterations=1
    )
    text = render_table7(result)
    emit(results_dir, "table7", text)

    full = result.reports["MLP+MAMDR (DN+DR)"].per_domain
    baseline = result.reports["w/o DN+DR"].per_domain
    assert set(full) == set(baseline)
    # Averaged over the six domains, the full framework wins.
    mean_full = sum(full.values()) / len(full)
    mean_base = sum(baseline.values()) / len(baseline)
    assert mean_full > mean_base
