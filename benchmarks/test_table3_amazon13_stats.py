"""Table III: per-domain statistics of Amazon-13 (7 sparse domains added)."""

from conftest import emit

from repro.data import amazon13_sim, per_domain_stats_table

SPARSE_DOMAINS = {"Gift Cards", "Magazine Subscriptions", "Software",
                  "Luxury Beauty"}


def test_table3_amazon13_stats(benchmark, results_dir):
    dataset = benchmark.pedantic(amazon13_sim, rounds=1, iterations=1)
    text = per_domain_stats_table(
        dataset, title="Table III analogue: Amazon-13 per-domain statistics"
    )
    emit(results_dir, "table3", text)

    assert dataset.n_domains == 13
    sizes = {d.name: d.num_samples for d in dataset.domains}
    # The added domains are orders of magnitude sparser than the rich ones,
    # the core property Table III is constructed to exercise.
    richest = max(sizes.values())
    for name in SPARSE_DOMAINS:
        assert sizes[name] < richest / 10
