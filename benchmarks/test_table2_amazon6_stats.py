"""Table II: per-domain statistics of Amazon-6."""

from conftest import emit

from repro.data import amazon6_sim, per_domain_stats_table

# Paper Table II: (domain, share of samples, CTR ratio).
PAPER_SHARES = {
    "Musical Instruments": (0.0711, 0.22),
    "Office Products": (0.2317, 0.23),
    "Patio Lawn and Garden": (0.1787, 0.32),
    "Prime Pantry": (0.0410, 0.23),
    "Toys and Games": (0.3180, 0.47),
    "Video Games": (0.1594, 0.21),
}


def test_table2_amazon6_stats(benchmark, results_dir):
    dataset = benchmark.pedantic(amazon6_sim, rounds=1, iterations=1)
    text = per_domain_stats_table(
        dataset, title="Table II analogue: Amazon-6 per-domain statistics"
    )
    emit(results_dir, "table2", text)

    total = sum(d.num_samples for d in dataset.domains)
    for domain in dataset.domains:
        share, ctr = PAPER_SHARES[domain.name]
        assert abs(domain.num_samples / total - share) < 0.01
        assert abs(domain.ctr_ratio - ctr) < 0.05
