"""Table IV: per-domain statistics of Taobao-10/20/30."""

from conftest import emit

from repro.data import (
    per_domain_stats_table,
    taobao10_sim,
    taobao20_sim,
    taobao30_sim,
)


def test_table4_taobao_stats(benchmark, results_dir):
    datasets = benchmark.pedantic(
        lambda: (taobao10_sim(), taobao20_sim(), taobao30_sim()),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        per_domain_stats_table(
            d, title=f"Table IV analogue: {d.name} per-domain statistics"
        )
        for d in datasets
    )
    emit(results_dir, "table4", text)

    t10, t20, t30 = datasets
    assert (t10.n_domains, t20.n_domains, t30.n_domains) == (10, 20, 30)
    # Taobao-10/20 are prefixes of Taobao-30's domain list (paper Table IV).
    names30 = [d.name for d in t30.domains]
    assert [d.name for d in t10.domains] == names30[:10]
    assert [d.name for d in t20.domains] == names30[:20]
    # D14 is the dominant domain (17.29% of samples in the paper).
    sizes = {d.name: d.num_samples for d in t30.domains}
    assert max(sizes, key=sizes.get) == "D14"
