"""Domain-axis scaling benchmarks (train → publish → serve per cell).

Two tiers mirror the serving harness:

* ``domains_smoke`` — a sub-minute 1k-domain cell pair that CI runs on
  every push: both backends finish the full pipeline, parity holds, and
  the clustered backend's delta plane is a fraction of the dense one's;
* ``domains`` — the fuller curve behind ``python -m repro.cli
  domains-bench`` (1k/5k/10k dense+clustered, 50k clustered-only).

Both merge their cells into ``BENCH_domains.json`` at the repo root and
hard-fail if served scores stop matching offline materialization.

Run::

    PYTHONPATH=src python -m pytest benchmarks/domains -m domains_smoke -q
    PYTHONPATH=src python -m pytest benchmarks/domains -m domains -q -s
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.domains_bench import (
    render_domains_bench,
    run_domains_bench,
    write_bench_record,
)

BENCH_DOMAINS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "BENCH_domains.json"
)


def _run_and_record(domain_counts, clusters, dense_limit):
    record = run_domains_bench(
        domain_counts=domain_counts, clusters=clusters,
        dense_limit=dense_limit,
    )
    print("\n" + render_domains_bench(record))
    write_bench_record(record, BENCH_DOMAINS_PATH)
    for cell in record["cells"]:
        label = f"{cell['backend']}/{cell['n_domains']}"
        assert cell["serve_parity"], f"serving parity failed at {label}"
        assert cell["served_domains"] > 0
    return record


def _by_backend(record, n_domains):
    return {
        cell["backend"]: cell for cell in record["cells"]
        if cell["n_domains"] == n_domains
    }


@pytest.mark.domains_smoke
def test_domains_smoke():
    """1k domains through both backends: alive, parity, smaller plane."""
    record = _run_and_record(
        domain_counts=(1000,), clusters=64, dense_limit=1000,
    )
    cells = _by_backend(record, 1000)
    assert set(cells) == {"dense", "clustered"}
    dense, clustered = cells["dense"], cells["clustered"]
    # the whole point of the clustered backend: far fewer work units and
    # a delta plane that does not scale with n_domains
    assert clustered["n_groups"] < dense["n_groups"] / 4
    assert clustered["delta_plane_mb"] < dense["delta_plane_mb"] / 4
    assert clustered["peak_rss_mb"] < dense["peak_rss_mb"]


@pytest.mark.domains
def test_domains_scaling_curve():
    """The fuller curve: clustered memory must grow sublinearly."""
    record = _run_and_record(
        domain_counts=(1000, 5000, 10000), clusters=64, dense_limit=10000,
    )
    small = _by_backend(record, 1000)["clustered"]
    large = _by_backend(record, 10000)["clustered"]
    scale = 10000 / 1000
    # sublinear: 10x the domains costs well under 10x the peak memory
    assert large["peak_rss_mb"] < small["peak_rss_mb"] * scale * 0.5
    # dense at 10k exists for comparison and must still hold parity
    assert _by_backend(record, 10000)["dense"]["serve_parity"]
