"""Performance microbenchmarks for the sparse-gradient fast path.

Each benchmark times the *same computation* with the sparse embedding path
enabled (the default, "after") and disabled ("before": dense ``np.add.at``
backward + full-table optimizer updates), and records both numbers plus the
speedup through the ``perf_records`` fixture into ``BENCH_perf.json``.

Run the full suite::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -q -s

or just the seconds-long smoke check that keeps the harness alive::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf_smoke -q
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import MAMDR, TrainConfig, domain_negotiation_epoch
from repro.core.trainer import make_inner_optimizer
from repro.data import DomainSpec, SyntheticConfig, generate_dataset
from repro.nn import Adam, Embedding, Module, use_sparse_grads
from repro.nn import functional as F
from repro.utils.seeding import spawn_rng


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def make_perf_dataset(n_domains, samples, seed=1):
    """A small trainable-embedding multi-domain dataset for epoch timings."""
    specs = tuple(
        DomainSpec(f"P{i}", samples[i % len(samples)], 0.25 + 0.05 * i)
        for i in range(n_domains)
    )
    return generate_dataset(SyntheticConfig(
        name=f"perf_{n_domains}",
        domains=specs,
        n_users=300,
        n_items=150,
        latent_dim=8,
        feature_mode="trainable",
        feature_dim=10,
        seed=seed,
    ))

def best_time(fn, repeats, warmup=2):
    """Best-of-N wall time of ``fn()`` (min is the standard noise filter)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TwoTowerEmbeddingModel(Module):
    """Embedding-dominated CTR model: two big tables + a dot-ish head.

    Mirrors the paper's serving shape — almost all parameters live in the
    id-embedding tables, so the training step cost is the embedding
    forward/backward plus the optimizer update over the tables.
    """

    def __init__(self, n_users, n_items, dim, seed=0):
        super().__init__()
        rng = spawn_rng(seed, "perf", "two-tower-init")
        self.user_embedding = Embedding(n_users, dim, rng)
        self.item_embedding = Embedding(n_items, dim, rng)

    def loss(self, users, items, labels):
        user_vec = self.user_embedding(users)
        item_vec = self.item_embedding(items)
        logits = (user_vec * item_vec).sum(axis=1)
        return F.bce_with_logits(logits, labels)


def embedding_training_step_benchmark(n_users, n_items, dim, batch_size,
                                      steps, sparse, seed=0):
    """Seconds per training step (Adam over the tables), best of ``steps``."""
    with use_sparse_grads(sparse):
        model = TwoTowerEmbeddingModel(n_users, n_items, dim, seed=seed)
        optimizer = Adam(list(model.parameters()), 1e-3)
        data_rng = spawn_rng(seed, "perf", "batches")
        users = data_rng.integers(0, n_users, size=(steps, batch_size))
        items = data_rng.integers(0, n_items, size=(steps, batch_size))
        labels = data_rng.integers(0, 2, size=(steps, batch_size)).astype(float)

        best = float("inf")
        for step in range(steps):
            start = time.perf_counter()
            loss = model.loss(users[step], items[step], labels[step])
            model.zero_grad()
            loss.backward()
            optimizer.step()
            best = min(best, time.perf_counter() - start)
        assert np.isfinite(loss.item())
    return best


def embedding_fwd_bwd_benchmark(n_rows, dim, batch_size, repeats, sparse):
    """Seconds for one embedding forward+backward, sparse vs dense."""
    rng = spawn_rng(0, "perf", "fwd-bwd")
    from repro.nn import Parameter

    weight = Parameter(rng.normal(size=(n_rows, dim)) * 0.01)
    indices = rng.integers(0, n_rows, size=batch_size)

    def run():
        with use_sparse_grads(sparse):
            weight.grad = None
            out = F.embedding(weight, indices)
            out.sum().backward()

    return best_time(run, repeats)


# ----------------------------------------------------------------------
# Full perf suite (pytest benchmarks/perf -m perf)
# ----------------------------------------------------------------------

@pytest.mark.perf
def test_embedding_training_step_speedup(perf_records):
    """The acceptance benchmark: ≥ 3x on an embedding-dominated step
    (table ≥ 100k rows, batch 256) versus the pre-PR dense path."""
    kwargs = dict(n_users=100_000, n_items=50_000, dim=16, batch_size=256)
    dense_step = embedding_training_step_benchmark(steps=20, sparse=False, **kwargs)
    sparse_step = embedding_training_step_benchmark(steps=20, sparse=True, **kwargs)
    speedup = dense_step / sparse_step
    perf_records["embedding_training_step"] = {
        "table_rows": kwargs["n_users"],
        "item_rows": kwargs["n_items"],
        "dim": kwargs["dim"],
        "batch_size": kwargs["batch_size"],
        "dense_seconds_per_step": dense_step,
        "sparse_seconds_per_step": sparse_step,
        "speedup": speedup,
    }
    print(f"\nembedding training step: dense {dense_step * 1e3:.2f} ms, "
          f"sparse {sparse_step * 1e3:.2f} ms, speedup {speedup:.1f}x")
    assert speedup >= 3.0, (
        f"sparse fast path only {speedup:.2f}x faster than dense"
    )


@pytest.mark.perf
def test_embedding_fwd_bwd(perf_records):
    dense = embedding_fwd_bwd_benchmark(100_000, 16, 256, repeats=30, sparse=False)
    sparse = embedding_fwd_bwd_benchmark(100_000, 16, 256, repeats=30, sparse=True)
    perf_records["embedding_fwd_bwd"] = {
        "table_rows": 100_000,
        "dim": 16,
        "batch_size": 256,
        "dense_seconds": dense,
        "sparse_seconds": sparse,
        "speedup": dense / sparse,
    }
    print(f"\nembedding fwd+bwd: dense {dense * 1e3:.2f} ms, "
          f"sparse {sparse * 1e3:.2f} ms, speedup {dense / sparse:.1f}x")
    assert sparse <= dense


@pytest.mark.perf
def test_dn_epoch(perf_records):
    """Wall time of one full DN epoch on a small multi-domain dataset."""
    dataset = make_perf_dataset(n_domains=4, samples=(400, 300, 200, 100))
    config = TrainConfig(batch_size=64, inner_steps=4)
    from repro.models import build_model

    model = build_model("mlp", dataset, seed=0)
    shared = model.state_dict()
    rng = spawn_rng(0, "bench-dn")
    optimizer = make_inner_optimizer(model, config)

    def run():
        domain_negotiation_epoch(model, dataset, shared, config, rng,
                                 optimizer=optimizer)

    seconds = best_time(run, repeats=5)
    perf_records["dn_epoch"] = {
        "n_domains": dataset.n_domains,
        "inner_steps": config.inner_steps,
        "batch_size": config.batch_size,
        "seconds": seconds,
    }
    print(f"\nDN epoch: {seconds * 1e3:.1f} ms")


@pytest.mark.perf
def test_mamdr_epoch(perf_records):
    """Wall time of one full MAMDR (DN+DR) training epoch."""
    dataset = make_perf_dataset(n_domains=3, samples=(300, 200, 100))
    config = TrainConfig(epochs=1, batch_size=64, inner_steps=3, dr_steps=2,
                         sample_k=1)
    from repro.models import build_model

    def run():
        model = build_model("mlp", dataset, seed=0)
        MAMDR().fit(model, dataset, config, seed=0)

    seconds = best_time(run, repeats=3, warmup=1)
    perf_records["mamdr_epoch"] = {
        "n_domains": dataset.n_domains,
        "config": {"inner_steps": config.inner_steps,
                   "dr_steps": config.dr_steps, "sample_k": config.sample_k},
        "seconds": seconds,
    }
    print(f"\nMAMDR epoch: {seconds * 1e3:.1f} ms")


# ----------------------------------------------------------------------
# Smoke check (pytest benchmarks/perf -m perf_smoke) — seconds, not minutes
# ----------------------------------------------------------------------

@pytest.mark.perf_smoke
def test_perf_harness_smoke(perf_records):
    """Tiny end-to-end pass through the benchmark harness so it can't
    bit-rot: small table, few steps, loose assertion."""
    kwargs = dict(n_users=2_000, n_items=1_000, dim=8, batch_size=64)
    dense_step = embedding_training_step_benchmark(steps=5, sparse=False, **kwargs)
    sparse_step = embedding_training_step_benchmark(steps=5, sparse=True, **kwargs)
    assert dense_step > 0 and sparse_step > 0
    # At this tiny scale we only require the fast path not be a regression
    # beyond noise; the real ratio is asserted by the perf-marked test.
    assert sparse_step <= dense_step * 2.0
    perf_records["smoke"] = {
        "dense_seconds_per_step": dense_step,
        "sparse_seconds_per_step": sparse_step,
    }
