"""Compile-and-replay executor benchmarks.

Times the bulk-synchronous DN round and the full MAMDR epoch (DN + DR)
three ways on the same computation:

* **eager** — the sequential in-process reference, plain Python autodiff
  dispatch per op (``sync_dn_round_reference`` / ``_dr_targets``);
* **compiled** — the same sequential loop with steps replayed from the
  compiled tape (``repro.nn.compiled_execution``);
* **vectorized** — all workers/targets replayed as one lane-batched tape
  (``vector_dn_round`` / ``vector_dr_rounds``), the single-core answer
  to multi-domain parallelism.

Every variant is bitwise-equal to the eager reference (asserted in
``tests/distributed/test_vector.py``); the numbers here are therefore a
pure executor comparison, not an algorithm change.  Results append to
``BENCH_perf.json`` through the ``perf_records`` fixture.

Run::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -q -s
"""

from __future__ import annotations

import time

import pytest

from repro.core import TrainConfig
from repro.core.param_space import DomainParameterSpace
from repro.data import DomainSpec, SyntheticConfig, generate_dataset
from repro.distributed import parallel_dn_epoch
from repro.distributed.parallel import _dr_targets
from repro.distributed.vector import (
    sync_dn_round_reference,
    vector_dn_round,
    vector_dr_rounds,
)
from repro.models import build_model
from repro.nn import compiled_execution
from repro.utils.seeding import spawn_rng

N_DOMAIN_GRID = (4, 32, 128)
DN_CONFIG = dict(batch_size=8, inner_steps=4)
DR_CONFIG = dict(batch_size=8, sample_k=3, dr_steps=2)


def make_mdr_dataset(n_domains, seed=0):
    """Many small domains — the regime the paper's industrial deployment
    runs in (hundreds of domains, thin per-domain traffic)."""
    specs = tuple(
        DomainSpec(f"C{i}", 120, 0.25 + 0.05 * (i % 8))
        for i in range(n_domains)
    )
    return generate_dataset(SyntheticConfig(
        name=f"compile_{n_domains}", domains=specs, n_users=400,
        n_items=200, latent_dim=8, feature_mode="fixed", feature_dim=10,
        seed=seed,
    ))


def best_time(fn, repeats=3, warmup=1):
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def time_dn(dataset, config, variant):
    model = build_model("mlp", dataset, seed=0)
    shared = model.state_dict()

    def round_once():
        state = {k: v.copy() for k, v in shared.items()}
        rng = spawn_rng(11, "bench-dn")
        if variant == "vectorized":
            vector_dn_round(model, dataset, state, config, rng)
        elif variant == "compiled":
            with compiled_execution():
                sync_dn_round_reference(model, dataset, state, config, rng)
        else:
            sync_dn_round_reference(model, dataset, state, config, rng)

    return best_time(round_once)


def time_dr(dataset, config, variant):
    model = build_model("mlp", dataset, seed=0)
    space = DomainParameterSpace(model, dataset.n_domains)
    for target in range(dataset.n_domains):
        delta = space.delta(target)
        for name in delta:
            delta[name] += 0.01 * (target + 1)
    targets = list(range(dataset.n_domains))

    def rounds_once():
        if variant == "vectorized":
            vector_dr_rounds(model, dataset, space, config, seed=7)
        elif variant == "compiled":
            with compiled_execution():
                _dr_targets(model, dataset, space, config, 7, targets)
        else:
            _dr_targets(model, dataset, space, config, 7, targets)

    return best_time(rounds_once)


# ----------------------------------------------------------------------
# Full perf suite (pytest benchmarks/perf -m perf)
# ----------------------------------------------------------------------

@pytest.mark.perf
def test_dn_epoch_compiled_vs_eager(perf_records):
    """Acceptance benchmark: the vectorized DN round is ≥ 5x the eager
    single-process round at 32+ domains."""
    by_n_domains = {}
    for n_domains in N_DOMAIN_GRID:
        dataset = make_mdr_dataset(n_domains)
        config = TrainConfig(**DN_CONFIG)
        eager = time_dn(dataset, config, "eager")
        compiled = time_dn(dataset, config, "compiled")
        vectorized = time_dn(dataset, config, "vectorized")
        row = {
            "n_domains": n_domains,
            "eager_seconds": eager,
            "compiled_seconds": compiled,
            "vectorized_seconds": vectorized,
            "compiled_speedup": eager / compiled,
            "vectorized_speedup": eager / vectorized,
        }
        by_n_domains[str(n_domains)] = row
        print(f"\nDN round n={n_domains}: eager {eager * 1e3:.1f} ms, "
              f"compiled {compiled * 1e3:.1f} ms, "
              f"vectorized {vectorized * 1e3:.1f} ms "
              f"({row['vectorized_speedup']:.2f}x)")
        if n_domains >= 32:
            assert row["vectorized_speedup"] >= 5.0, (
                f"vectorized DN only {row['vectorized_speedup']:.2f}x at "
                f"{n_domains} domains"
            )
    perf_records["dn_epoch_compiled"] = dict(DN_CONFIG, by_n_domains=by_n_domains)


@pytest.mark.perf
def test_mamdr_epoch_compiled_vs_eager(perf_records):
    """One full MAMDR epoch (a bulk-sync DN round + a DR sweep over every
    target): vectorized ≥ 5x eager at 32+ domains."""
    by_n_domains = {}
    for n_domains in N_DOMAIN_GRID:
        dataset = make_mdr_dataset(n_domains)
        dn_config = TrainConfig(**DN_CONFIG)
        dr_config = TrainConfig(**DR_CONFIG)
        row = {"n_domains": n_domains}
        for variant in ("eager", "compiled", "vectorized"):
            row[f"{variant}_seconds"] = (
                time_dn(dataset, dn_config, variant)
                + time_dr(dataset, dr_config, variant)
            )
        row["compiled_speedup"] = row["eager_seconds"] / row["compiled_seconds"]
        row["vectorized_speedup"] = (
            row["eager_seconds"] / row["vectorized_seconds"]
        )
        by_n_domains[str(n_domains)] = row
        print(f"\nMAMDR epoch n={n_domains}: "
              f"eager {row['eager_seconds'] * 1e3:.1f} ms, "
              f"compiled {row['compiled_seconds'] * 1e3:.1f} ms, "
              f"vectorized {row['vectorized_seconds'] * 1e3:.1f} ms "
              f"({row['vectorized_speedup']:.2f}x)")
        if n_domains >= 32:
            assert row["vectorized_speedup"] >= 5.0, (
                f"vectorized MAMDR epoch only "
                f"{row['vectorized_speedup']:.2f}x at {n_domains} domains"
            )
    perf_records["mamdr_epoch_compiled"] = {
        "dn": dict(DN_CONFIG), "dr": dict(DR_CONFIG),
        "by_n_domains": by_n_domains,
    }


@pytest.mark.perf
def test_parallel_dn_worker_scaling(perf_records):
    """Wall time of the forked multi-process DN round by worker count.

    Honest numbers for this box: with a single CPU the fork fan-out buys
    no wall-clock speedup (workers time-slice one core and pay IPC); the
    row exists so multi-core machines can see scaling against the same
    baseline.  The single-core speed path is the vectorized engine above.
    """
    dataset = make_mdr_dataset(32)
    config = TrainConfig(**DN_CONFIG)
    model = build_model("mlp", dataset, seed=0)
    shared = model.state_dict()
    by_workers = {}
    for n_workers in (1, 2, 4):
        def round_once():
            state = {k: v.copy() for k, v in shared.items()}
            with compiled_execution():
                parallel_dn_epoch(model, dataset, state, config,
                                  spawn_rng(11, "bench-par"),
                                  n_workers=n_workers)

        seconds = best_time(round_once, repeats=2, warmup=1)
        by_workers[str(n_workers)] = seconds
        print(f"\nparallel DN n_workers={n_workers}: {seconds * 1e3:.1f} ms")
        assert seconds > 0
    perf_records["parallel_dn_worker_scaling"] = dict(
        DN_CONFIG, n_domains=32, seconds_by_workers=by_workers,
    )


# ----------------------------------------------------------------------
# Smoke check (pytest benchmarks/perf -m perf_smoke) — seconds, not minutes
# ----------------------------------------------------------------------

@pytest.mark.perf_smoke
def test_compile_harness_smoke(perf_records):
    """Tiny pass through all three variants so the harness can't bit-rot;
    only requires the vectorized path not be a >2x regression."""
    dataset = make_mdr_dataset(4)
    config = TrainConfig(**DN_CONFIG)
    eager = time_dn(dataset, config, "eager")
    vectorized = time_dn(dataset, config, "vectorized")
    assert eager > 0 and vectorized > 0
    assert vectorized <= eager * 2.0
    perf_records["compile_smoke"] = {
        "eager_seconds": eager, "vectorized_seconds": vectorized,
    }
