"""Static certification vs eager-replay verification cost.

``replay_verify`` guards every compiled step with a full eager re-run
plus bitwise comparison — roughly doubling step cost.  The tape verifier
proves the properties that re-run checks dynamically, so certified tapes
may skip it (``replay_verify(strict=False)``); this benchmark measures
what that proof is worth.  Three variants of the same training loop:

* **unverified** — plain compiled replay, no oracle (the floor);
* **static** — ``replay_verify(strict=False)``: certified tapes skip the
  eager re-run, uncertified ones still pay it;
* **eager** — ``replay_verify()`` strict: the unconditional bitwise
  oracle on every step.

Results append to ``BENCH_perf.json``.  Run::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf_smoke -q -s
"""

from __future__ import annotations

import pytest

from repro.data import sample_batch
from repro.models import build_model
from repro.nn.compile import executor_for
from repro.nn.optim import make_optimizer
from repro.tooling import sanitizer
from repro.utils.seeding import spawn_rng

from test_perf_compile import best_time, make_mdr_dataset

N_STEPS = 32
BATCH = 16


def time_verify(dataset, variant, n_steps=N_STEPS):
    model = build_model("mlp", dataset, seed=0)
    optimizer = make_optimizer("adam", model.parameters(), 0.05)
    executor = executor_for(model)
    # Trace (and certify) outside the timed region: the cost under
    # comparison is per-step verification, not one-time compilation.
    warm = sample_batch(dataset.domain(0).train, 0, BATCH, spawn_rng(3, "w"))
    executor.step(warm, optimizer)

    def loop():
        rng = spawn_rng(11, "bench-verify", variant)
        if variant == "unverified":
            for _ in range(n_steps):
                batch = sample_batch(dataset.domain(0).train, 0, BATCH, rng)
                executor.step(batch, optimizer)
            return
        strict = variant == "eager"
        with sanitizer.replay_verify(strict=strict):
            for _ in range(n_steps):
                batch = sample_batch(dataset.domain(0).train, 0, BATCH, rng)
                executor.step(batch, optimizer)

    return best_time(loop)


@pytest.mark.perf_smoke
def test_static_vs_eager_verification(perf_records):
    """Acceptance: statically certified verification must recover most of
    the eager oracle's overhead — static-mode steps may cost at most 40%
    of the gap between unverified and eager-verified replay."""
    dataset = make_mdr_dataset(2)
    unverified = time_verify(dataset, "unverified")
    static = time_verify(dataset, "static")
    eager = time_verify(dataset, "eager")
    overhead_static = static - unverified
    overhead_eager = eager - unverified
    print(f"\nverify cost over {N_STEPS} steps: "
          f"unverified {unverified * 1e3:.1f} ms, "
          f"static {static * 1e3:.1f} ms, "
          f"eager-replay {eager * 1e3:.1f} ms "
          f"(static overhead {overhead_static * 1e3:.1f} ms vs "
          f"eager {overhead_eager * 1e3:.1f} ms)")
    assert unverified > 0 and static > 0 and eager > 0
    assert eager > unverified, "eager oracle should not be free"
    assert overhead_static <= 0.4 * overhead_eager, (
        f"static certification recovered too little: {overhead_static:.4f}s "
        f"vs eager {overhead_eager:.4f}s"
    )
    perf_records["analyzer_verify_modes"] = {
        "n_steps": N_STEPS, "batch_size": BATCH,
        "unverified_seconds": unverified,
        "static_seconds": static,
        "eager_seconds": eager,
        "eager_overhead_seconds": overhead_eager,
        "static_overhead_seconds": overhead_static,
    }
