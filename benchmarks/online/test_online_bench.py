"""Continual-learning pipeline benchmarks (stream → update → gate → serve).

Two tiers mirror the perf and serving harnesses:

* ``online_smoke`` — a seconds-long end-to-end run that keeps the
  pipeline alive in CI (the perf-smoke job runs it on every push);
* ``online`` — the full drifted stream behind
  ``python -m repro.cli online-sim``.

Both append their measurements to ``BENCH_online.json`` at the repo root
and hard-fail if serving stops being bit-identical to the offline
forward, or if the gate stops catching the injected regression.

Run::

    PYTHONPATH=src python -m pytest benchmarks/online -m online_smoke -q
    PYTHONPATH=src python -m pytest benchmarks/online -m online -q -s
"""

from __future__ import annotations

import pathlib

import pytest

from repro.online import (
    OnlineSimConfig,
    render_online_sim,
    run_online_sim,
    write_bench_record,
)

BENCH_ONLINE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent / "BENCH_online.json"
)


def _run_and_record(config):
    results = run_online_sim(config)
    print("\n" + render_online_sim(results))
    write_bench_record(results, BENCH_ONLINE_PATH)
    publications = results["publications"]
    assert results["parity"]["exact"], "serving/offline parity failed"
    assert publications["rejected"] >= 1, "gate missed the injected regression"
    assert all(
        q["key"] == config.inject_regression_at
        for q in publications["quarantine"]
    ), "gate rejected a clean candidate"
    assert results["events"]["events_per_sec"] > 0
    return results


@pytest.mark.online_smoke
def test_online_smoke():
    """Tiny stream: ingest → update → publish → rollback → serve parity."""
    results = _run_and_record(OnlineSimConfig(
        stream={"n_domains": 3, "n_users": 120, "n_items": 80,
                "latent_dim": 6, "n_windows": 5, "window_events": 240,
                "drift_rate": 0.2, "seed": 0},
        bootstrap_windows=2, bootstrap_updates=1, inject_regression_at=3,
        replay_capacity=600, holdout_capacity=150, parity_samples=32,
    ))
    assert results["publications"]["accepted"] >= 2


@pytest.mark.online
def test_online_full():
    """The acceptance-sized run: the incremental model must beat the
    frozen day-0 model once drift has rotated the world away."""
    results = _run_and_record(OnlineSimConfig())
    publications = results["publications"]
    assert publications["accepted"] >= 3
    assert publications["rejected"] == 1
    post = results["post_drift_auc"]
    assert post["gain"] > 0, (
        f"incremental updates stopped paying off under drift: "
        f"incremental {post['incremental']:.4f} vs frozen "
        f"{post['frozen']:.4f}"
    )
    assert results["staleness"]["mean_windows"] <= 2.0
