"""Table I: overall statistics of the MDR benchmark datasets."""

from conftest import emit

from repro.data import (
    amazon6_sim,
    amazon13_sim,
    overall_stats_table,
    taobao10_sim,
    taobao20_sim,
    taobao30_sim,
    taobao_online_sim,
)


def build_all():
    return [
        amazon6_sim(),
        amazon13_sim(),
        taobao10_sim(),
        taobao20_sim(),
        taobao30_sim(),
        taobao_online_sim(n_domains=40, total_samples=20_000),
    ]


def test_table1_dataset_stats(benchmark, results_dir):
    datasets = benchmark.pedantic(build_all, rounds=1, iterations=1)
    text = overall_stats_table(datasets)
    emit(results_dir, "table1", text)

    names = [d.name for d in datasets]
    assert names == [
        "amazon6_sim", "amazon13_sim", "taobao10_sim", "taobao20_sim",
        "taobao30_sim", "taobao_online_sim",
    ]
    # The paper's structural facts: domain counts and Amazon > Taobao scale.
    assert [d.n_domains for d in datasets] == [6, 13, 10, 20, 30, 40]
    assert datasets[0].total_interactions("train") > datasets[2].total_interactions("train")
