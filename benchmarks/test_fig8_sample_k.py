"""Figure 8: MAMDR AUC vs DR sample number k on Taobao-30.

Paper shape: AUC rises with k (helper domains regularize the specific
parameters) then drops past a moderate k (θ_i drifts too far from θ_S).
The rising part reproduces robustly; the drop is softened here because our
per-domain validation selection filters out drifted checkpoints (see
EXPERIMENTS.md).  We assert the robust core: some k > 0 beats k = 0.
"""

from conftest import emit

from repro.experiments import render_fig8, run_fig8


def test_fig8_sample_k(benchmark, results_dir):
    series = benchmark.pedantic(
        lambda: run_fig8(scale=1.0, seeds=(0, 1),
                         sample_numbers=(0, 1, 3, 5, 7, 10)),
        rounds=1, iterations=1,
    )
    text = render_fig8(series)
    emit(results_dir, "fig8", text)

    best_k = max(series, key=series.get)
    assert best_k != 0, "DR helper sampling should beat k=0"
    assert max(series[k] for k in series if k > 0) > series[0]
